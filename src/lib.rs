//! # dmst — deterministic distributed MST, reproduced
//!
//! Umbrella crate for the reproduction of Michael Elkin, *"A Simple
//! Deterministic Distributed MST Algorithm, with Near-Optimal Time and
//! Message Complexities"* (PODC 2017, arXiv:1703.02411). It re-exports the
//! four workspace crates:
//!
//! * [`congest`] — the deterministic synchronous `CONGEST(b log n)`
//!   simulator (rounds, per-edge bandwidth in words, message statistics);
//! * [`graphs`] — weighted graphs, deterministic generators, BFS/diameter
//!   analysis, and the sequential MST oracles (Kruskal/Prim/Borůvka);
//! * [`core`] — Elkin's algorithm itself (Stages A–D) plus the standalone
//!   Controlled-GHS forest construction of Theorem 4.3;
//! * [`baselines`] — the GHS-style and GKP98 Pipeline baselines from the
//!   paper's §1.1 comparison.
//!
//! ```
//! use dmst::core::{run_mst, ElkinConfig};
//! use dmst::graphs::{generators, mst};
//!
//! let g = generators::grid_2d(8, 8, &mut generators::WeightRng::new(42));
//! let run = run_mst(&g, &ElkinConfig::default())?;
//! assert_eq!(run.edges, mst::kruskal(&g).edges);
//! println!(
//!     "n = {}, rounds = {}, messages = {}",
//!     g.num_nodes(),
//!     run.stats.rounds,
//!     run.stats.messages
//! );
//! # Ok::<(), dmst::core::RunError>(())
//! ```
//!
//! See `DESIGN.md` for the system inventory and the per-experiment index,
//! and `EXPERIMENTS.md` for paper-vs-measured results.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use congest_sim as congest;
pub use dmst_baselines as baselines;
pub use dmst_core as core;
pub use dmst_graphs as graphs;

pub mod testkit;
