//! Shared conformance harness: every distributed MST algorithm in the
//! workspace, tested through one scenario matrix against one oracle.
//!
//! The headline invariant of the reproduction — *distributed MST ≡
//! sequential MST* — used to be re-implemented ad hoc by each integration
//! suite. This module centralizes it:
//!
//! * [`Algorithm`] names one algorithm under test (Elkin under a specific
//!   [`ElkinConfig`], GHS, Pipeline) behind a single [`Algorithm::run`]
//!   entry point returning canonical sorted MST edge ids;
//! * [`assert_matches_oracle`] / [`assert_all_match`] compare a run against
//!   the golden Kruskal tree and panic with a labelled diagnostic;
//! * [`family_matrix`], [`config_matrix`], and [`WeightPattern`] span the
//!   scenario space (graph family × `ElkinConfig` knobs × bandwidth ×
//!   adversarial weight patterns);
//! * [`for_each_connected_graph`] enumerates *every* connected labelled
//!   graph on `n` vertices for exhaustive small-graph sweeps;
//! * [`assert_forest_invariants`] checks Controlled-GHS output against the
//!   fragment-shape guarantees of Theorem 4.3.
//!
//! ```
//! use dmst::testkit;
//! use dmst::graphs::generators as gen;
//!
//! let g = gen::grid_2d(4, 4, &mut gen::WeightRng::new(11));
//! testkit::assert_all_match(&g, "doc-grid"); // Elkin (both modes) + GHS + Pipeline vs Kruskal
//! ```

use crate::baselines::{run_ghs, run_pipeline};
use crate::congest::RunStats;
use crate::core::{analyze_forest, run_forest, run_mst, ElkinConfig, MergeControl, ScheduleMode};
use crate::graphs::{generators as gen, mst, EdgeId, UnionFind, WeightedGraph};

/// One distributed MST algorithm under conformance test.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Algorithm {
    /// Elkin's algorithm (PODC 2017) under the given configuration.
    Elkin(ElkinConfig),
    /// The GHS83/CT85-style synchronous Borůvka baseline.
    Ghs,
    /// The GKP98 Pipeline baseline (Controlled-GHS + pipelined upcast).
    Pipeline,
}

impl Algorithm {
    /// The algorithms under conformance test: Elkin in both schedule
    /// modes (Fixed stays covered although Adaptive is the default), plus
    /// the two baselines, each otherwise in its default configuration.
    pub fn all() -> Vec<Algorithm> {
        vec![
            Algorithm::Elkin(ElkinConfig::fixed()),
            Algorithm::Elkin(ElkinConfig::adaptive()),
            Algorithm::Ghs,
            Algorithm::Pipeline,
        ]
    }

    /// Display name for diagnostics.
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::Elkin(cfg) if cfg.schedule_mode == ScheduleMode::Adaptive => {
                "elkin-adaptive"
            }
            Algorithm::Elkin(_) => "elkin",
            Algorithm::Ghs => "ghs",
            Algorithm::Pipeline => "pipeline",
        }
    }

    /// Runs the algorithm, returning canonical sorted MST edge ids and the
    /// runner's *self-reported* total weight (checked independently against
    /// the oracle by [`assert_matches_oracle`], pinning the reporting path).
    ///
    /// # Errors
    ///
    /// Stringified runner error (disconnected input, simulator violation,
    /// inconsistent output).
    pub fn run(&self, g: &WeightedGraph) -> Result<(Vec<EdgeId>, u128), String> {
        self.run_stats(g).map(|(edges, weight, _)| (edges, weight))
    }

    /// Like [`Algorithm::run`], but also returns the simulator's
    /// [`RunStats`] — the raw material for round/message budget pins.
    ///
    /// # Errors
    ///
    /// Stringified runner error, as for [`Algorithm::run`].
    pub fn run_stats(&self, g: &WeightedGraph) -> Result<(Vec<EdgeId>, u128, RunStats), String> {
        match self {
            Algorithm::Elkin(cfg) => run_mst(g, cfg)
                .map(|r| (r.edges, r.total_weight, r.stats))
                .map_err(|e| e.to_string()),
            Algorithm::Ghs => {
                run_ghs(g).map(|r| (r.edges, r.total_weight, r.stats)).map_err(|e| e.to_string())
            }
            Algorithm::Pipeline => run_pipeline(g)
                .map(|r| (r.edges, r.total_weight, r.stats))
                .map_err(|e| e.to_string()),
        }
    }
}

/// A pinned complexity budget for one `(algorithm, workload)` pair: golden
/// round/message counts from a healthy run, plus a stated multiplicative
/// slack. [`assert_round_budget`] turns the pin into a regression test that
/// fails `cargo test` instead of silently drifting in EXPERIMENTS.md
/// tables.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RoundBudget {
    /// Golden number of rounds.
    pub rounds: u64,
    /// Golden number of messages.
    pub messages: u64,
    /// Multiplicative headroom (e.g. `1.10` = 10%). Measured counts above
    /// `golden * slack` fail; counts below `golden / (2 * slack)` also
    /// fail, flagging a stale pin that should be re-measured.
    pub slack: f64,
}

impl RoundBudget {
    /// A budget with the suite's standard 10% slack.
    pub fn new(rounds: u64, messages: u64) -> Self {
        Self { rounds, messages, slack: 1.10 }
    }
}

/// Runs `algo` on `g`, asserts the MST matches the Kruskal oracle, and
/// asserts rounds and messages stay inside `budget` (both directions; see
/// [`RoundBudget::slack`]). The simulator is fully deterministic, so equal
/// inputs give bit-equal counts and the slack only absorbs intentional
/// algorithm changes — anything larger must re-pin consciously.
///
/// # Panics
///
/// Panics with `label`, the algorithm name, and the measured-vs-pinned
/// counts on any violation.
pub fn assert_round_budget(algo: &Algorithm, g: &WeightedGraph, label: &str, budget: &RoundBudget) {
    let truth = mst::kruskal(g);
    let (edges, _, stats) =
        algo.run_stats(g).unwrap_or_else(|e| panic!("{} failed on {label}: {e}", algo.name()));
    assert_eq!(edges, truth.edges, "{} produced a wrong MST on {label}", algo.name());
    let check = |what: &str, measured: u64, pinned: u64| {
        let hi = (pinned as f64 * budget.slack).ceil() as u64;
        let lo = (pinned as f64 / (2.0 * budget.slack)).floor() as u64;
        assert!(
            measured <= hi,
            "{} {what} regression on {label}: measured {measured} > pinned {pinned} (+{:.0}% slack)",
            algo.name(),
            (budget.slack - 1.0) * 100.0
        );
        assert!(
            measured >= lo,
            "{} {what} pin stale on {label}: measured {measured} << pinned {pinned} — re-pin the budget",
            algo.name()
        );
    };
    check("rounds", stats.rounds, budget.rounds);
    check("messages", stats.messages, budget.messages);
}

/// Runs `algo` on `g` and asserts its output equals the golden Kruskal MST
/// (edge ids *and* total weight).
///
/// # Panics
///
/// Panics with `label` and the algorithm name on any mismatch or run error.
pub fn assert_matches_oracle(algo: &Algorithm, g: &WeightedGraph, label: &str) {
    let truth = mst::kruskal(g);
    let (edges, reported_weight) =
        algo.run(g).unwrap_or_else(|e| panic!("{} failed on {label}: {e}", algo.name()));
    assert_eq!(edges, truth.edges, "{} produced a wrong MST on {label}", algo.name());
    assert_eq!(
        reported_weight,
        truth.total_weight,
        "{} self-reported tree weight mismatch on {label}",
        algo.name()
    );
}

/// Asserts every algorithm in [`Algorithm::all`] (Elkin in both schedule
/// modes, GHS, Pipeline; default configurations) matches the Kruskal
/// oracle on `g`.
///
/// # Panics
///
/// Panics with `label` on the first mismatch.
pub fn assert_all_match(g: &WeightedGraph, label: &str) {
    for algo in Algorithm::all() {
        assert_matches_oracle(&algo, g, label);
    }
}

/// The named graph-family matrix: one representative per generator,
/// spanning the paper's low-diameter, high-diameter, tree, and adversarial
/// regimes. Structure and weights are drawn deterministically from `rng`.
pub fn family_matrix(rng: &mut gen::WeightRng) -> Vec<(&'static str, WeightedGraph)> {
    vec![
        ("path", gen::path(48, rng)),
        ("cycle", gen::cycle(47, rng)),
        ("complete", gen::complete(20, rng)),
        ("star", gen::star(33, rng)),
        ("binary-tree", gen::binary_tree(40, rng)),
        ("random-tree", gen::random_tree(50, rng)),
        ("grid", gen::grid_2d(6, 8, rng)),
        ("torus", gen::torus_2d(5, 8, rng)),
        ("hypercube", gen::hypercube(5, rng)),
        ("circulant", gen::circulant(40, &[9, 17], rng)),
        ("random", gen::random_connected(72, 180, rng)),
        ("barbell", gen::barbell(7, 9, rng)),
        ("lollipop", gen::lollipop(9, 12, rng)),
        ("cliquepath", gen::path_of_cliques(9, 4, rng)),
        ("caterpillar", gen::caterpillar(10, 3, rng)),
        ("broom", gen::broom(4, 7, rng)),
        ("snake", gen::snake_torus(6, 6, rng)),
    ]
}

/// The `ElkinConfig` knob matrix for a graph on `n` vertices: bandwidth ×
/// `k` override × merge control × schedule mode × root placement. Roots
/// outside `0..n` are clamped away, and duplicate configurations are
/// removed.
pub fn config_matrix(n: usize) -> Vec<ElkinConfig> {
    let mut out = Vec::new();
    for b in [1u32, 2, 3, 8] {
        for k in [None, Some(1), Some(5), Some(16), Some(200)] {
            for mode in [MergeControl::Matched, MergeControl::Uncontrolled] {
                for sched in [ScheduleMode::Fixed, ScheduleMode::Adaptive] {
                    for root in [0, n / 3, n.saturating_sub(1)] {
                        let cfg = ElkinConfig {
                            bandwidth: b,
                            k_override: k,
                            root,
                            merge_control: mode,
                            schedule_mode: sched,
                            ..ElkinConfig::default()
                        };
                        if !out.contains(&cfg) {
                            out.push(cfg);
                        }
                    }
                }
            }
        }
    }
    out
}

/// An adversarial weight pattern, stressing tie-breaking and ordering.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WeightPattern {
    /// Weights `1..=m` in edge order.
    Ascending,
    /// Weights `m..=1` in edge order.
    Descending,
    /// All edges share one weight (pure tie-breaking).
    Equal,
}

impl WeightPattern {
    /// Every pattern, in the order [`for_each_connected_graph`] visits them.
    pub const ALL: [WeightPattern; 3] =
        [WeightPattern::Ascending, WeightPattern::Descending, WeightPattern::Equal];

    /// The concrete weight vector for a graph with `m` edges.
    pub fn weights(self, m: usize) -> Vec<u64> {
        match self {
            WeightPattern::Ascending => (1..=m as u64).collect(),
            WeightPattern::Descending => (1..=m as u64).rev().collect(),
            WeightPattern::Equal => vec![7; m],
        }
    }
}

/// Enumerates every connected labelled graph on `n` vertices (every edge
/// subset of `K_n` that spans), weighted by every [`WeightPattern`], and
/// calls `f(graph, label, pattern)` on each. Returns `(distinct structures,
/// weighted graphs visited)`.
///
/// Feasible for `n <= 5` (38 structures on 4 vertices, 728 on 5).
///
/// # Panics
///
/// Panics if `n < 2` or `n > 5` (the sweep would be degenerate or
/// intractably large).
pub fn for_each_connected_graph<F>(n: usize, mut f: F) -> (u32, u32)
where
    F: FnMut(&WeightedGraph, &str, WeightPattern),
{
    assert!((2..=5).contains(&n), "exhaustive sweep supports 2..=5 vertices, got {n}");
    let mut pairs = Vec::new();
    for a in 0..n {
        for b in (a + 1)..n {
            pairs.push((a, b));
        }
    }
    let full = pairs.len();
    let mut structures = 0;
    let mut visited = 0;
    for mask in 1u32..(1 << full) {
        let chosen: Vec<(usize, usize)> =
            pairs.iter().enumerate().filter(|(i, _)| mask >> i & 1 == 1).map(|(_, &p)| p).collect();
        if chosen.len() < n - 1 {
            continue;
        }
        let mut uf = UnionFind::new(n);
        for &(a, b) in &chosen {
            uf.union(a, b);
        }
        if uf.num_sets() != 1 {
            continue;
        }
        structures += 1;
        for pattern in WeightPattern::ALL {
            let weights = pattern.weights(chosen.len());
            let edges: Vec<(usize, usize, u64)> =
                chosen.iter().zip(&weights).map(|(&(a, b), &w)| (a, b, w)).collect();
            let g = WeightedGraph::new(n, edges).expect("simple by construction");
            let label = format!("n={n} mask={mask:#b} pattern={pattern:?}");
            f(&g, &label, pattern);
            visited += 1;
        }
    }
    (structures, visited)
}

/// Runs Controlled-GHS with parameter `k` on `g` and checks the output
/// forest against Theorem 4.3's shape guarantees: at most `2n/k + 1`
/// fragments, strong diameter `O(k)`, and all structural invariants
/// enforced by [`analyze_forest`] (fragments are connected, uniquely
/// rooted, and consist of MST edges).
///
/// # Panics
///
/// Panics on any violated invariant.
pub fn assert_forest_invariants(g: &WeightedGraph, k: u64, label: &str) {
    let n = g.num_nodes() as u64;
    let run = run_forest(g, &ElkinConfig::with_k(k))
        .unwrap_or_else(|e| panic!("forest run failed on {label}: {e}"));
    let report = analyze_forest(g, &run); // panics internally on broken structure
    assert!(
        report.num_fragments as u64 <= 2 * n / k.min(n) + 1,
        "{label}: {} fragments exceed 2n/k + 1 for n={n}, k={k}",
        report.num_fragments
    );
    assert!(
        report.max_diameter <= 24 * k,
        "{label}: fragment diameter {} exceeds O(k) for k={k}",
        report.max_diameter
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn algorithm_names_and_all() {
        let all = Algorithm::all();
        assert_eq!(all.len(), 4);
        let names: Vec<&str> = all.iter().map(Algorithm::name).collect();
        assert_eq!(names, ["elkin", "elkin-adaptive", "ghs", "pipeline"]);
    }

    #[test]
    fn round_budget_accepts_exact_and_slack() {
        let g = gen::path(12, &mut gen::WeightRng::new(3));
        let algo = Algorithm::Ghs;
        let (_, _, stats) = algo.run_stats(&g).unwrap();
        let budget = RoundBudget::new(stats.rounds, stats.messages);
        assert_round_budget(&algo, &g, "self-pin", &budget);
    }

    #[test]
    #[should_panic(expected = "rounds regression")]
    fn round_budget_rejects_regression() {
        let g = gen::path(12, &mut gen::WeightRng::new(3));
        let algo = Algorithm::Ghs;
        let (_, _, stats) = algo.run_stats(&g).unwrap();
        // Pin far below the measured counts: the run must trip the bound.
        let budget = RoundBudget::new(stats.rounds / 2, stats.messages);
        assert_round_budget(&algo, &g, "too-tight-pin", &budget);
    }

    #[test]
    #[should_panic(expected = "pin stale")]
    fn round_budget_rejects_stale_pin() {
        let g = gen::path(12, &mut gen::WeightRng::new(3));
        let algo = Algorithm::Ghs;
        let (_, _, stats) = algo.run_stats(&g).unwrap();
        let budget = RoundBudget::new(stats.rounds * 4, stats.messages);
        assert_round_budget(&algo, &g, "stale-pin", &budget);
    }

    #[test]
    fn config_matrix_is_deduplicated_and_valid() {
        let cfgs = config_matrix(10);
        for (i, a) in cfgs.iter().enumerate() {
            assert!(a.root < 10);
            assert!(a.bandwidth >= 1);
            assert!(cfgs[i + 1..].iter().all(|b| b != a), "duplicate config {a:?}");
        }
        // n small enough that the three root choices collapse partially.
        assert!(config_matrix(2).len() < cfgs.len());
    }

    #[test]
    fn family_matrix_is_deterministic_and_connected() {
        let a = family_matrix(&mut gen::WeightRng::new(5));
        let b = family_matrix(&mut gen::WeightRng::new(5));
        assert_eq!(a.len(), 17);
        for ((la, ga), (lb, gb)) in a.iter().zip(&b) {
            assert_eq!(la, lb);
            assert_eq!(ga, gb, "family {la} not deterministic");
            assert!(ga.is_connected(), "family {la} disconnected");
        }
    }

    #[test]
    fn exhaustive_enumeration_counts_n3() {
        // 4 connected labelled graphs on 3 vertices: three 2-edge paths + K3.
        let mut equal_patterns = 0;
        let (structures, visited) = for_each_connected_graph(3, |g, _, pattern| {
            assert!(g.is_connected());
            if pattern == WeightPattern::Equal {
                equal_patterns += 1;
                assert!(g.edges().iter().all(|&(_, _, w)| w == g.edges()[0].2));
            }
        });
        assert_eq!(equal_patterns, 4, "every structure must visit the Equal pattern");
        assert_eq!(structures, 4);
        assert_eq!(visited, 4 * 3);
    }

    #[test]
    #[should_panic(expected = "failed on disconnected-pair")]
    fn run_errors_panic_through_the_harness() {
        let g = WeightedGraph::new(4, vec![(0, 1, 1), (2, 3, 1)]).unwrap();
        assert_matches_oracle(&Algorithm::Ghs, &g, "disconnected-pair");
    }
}
