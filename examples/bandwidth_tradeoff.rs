//! The `CONGEST(b log n)` trade-off (Theorem 3.2): more per-edge bandwidth
//! buys rounds, while the message count stays put.
//!
//! Scenario: you operate a sensor mesh and can provision link bandwidth in
//! multiples of the base `O(log n)` packet. How much latency does each
//! multiple buy for a spanning-tree recomputation? The paper predicts
//! rounds `~ (D + sqrt(n/b)) log n`: the sqrt term shrinks with `b` until
//! the diameter floor takes over.
//!
//! ```text
//! cargo run --release --example bandwidth_tradeoff
//! ```

use dmst::core::{run_mst, ElkinConfig};
use dmst::graphs::{analysis, generators};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = generators::WeightRng::new(7);
    let g = generators::torus_2d(24, 24, &mut rng); // n = 576, D = 24
    let d = analysis::diameter_exact(&g);
    println!("torus 24x24: n = {}, m = {}, D = {d}", g.num_nodes(), g.num_edges());
    println!("\n{:>4} {:>8} {:>10} {:>10} {:>6}", "b", "rounds", "messages", "words", "k");

    let mut base_rounds = None;
    for b in [1u32, 2, 4, 8, 16, 32] {
        let run = run_mst(&g, &ElkinConfig::with_bandwidth(b))?;
        let speedup = base_rounds
            .get_or_insert(run.stats.rounds)
            .checked_div(run.stats.rounds.max(1))
            .unwrap_or(0);
        println!(
            "{b:>4} {:>8} {:>10} {:>10} {:>6}   ({speedup}x vs b=1)",
            run.stats.rounds, run.stats.messages, run.stats.words, run.k
        );
    }

    println!(
        "\nreading: rounds fall roughly with sqrt(1/b) and flatten once the\n\
         D*log(n) term dominates; messages barely move — exactly the shape\n\
         of Theorem 3.2."
    );
    Ok(())
}
