//! Re-pin helper: prints the exact `(rounds, messages)` golden counts for
//! every workload pinned in `tests/round_pins.rs`, in pin order — plus the
//! total encoded wire words of each run, the golden that the wallclock and
//! T1-smoke wire gates pin — so a conscious protocol change can ratchet
//! the budgets in one run:
//!
//! ```text
//! cargo run --release --example repin            # the n = 256 trio pins
//! cargo run --release --example repin -- --large # + the n = 1024/2304 cliquepaths
//! ```
//!
//! The simulator is deterministic, so these numbers are bit-exact across
//! machines and build profiles.

use dmst::core::{run_mst, ElkinConfig};
use dmst::graphs::generators as gen;
use dmst::testkit::Algorithm;
use dmst_bench::standard_trio;

fn print_stats(algo: &Algorithm, g: &dmst::graphs::WeightedGraph, label: &str) {
    let (_, _, stats) = algo.run_stats(g).unwrap_or_else(|e| panic!("{label}: {e}"));
    println!(
        "{label:<24} {:<16} RoundBudget::new({}, {}),  // wire words: {}",
        algo.name(),
        stats.rounds,
        stats.messages,
        stats.wire_words
    );
}

fn main() {
    let large = std::env::args().any(|a| a == "--large");

    println!("# tests/round_pins.rs golden counts (pin order)\n");
    let trio: Vec<_> = standard_trio(256, 0x51).into_iter().map(|w| (w.name, w.graph)).collect();
    for algo in [
        Algorithm::Elkin(ElkinConfig::fixed()),
        Algorithm::Elkin(ElkinConfig::adaptive()),
        Algorithm::Ghs,
        Algorithm::Pipeline,
    ] {
        for (label, g) in &trio {
            print_stats(&algo, g, label);
        }
        println!();
    }

    let r = &mut gen::WeightRng::new(0x51);
    let g1024 = gen::path_of_cliques(128, 8, r);
    print_stats(&Algorithm::Elkin(ElkinConfig::adaptive()), &g1024, "cliquepath 128x8");

    if large {
        let g2304 = standard_trio(2304, 0x51)
            .into_iter()
            .find(|w| w.name.starts_with("cliquepath"))
            .expect("trio contains a cliquepath")
            .graph;
        let run = run_mst(&g2304, &ElkinConfig::adaptive()).expect("adaptive 2304");
        let p = run.profile;
        println!(
            "cliquepath 288x8 adaptive: rounds {} messages {} wire words {} \
             profile a/b/c/d = {}/{}/{}/{}",
            run.stats.rounds,
            run.stats.messages,
            run.stats.wire_words,
            p.stage_a,
            p.stage_b,
            p.stage_c,
            p.stage_d
        );
    }
}
