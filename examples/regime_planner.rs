//! The two regimes of the paper's §3: `D <= sqrt(n)` (base parameter
//! `k = sqrt(n)`) versus `D > sqrt(n)` (`k = Θ(D)`).
//!
//! Scenario: the same number of routers can be wired as a flat mesh, a
//! ring, or a chain of dense racks. This example shows how the algorithm's
//! automatic `k` selection reacts to the topology's hop-diameter and what
//! that does to round/message costs — the design decision that lets the
//! paper avoid the neighborhood-cover machinery of [PRS16].
//!
//! ```text
//! cargo run --release --example regime_planner
//! ```

use dmst::core::{run_mst, ElkinConfig};
use dmst::graphs::{analysis, generators, WeightedGraph};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = generators::WeightRng::new(99);
    // Six topologies on roughly 256 vertices, diameters from 1 to n-1.
    let cases: Vec<(&str, WeightedGraph)> = vec![
        ("complete (D=1)", generators::complete(256, &mut rng)),
        ("hypercube (D=8)", generators::hypercube(8, &mut rng)),
        ("torus 16x16 (D=16)", generators::torus_2d(16, 16, &mut rng)),
        ("grid 8x32 (D=38)", generators::grid_2d(8, 32, &mut rng)),
        ("path-of-cliques (D~63)", generators::path_of_cliques(32, 8, &mut rng)),
        ("cycle (D=128)", generators::cycle(256, &mut rng)),
        ("path (D=255)", generators::path(256, &mut rng)),
    ];

    println!(
        "{:<24} {:>5} {:>5} {:>6} {:>7} {:>9} {:>10}",
        "topology", "n", "D", "sqrt n", "k", "rounds", "messages"
    );
    for (name, g) in cases {
        let n = g.num_nodes();
        let d = analysis::diameter_exact(&g);
        // The paper's regime-following k lives in the Fixed schedule; the
        // (default) adaptive schedule deliberately pins k = sqrt(n/b).
        let run = run_mst(&g, &ElkinConfig::fixed())?;
        let sqrt_n = (n as f64).sqrt().round() as u64;
        let regime = if run.k > sqrt_n { "large-D" } else { "small-D" };
        println!(
            "{name:<24} {n:>5} {d:>5} {sqrt_n:>6} {:>7} {:>9} {:>10}   {regime}",
            run.k, run.stats.rounds, run.stats.messages
        );
    }

    println!(
        "\nreading: once D exceeds sqrt(n) the algorithm grows its base\n\
         fragments to k = Θ(D), so fewer fragments are pipelined through the\n\
         BFS root and the message count stays near-linear even on chains."
    );
    Ok(())
}
