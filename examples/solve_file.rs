//! Solve a DIMACS edge-format graph file distributively and report all
//! three algorithms' costs.
//!
//! ```text
//! cargo run --release --example solve_file [path/to/graph.dimacs]
//! ```
//!
//! Without an argument, a sample graph is generated, written to a
//! temporary file, and read back — demonstrating the I/O round trip.

use std::fs::File;
use std::io::BufReader;

use dmst::baselines::{run_ghs, run_pipeline};
use dmst::core::{run_mst, ElkinConfig};
use dmst::graphs::{generators, io, mst};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let path = match std::env::args().nth(1) {
        Some(p) => p,
        None => {
            // No input given: produce a demo file first.
            let g = generators::random_connected(200, 600, &mut generators::WeightRng::new(11));
            let path = std::env::temp_dir().join("dmst_demo.dimacs");
            io::write_dimacs(&g, File::create(&path)?)?;
            println!("no input file given; wrote a demo graph to {}", path.display());
            path.to_string_lossy().into_owned()
        }
    };

    let g = io::parse_dimacs(BufReader::new(File::open(&path)?))?;
    println!(
        "loaded {}: n = {}, m = {}, connected = {}",
        path,
        g.num_nodes(),
        g.num_edges(),
        g.is_connected()
    );

    let truth = mst::kruskal(&g);
    println!(
        "sequential Kruskal: {} edges, total weight {}\n",
        truth.edges.len(),
        truth.total_weight
    );

    println!("{:<10} {:>10} {:>12} {:>8}", "algorithm", "rounds", "messages", "ok");
    let elkin = run_mst(&g, &ElkinConfig::default())?;
    println!(
        "{:<10} {:>10} {:>12} {:>8}",
        "elkin",
        elkin.stats.rounds,
        elkin.stats.messages,
        elkin.edges == truth.edges
    );
    let ghs = run_ghs(&g)?;
    println!(
        "{:<10} {:>10} {:>12} {:>8}",
        "ghs",
        ghs.stats.rounds,
        ghs.stats.messages,
        ghs.edges == truth.edges
    );
    let pipe = run_pipeline(&g)?;
    println!(
        "{:<10} {:>10} {:>12} {:>8}",
        "pipeline",
        pipe.stats.rounds,
        pipe.stats.messages,
        pipe.edges == truth.edges
    );

    println!(
        "\nstage profile (elkin): A={} B={} C={} D={} rounds; k = {}",
        elkin.profile.stage_a,
        elkin.profile.stage_b,
        elkin.profile.stage_c,
        elkin.profile.stage_d,
        elkin.k
    );
    Ok(())
}
