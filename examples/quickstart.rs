//! Quickstart: compute an MST distributively and check it against Kruskal.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use dmst::core::{run_mst, ElkinConfig};
use dmst::graphs::{analysis, generators, mst};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 16 x 16 torus: n = 256 vertices, m = 512 edges, diameter 16.
    let mut rng = generators::WeightRng::new(2017);
    let g = generators::torus_2d(16, 16, &mut rng);
    let (n, m) = (g.num_nodes(), g.num_edges());
    let d = analysis::diameter_exact(&g);
    println!("input: torus 16x16, n = {n}, m = {m}, hop-diameter D = {d}");

    // Run Elkin's deterministic distributed MST algorithm in standard
    // CONGEST (b = 1).
    let run = run_mst(&g, &ElkinConfig::default())?;
    println!("distributed MST: {} edges, total weight {}", run.edges.len(), run.total_weight);
    println!(
        "cost: {} rounds, {} messages ({} words); chosen k = {}",
        run.stats.rounds, run.stats.messages, run.stats.words, run.k
    );

    // The distributed result must equal the sequential canonical MST.
    let truth = mst::kruskal(&g);
    assert_eq!(run.edges, truth.edges, "distributed result diverged from Kruskal");
    println!("verified: identical to sequential Kruskal ({} edges)", truth.edges.len());

    // Where did the messages go? Per-protocol-step breakdown.
    println!("\nmessage breakdown by protocol step:");
    print!("{}", run.stats.tag_table());
    Ok(())
}
