//! Controlled-GHS as a standalone tool (Theorem 4.3): build an
//! `(O(n/k), O(k))` MST forest and inspect its shape.
//!
//! Scenario: hierarchical network design — partition a weighted network
//! into few, shallow, MST-consistent clusters (fragments double as
//! aggregation trees). The `k` knob trades cluster count against cluster
//! radius; this example sweeps it and verifies the paper's guarantees on a
//! real input.
//!
//! ```text
//! cargo run --release --example forest_inspector
//! ```

use dmst::core::{analyze_forest, run_forest, ElkinConfig};
use dmst::graphs::generators;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = generators::WeightRng::new(5);
    let g = generators::random_connected(400, 1200, &mut rng);
    let n = g.num_nodes();
    println!("random connected graph: n = {n}, m = {}", g.num_edges());
    println!(
        "\n{:>4} {:>10} {:>8} {:>9} {:>9} {:>9} {:>10}",
        "k", "fragments", "<= n/k?", "max diam", "min size", "rounds", "messages"
    );

    for k in [2u64, 4, 8, 16, 32, 64] {
        let run = run_forest(&g, &ElkinConfig::with_k(k))?;
        let report = analyze_forest(&g, &run); // panics if invariants break
        let frag_bound = 2 * n as u64 / k; // ceil(log k) phases halve counts
        println!(
            "{k:>4} {:>10} {:>8} {:>9} {:>9} {:>9} {:>10}",
            report.num_fragments,
            if (report.num_fragments as u64) <= frag_bound { "yes" } else { "NO" },
            report.max_diameter,
            report.min_size,
            run.stats.rounds,
            run.stats.messages
        );
    }

    println!(
        "\nevery fragment is a subtree of the canonical MST (checked by\n\
         analyze_forest), fragment count stays under ~2n/k, and diameters\n\
         grow linearly in k — the (n/k, O(k))-MST forest of Theorem 4.3."
    );
    Ok(())
}
