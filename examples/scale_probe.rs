//! Scaling probe: runs the full four-stage algorithm on a random connected
//! graph and prints rounds, messages, per-stage attribution, and wallclock
//! — the measurement tool behind the EXPERIMENTS.md simulator-throughput
//! table and the first-pin numbers of the wallclock gate.
//!
//! ```text
//! cargo run --release --example scale_probe -- [n] [extra_edges] [shards]
//! ```

use std::time::Instant;

use dmst::core::{run_mst, ElkinConfig};
use dmst::graphs::generators as gen;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().map_or(65_536, |a| a.parse().expect("n"));
    let extra: usize = args.next().map_or(2 * n, |a| a.parse().expect("extra"));
    let shards: u32 = args.next().map_or(1, |a| a.parse().expect("shards"));

    let t0 = Instant::now();
    let g = gen::random_connected(n, extra, &mut gen::WeightRng::new(0x5CA1E));
    println!("generate: n = {}, m = {} ({:.2?})", g.num_nodes(), g.num_edges(), t0.elapsed());

    let cfg = ElkinConfig { shards, ..ElkinConfig::default() };
    let t1 = Instant::now();
    let run = run_mst(&g, &cfg).expect("run");
    let dt = t1.elapsed();
    let p = run.profile;
    println!(
        "solve:    rounds = {} (a {} / b {} / c {} / d {}), messages = {}, words = {}, k = {}",
        run.stats.rounds,
        p.stage_a,
        p.stage_b,
        p.stage_c,
        p.stage_d,
        run.stats.messages,
        run.stats.words,
        run.k,
    );
    let node_rounds = run.stats.rounds as u128 * g.num_nodes() as u128;
    println!(
        "wallclock {:.2?}, shards = {shards}, {:.1} Mnode-rounds/s, {:.1} ns/node-round",
        dt,
        node_rounds as f64 / dt.as_secs_f64() / 1e6,
        dt.as_nanos() as f64 / node_rounds as f64,
    );
}
