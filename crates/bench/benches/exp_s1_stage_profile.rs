//! Experiment S1 (supplementary) — where the rounds go, stage by stage.
//!
//! The paper's time bound decomposes into Stage A `O(D)`, Stage B
//! (Controlled-GHS) `O(k log* n)`, Stage C `O(D + n/(kb))`, and Stage D
//! `O((D + k + n/(kb)) log n)`. This experiment measures the actual split
//! across the two regimes and both `k` extremes, confirming which term pays
//! for what — the accounting behind Theorems 3.1/3.2.

use dmst_bench::{banner, header, row, Workload};
use dmst_core::{run_mst, ElkinConfig, ScheduleMode};
use dmst_graphs::generators as gen;

fn main() {
    banner(
        "S1: per-stage round profile",
        "Stage B scales with k; Stage D carries the log n Boruvka phases; Stage A/C stay ~D",
    );

    let r = &mut gen::WeightRng::new(0x51);
    let cases: Vec<(Workload, ElkinConfig)> = vec![
        (Workload::new("torus 32x32 (auto k)", gen::torus_2d(32, 32, r)), ElkinConfig::default()),
        (Workload::new("torus 32x32 (k=4)", gen::torus_2d(32, 32, r)), ElkinConfig::with_k(4)),
        (Workload::new("torus 32x32 (k=256)", gen::torus_2d(32, 32, r)), ElkinConfig::with_k(256)),
        (
            Workload::new("cliquepath 128x8 (auto)", gen::path_of_cliques(128, 8, r)),
            ElkinConfig::default(),
        ),
        (
            // The T1 headline workload: the n = 2304 cliquepath whose
            // Stage D the fused phases target (PR 3).
            Workload::new("cliquepath 288x8 (auto)", gen::path_of_cliques(288, 8, r)),
            ElkinConfig::default(),
        ),
        (
            Workload::new("random 1024 (auto)", gen::random_connected(1024, 3072, r)),
            ElkinConfig::default(),
        ),
        (
            Workload::new("random 1024 (b=8)", gen::random_connected(1024, 3072, r)),
            ElkinConfig::with_bandwidth(8),
        ),
    ];

    header(&["workload", "mode", "D", "k", "A", "B", "C", "D(stage)", "total"]);
    for (w, cfg) in cases {
        for mode in [ScheduleMode::Fixed, ScheduleMode::Adaptive] {
            let run = run_mst(&w.graph, &cfg.with_schedule_mode(mode)).expect("run");
            let p = run.profile;
            assert_eq!(
                p.stage_a + p.stage_b + p.stage_c + p.stage_d,
                run.stats.rounds,
                "profile must partition the run"
            );
            row(&[
                w.name.clone(),
                format!("{mode:?}").to_lowercase(),
                w.diameter.to_string(),
                run.k.to_string(),
                p.stage_a.to_string(),
                p.stage_b.to_string(),
                p.stage_c.to_string(),
                p.stage_d.to_string(),
                run.stats.rounds.to_string(),
            ]);
        }
    }
    println!(
        "\nshape check: Stage B grows ~linearly with k (compare k=4 vs k=256);\n\
         Stage D shrinks as k grows (fewer fragments to pipeline); bandwidth\n\
         compresses Stages C/D but not Stage A; on the high-D cliquepath the\n\
         whole profile is dominated by D-proportional terms under Fixed,\n\
         while Adaptive collapses its Stage B column (smaller k + tight\n\
         windows) and moves the cost into log(n/k) Stage D phases."
    );
}
