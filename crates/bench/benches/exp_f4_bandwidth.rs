//! Experiment F4 — Theorem 3.2: in `CONGEST(b log n)`, rounds scale as
//! `(D + sqrt(n/b)) log n` while the message count is essentially flat.
//!
//! Fixed torus (low D, so the sqrt term dominates) with `b` sweeping 1..32.

use dmst_bench::{banner, f3, header, round_bound, row, Workload};
use dmst_core::{run_mst, ElkinConfig};
use dmst_graphs::generators as gen;

fn main() {
    banner(
        "F4: CONGEST(b log n) bandwidth sweep (Theorem 3.2)",
        "rounds ~ (D + sqrt(n/b)) log n falling with b; messages ~ constant",
    );

    // Low diameter (D ~ 7 << sqrt(n) = 64), so the sqrt(n/b) term is what
    // the bandwidth attacks.
    let r = &mut gen::WeightRng::new(0xF4);
    let w = Workload::new("random n=4096", gen::random_connected(4096, 3 * 4096, r));
    let n = w.graph.num_nodes() as u64;
    println!("workload: {}, n = {n}, D = {}\n", w.name, w.diameter);

    header(&["b", "k", "rounds", "bound", "ratio", "messages"]);
    let mut first_msgs = None;
    for b in [1u32, 2, 4, 8, 16, 32] {
        let run = run_mst(&w.graph, &ElkinConfig::with_bandwidth(b)).expect("run");
        let bound = round_bound(n, u64::from(w.diameter), u64::from(b));
        row(&[
            b.to_string(),
            run.k.to_string(),
            run.stats.rounds.to_string(),
            f3(bound),
            f3(run.stats.rounds as f64 / bound),
            run.stats.messages.to_string(),
        ]);
        let base = *first_msgs.get_or_insert(run.stats.messages);
        assert!(run.stats.messages <= 2 * base, "message count should not grow materially with b");
    }
    println!(
        "\nshape check: the ratio column stays flat (the bound tracks the\n\
         measurement as b changes) and the message column barely moves."
    );
}
