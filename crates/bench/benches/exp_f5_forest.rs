//! Experiment F5 — Theorem 4.3: Controlled-GHS builds an `(n/k, O(k))`-MST
//! forest in `O(k log* n)` time with `O(m log k + n log k log* n)` messages.
//!
//! `k` sweeps 2..128 on a fixed random graph; we report fragment count
//! (vs `n/k`), max fragment diameter (vs `O(k)`), rounds (vs `k log* n`),
//! and messages (vs the bound).

use dmst_bench::{banner, f3, forest_bounds, header, row};
use dmst_core::{analyze_forest, run_forest, ElkinConfig};
use dmst_graphs::generators as gen;

fn main() {
    banner(
        "F5: Controlled-GHS forest construction (Theorem 4.3)",
        "(<= ~2n/k fragments, O(k) diameter) in O(k log* n) rounds, O(m log k + n log k log* n) msgs",
    );

    let n = 2048usize;
    let r = &mut gen::WeightRng::new(0xF5);
    let g = gen::random_connected(n, 3 * n, r);
    let m = g.num_edges() as u64;
    println!("workload: random graph, n = {n}, m = {m}\n");

    header(&["k", "frags", "2n/k", "maxdiam", "diam/k", "rounds", "r/bound", "msgs", "m/bound"]);
    for k in [2u64, 4, 8, 16, 32, 64, 128] {
        let run = run_forest(&g, &ElkinConfig::with_k(k)).expect("forest run");
        let report = analyze_forest(&g, &run); // validates MST-subtree invariants
        let (tb, mb) = forest_bounds(n as u64, m, k);
        assert!(
            report.num_fragments as u64 <= 2 * n as u64 / k + 1,
            "fragment bound violated at k={k}: {report:?}"
        );
        assert!(report.max_diameter <= 24 * k, "diameter bound violated at k={k}: {report:?}");
        row(&[
            k.to_string(),
            report.num_fragments.to_string(),
            (2 * n as u64 / k).to_string(),
            report.max_diameter.to_string(),
            f3(report.max_diameter as f64 / k as f64),
            run.stats.rounds.to_string(),
            f3(run.stats.rounds as f64 / tb),
            run.stats.messages.to_string(),
            f3(run.stats.messages as f64 / mb),
        ]);
    }
    println!(
        "\nshape check: fragment counts sit below 2n/k, diameters grow ~linearly\n\
         in k, and both normalized cost columns stay flat."
    );
}
