//! Ablation A3 — Eq. (1) of the paper: rounds behave like
//! `(D + k + n/k) log n`, so `k = sqrt(n)` balances the last two terms.
//!
//! `k` sweeps 1..512 on a 1024-vertex torus (`D = 32 = sqrt(n)`).
//!
//! Measured nuance worth reporting: the *right* branch (`k log* n` from
//! Controlled-GHS windows) rises exactly as predicted, but the *left*
//! branch rises much more gently than `n/k log n` — our pipelined
//! upcast/downcast spreads the `|F|` records across disjoint BFS subtrees,
//! so the `n/k` term only bites on the edges where fragments concentrate.
//! Eq. (1) charges the single-edge worst case. Consequently the measured
//! optimum sits at-or-below `sqrt(n)`, and the paper's automatic choice
//! stays within a small factor of it (asserted). The fused Stage D
//! (PR 3) pushed the optimum further below `sqrt(n)` — its per-phase
//! constant dropped ~3x, so the `n/k` branch flattened again — which is
//! why the factor is 3 and the auto-vs-optimum check runs on the
//! adaptive sweep (the automatic choice *is* adaptive).

use dmst_bench::{banner, f3, header, row, Workload};
use dmst_core::{run_mst, ElkinConfig, ScheduleMode};
use dmst_graphs::generators as gen;

fn main() {
    banner(
        "A3: k sensitivity (Eq. 1): rounds ~ (D + k + n/k) log n",
        "right branch ~ k; left branch flattened by subtree-parallel pipelining",
    );

    let r = &mut gen::WeightRng::new(0xA3);
    let w = Workload::new("torus 32x32", gen::torus_2d(32, 32, r));
    let n = w.graph.num_nodes() as u64;
    let d = u64::from(w.diameter);
    println!("workload: {}, n = {n}, D = {d}\n", w.name);

    header(&["k", "rounds", "adaptive", "(D+k+n/k)lg n", "ratio", "messages"]);
    let mut curve = Vec::new();
    let mut ada_curve = Vec::new();
    for k in [1u64, 2, 4, 8, 16, 32, 64, 128, 256, 512] {
        // Pin the baseline to the Fixed schedule explicitly — with_k alone
        // now inherits the Adaptive default, which would make the
        // comparison below vacuous.
        let run =
            run_mst(&w.graph, &ElkinConfig::with_k(k).with_schedule_mode(ScheduleMode::Fixed))
                .expect("run");
        let ada =
            run_mst(&w.graph, &ElkinConfig::with_k(k).with_schedule_mode(ScheduleMode::Adaptive))
                .expect("adaptive run");
        assert_eq!(run.edges, ada.edges, "schedule mode changed the MST at k={k}");
        assert!(
            ada.stats.rounds <= run.stats.rounds,
            "adaptive regressed at k={k}: {} > {}",
            ada.stats.rounds,
            run.stats.rounds
        );
        let model = (d + k + n / k) as f64 * (n as f64).log2();
        curve.push((k, run.stats.rounds));
        ada_curve.push((k, ada.stats.rounds));
        row(&[
            k.to_string(),
            run.stats.rounds.to_string(),
            ada.stats.rounds.to_string(),
            f3(model),
            f3(run.stats.rounds as f64 / model),
            run.stats.messages.to_string(),
        ]);
    }
    let auto = run_mst(&w.graph, &ElkinConfig::default()).expect("auto run");
    let (best_k, best_rounds) = ada_curve.iter().copied().min_by_key(|&(_, r)| r).expect("curve");
    let (_, worst_rounds) = curve.last().copied().expect("curve");
    println!(
        "\nautomatic choice: k = {} -> {} rounds; adaptive sweep minimum: k = {best_k} -> {best_rounds} rounds",
        auto.k, auto.stats.rounds
    );

    // The right branch must rise steeply (the k log* n cost is real) ...
    assert!(worst_rounds > 4 * best_rounds, "k >> sqrt(n) should cost several times the optimum");
    // ... and the paper's choice must stay within a small factor of the
    // sweep optimum despite the flattened left branch (3x since the fused
    // Stage D cut the n/k branch's constant and moved the optimum below
    // sqrt(n); see the module docs).
    assert!(
        auto.stats.rounds as f64 <= 3.0 * best_rounds as f64,
        "automatic k ({} rounds) strayed past 3x the sweep optimum ({best_rounds})",
        auto.stats.rounds
    );
    println!(
        "shape check: rounds rise ~linearly in k past sqrt(n); below sqrt(n)\n\
         the curve is flat-to-slightly-rising because pipelining parallelizes\n\
         the n/k term across BFS subtrees (Eq. (1) charges its single-edge\n\
         worst case). The automatic k is within 3x of the sweep optimum."
    );
}
