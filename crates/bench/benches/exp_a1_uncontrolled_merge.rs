//! Ablation A1 — why Controlled-GHS controls merging (paper §4).
//!
//! With the Cole–Vishkin + maximal-matching control, phase-`i` fragments
//! have diameter `O(2^i)`, so the final forest diameter is `O(k)`. With
//! plain Borůvka merging (every fragment fires its MWOE), fragments can
//! chain: on a path with monotone weights the very first phase glues
//! everything into one `Θ(n)`-diameter fragment.
//!
//! We measure the *resulting fragment diameter* in both modes. (Round
//! counts in uncontrolled mode are schedule upper bounds — without the
//! matching there is no per-phase diameter guarantee to budget against —
//! so the honest measured quantity is the diameter, which is what the
//! per-phase time actually depends on.)

use dmst_bench::{banner, header, row};
use dmst_core::{analyze_forest, run_forest, ElkinConfig, MergeControl};
use dmst_graphs::{generators as gen, WeightedGraph};

/// A path whose weights increase left to right: every vertex's MWOE points
/// left, so uncontrolled merging builds one long chain immediately.
fn monotone_path(n: usize) -> WeightedGraph {
    let edges = (1..n).map(|v| (v - 1, v, v as u64)).collect();
    WeightedGraph::new(n, edges).expect("valid path")
}

fn main() {
    banner(
        "A1: matched vs uncontrolled merging (fragment diameter control)",
        "matching keeps fragment diameter O(k); uncontrolled merging reaches Theta(n)",
    );

    header(&["workload", "n", "k", "mode", "frags", "max diam"]);
    let mut r = gen::WeightRng::new(0xA1);
    let cases: Vec<(String, WeightedGraph)> = vec![
        ("monotone path".into(), monotone_path(512)),
        ("grid 16x32".into(), gen::grid_2d(16, 32, &mut r)),
        ("random n=512".into(), gen::random_connected(512, 1536, &mut r)),
    ];

    for (name, g) in cases {
        let n = g.num_nodes();
        for k in [8u64, 32] {
            for (mode, label) in
                [(MergeControl::Matched, "matched"), (MergeControl::Uncontrolled, "uncontrolled")]
            {
                let cfg = ElkinConfig {
                    k_override: Some(k),
                    merge_control: mode,
                    ..ElkinConfig::default()
                };
                let run = run_forest(&g, &cfg).expect("forest run");
                let report = analyze_forest(&g, &run);
                if mode == MergeControl::Matched {
                    assert!(
                        report.max_diameter <= 24 * k,
                        "matched-mode diameter exploded: {report:?}"
                    );
                }
                row(&[
                    name.clone(),
                    n.to_string(),
                    k.to_string(),
                    label.to_string(),
                    report.num_fragments.to_string(),
                    report.max_diameter.to_string(),
                ]);
            }
        }
    }
    println!(
        "\nshape check: matched diameters stay within ~24k on every input;\n\
         uncontrolled diameters on the monotone path hit Theta(n) after the\n\
         first phase — the failure mode the matching exists to prevent."
    );
}
