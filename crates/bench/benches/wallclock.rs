//! Criterion wall-clock benches: engineering performance of the substrate
//! (the paper makes no wall-clock claims; these guard the simulator's and
//! oracles' throughput so the experiment harness stays usable).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use congest_sim::{Message, Network, NodeProgram, RoundCtx, RunConfig, Topology};
use dmst_core::{run_mst, ElkinConfig};
use dmst_graphs::{generators as gen, mst};

/// A trivial flood program: measures raw simulator round/delivery overhead.
#[derive(Clone)]
struct Flood {
    seen: bool,
    origin: bool,
}

#[derive(Clone)]
struct Tok;
impl Message for Tok {}

impl NodeProgram for Flood {
    type Msg = Tok;
    fn on_round(&mut self, ctx: &mut RoundCtx<'_, Tok>) {
        if (self.origin || !ctx.inbox().is_empty()) && !self.seen {
            self.seen = true;
            for p in 0..ctx.degree() {
                ctx.send(p, Tok);
            }
        }
    }
    fn is_done(&self) -> bool {
        self.seen
    }
}

fn bench_simulator(c: &mut Criterion) {
    let g = gen::torus_2d(32, 32, &mut gen::WeightRng::new(1));
    c.bench_function("simulator/flood_torus_1024", |b| {
        b.iter_batched(
            || {
                let topo = Topology::new(g.num_nodes(), g.edges()).unwrap();
                Network::new(topo, |i| Flood { seen: false, origin: i.id == 0 })
            },
            |mut net| net.run(&RunConfig::default()).unwrap(),
            BatchSize::SmallInput,
        )
    });
}

fn bench_generators(c: &mut Criterion) {
    c.bench_function("generators/random_connected_4096", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            gen::random_connected(4096, 12288, &mut gen::WeightRng::new(seed))
        })
    });
}

fn bench_sequential_mst(c: &mut Criterion) {
    let g = gen::random_connected(4096, 16384, &mut gen::WeightRng::new(2));
    c.bench_function("mst/kruskal_4096", |b| b.iter(|| mst::kruskal(&g)));
    c.bench_function("mst/prim_4096", |b| b.iter(|| mst::prim(&g)));
    c.bench_function("mst/boruvka_4096", |b| b.iter(|| mst::boruvka(&g)));
}

fn bench_end_to_end(c: &mut Criterion) {
    let g = gen::torus_2d(16, 16, &mut gen::WeightRng::new(3));
    c.bench_function("end_to_end/elkin_torus_256", |b| {
        b.iter(|| run_mst(&g, &ElkinConfig::default()).unwrap())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_simulator, bench_generators, bench_sequential_mst, bench_end_to_end
}
criterion_main!(benches);
