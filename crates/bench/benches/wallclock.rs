//! Criterion wall-clock benches: engineering performance of the substrate
//! (the paper makes no wall-clock claims; these guard the simulator's and
//! oracles' throughput so the experiment harness stays usable).
//!
//! Pass `--gate` to run the pinned throughput regression gate instead of
//! the criterion benches: fixed workloads with absolute wallclock ceilings,
//! the way `tests/round_pins.rs` pins rounds. Release CI runs it as
//! `cargo bench --bench wallclock -- --gate`.

use std::time::Instant;

use criterion::{criterion_group, BatchSize, Criterion};

use congest_sim::{Message, Network, NodeProgram, RoundCtx, RunConfig, Topology};
use dmst_core::{run_mst, ElkinConfig};
use dmst_graphs::{generators as gen, mst};

/// A trivial flood program: measures raw simulator round/delivery overhead.
#[derive(Clone)]
struct Flood {
    seen: bool,
    origin: bool,
}

#[derive(Clone)]
struct Tok;
impl Message for Tok {
    fn encode(&self, out: &mut congest_sim::WireWriter<'_>) {
        out.word(0);
    }
    fn decode(r: &mut congest_sim::WireReader<'_>) -> Self {
        r.word();
        Tok
    }
}

impl NodeProgram for Flood {
    type Msg = Tok;
    fn on_round(&mut self, ctx: &mut RoundCtx<'_, Tok>) {
        if (self.origin || !ctx.inbox().is_empty()) && !self.seen {
            self.seen = true;
            for p in 0..ctx.degree() {
                ctx.send(p, Tok);
            }
        }
    }
    fn is_done(&self) -> bool {
        self.seen
    }
}

fn bench_simulator(c: &mut Criterion) {
    let g = gen::torus_2d(32, 32, &mut gen::WeightRng::new(1));
    c.bench_function("simulator/flood_torus_1024", |b| {
        b.iter_batched(
            || {
                let topo = Topology::new(g.num_nodes(), g.edges()).unwrap();
                Network::new(topo, |i| Flood { seen: false, origin: i.id == 0 })
            },
            |mut net| net.run(&RunConfig::default()).unwrap(),
            BatchSize::SmallInput,
        )
    });
}

fn bench_generators(c: &mut Criterion) {
    c.bench_function("generators/random_connected_4096", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            gen::random_connected(4096, 12288, &mut gen::WeightRng::new(seed))
        })
    });
}

fn bench_sequential_mst(c: &mut Criterion) {
    let g = gen::random_connected(4096, 16384, &mut gen::WeightRng::new(2));
    c.bench_function("mst/kruskal_4096", |b| b.iter(|| mst::kruskal(&g)));
    c.bench_function("mst/prim_4096", |b| b.iter(|| mst::prim(&g)));
    c.bench_function("mst/boruvka_4096", |b| b.iter(|| mst::boruvka(&g)));
}

fn bench_end_to_end(c: &mut Criterion) {
    let g = gen::torus_2d(16, 16, &mut gen::WeightRng::new(3));
    c.bench_function("end_to_end/elkin_torus_256", |b| {
        b.iter(|| run_mst(&g, &ElkinConfig::default()).unwrap())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_simulator, bench_generators, bench_sequential_mst, bench_end_to_end
}

/// One pinned throughput check: run `work`, compare against an absolute
/// wallclock ceiling. Ceilings are ~5x a healthy release measurement (see
/// EXPERIMENTS.md "Simulator throughput"), so only order-of-magnitude
/// regressions — an O(n)-per-round scan creeping back in, inbox churn,
/// a broken fast-forward — trip the gate, not scheduler noise.
fn gate_check<T>(label: &str, ceiling_ms: u128, work: impl FnOnce() -> T) -> T {
    let start = Instant::now();
    let out = work();
    let dt = start.elapsed();
    println!("gate: {label:<40} {:>8.1?}   (ceiling {ceiling_ms} ms)", dt);
    assert!(
        dt.as_millis() <= ceiling_ms,
        "throughput gate '{label}' took {dt:?}, ceiling {ceiling_ms} ms — \
         simulator hot path has regressed"
    );
    out
}

/// Peak resident set size of this process in kibibytes, from
/// `/proc/self/status` `VmHWM` (Linux only; `None` elsewhere). Printed by
/// the gate so memory regressions in the flat-arena executor are visible
/// in CI logs next to the wallclock numbers.
fn peak_rss_kib() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

/// The pinned gate (`--gate`). Debug builds are ~10-20x slower and would
/// need their own pins; CI runs this under `--release` only.
fn gate() {
    // Raw executor overhead: a flood over the 1024-node torus (about 4k
    // messages in ~65 rounds). Healthy: ~3 ms release.
    gate_check("simulator/flood_torus_1024", 100, || {
        let g = gen::torus_2d(32, 32, &mut gen::WeightRng::new(1));
        let topo = Topology::new(g.num_nodes(), g.edges()).unwrap();
        let mut net = Network::new(topo, |i| Flood { seen: false, origin: i.id == 0 });
        net.run(&RunConfig::default()).unwrap()
    });

    // End-to-end four-stage run at n = 16384 — the EXPERIMENTS.md
    // throughput workload (same generator and seed as scale_probe).
    // Healthy: ~2.9 s release on one core (was ~10 s before the flat-arena
    // executor; the word-ring + PortArena rework held the line, so the
    // ceiling is ratcheted from 15 s to 12 s). The rounds/messages of this
    // run are themselves pinned so the gate cannot pass by doing less work.
    let g = gen::random_connected(16_384, 32_768, &mut gen::WeightRng::new(0x5CA1E));
    let run = gate_check("end_to_end/elkin_random_16384", 12_000, || {
        run_mst(&g, &ElkinConfig::default()).unwrap()
    });
    assert_eq!(run.stats.rounds, 5740, "gate workload rounds moved; re-pin deliberately");
    assert_eq!(run.stats.messages, 3_312_325, "gate workload messages moved; re-pin deliberately");
    println!("gate: end_to_end wire words {:>27}", run.stats.wire_words);

    match peak_rss_kib() {
        Some(kib) => println!("gate: peak RSS {:>34} KiB", kib),
        None => println!("gate: peak RSS unavailable on this platform"),
    }
    println!("\nwallclock gate ok");
}

fn main() {
    if std::env::args().any(|a| a == "--gate") {
        gate();
        return;
    }
    benches();
}
