//! Ablation A4 — Fixed vs Adaptive Stage B scheduling.
//!
//! The fixed schedule pays every phase's worst case even when all
//! fragments finish early; Elkin17 §4 only requires the windows to *cover*
//! each sub-step. `ScheduleMode::Adaptive` (a) tightens each window to the
//! provable minimum, (b) ends a phase by a BFS-tree sync as soon as every
//! merge flood has settled whenever that beats the worst-case flood
//! window, and (c) shrinks `k` back to `sqrt(n/b)` on high-diameter
//! inputs. The output MST is identical by construction (conformance-tested
//! in both modes); this ablation measures the round savings.
//!
//! Expected shape: the high-diameter cliquepath — where the paper's
//! `k = Θ(H)` choice makes Stage B dominate — collapses by >= 3x; tori and
//! random graphs improve by the window-tightening margin.

use dmst_bench::{banner, f3, header, row, standard_trio};
use dmst_core::{run_mst, ElkinConfig};

fn main() {
    banner(
        "A4: adaptive Stage B scheduling (Fixed vs Adaptive)",
        "identical MST; high-diameter inputs gain >= 3x in rounds, others the window margin",
    );

    header(&["workload", "n", "fixed", "adaptive", "speedup", "k fix/ada"]);
    let mut high_d: Option<(u64, u64)> = None;
    for n in [256usize, 1024, 2304] {
        for w in standard_trio(n, 0x51) {
            let g = &w.graph;
            let fixed = run_mst(g, &ElkinConfig::fixed()).expect("fixed run");
            let ada = run_mst(g, &ElkinConfig::adaptive()).expect("adaptive run");
            assert_eq!(fixed.edges, ada.edges, "schedule mode changed the MST on {}", w.name);
            assert!(
                ada.stats.rounds <= fixed.stats.rounds,
                "{}: adaptive ({}) must not exceed fixed ({})",
                w.name,
                ada.stats.rounds,
                fixed.stats.rounds
            );
            if w.name.starts_with("cliquepath") && n == 2304 {
                high_d = Some((fixed.stats.rounds, ada.stats.rounds));
            }
            row(&[
                w.name.clone(),
                n.to_string(),
                fixed.stats.rounds.to_string(),
                ada.stats.rounds.to_string(),
                f3(fixed.stats.rounds as f64 / ada.stats.rounds as f64),
                format!("{}/{}", fixed.k, ada.k),
            ]);
        }
    }
    let (fixed, ada) = high_d.expect("cliquepath 2304 measured");
    assert!(
        3 * ada <= fixed,
        "cliquepath n=2304: adaptive ({ada}) must be <= 1/3 of fixed ({fixed})"
    );
    println!(
        "\nshape check: every speedup column is >= 1; the n=2304 cliquepath\n\
         (k follows H under Fixed) drops from ~51k rounds to <= 1/3 of that;\n\
         adaptive k equals the fixed k wherever H <= sqrt(n/b)."
    );
}
