//! Experiment F1 — Theorem 3.1 time bound: rounds `= O((D + sqrt(n)) log n)`.
//!
//! Sweep `n` on square tori (`D = Θ(sqrt(n))`) and on random graphs
//! (`D = O(log n)`); the ratio rounds / ((D + sqrt(n)) log n) should stay
//! roughly flat as `n` grows by 16x.

use dmst_bench::{banner, f3, header, round_bound, row, Workload};
use dmst_core::{run_mst, ElkinConfig};
use dmst_graphs::generators as gen;

fn main() {
    banner(
        "F1: round scaling vs n (Theorem 3.1)",
        "rounds / ((D + sqrt n) log n) is flat across a 16x growth in n",
    );

    header(&["workload", "n", "D", "k", "rounds", "bound", "ratio"]);
    let mut ratios = Vec::new();
    for side in [16usize, 24, 32, 48, 64] {
        let r = &mut gen::WeightRng::new(side as u64);
        let n = side * side;
        for w in [
            Workload::new(format!("torus {side}x{side}"), gen::torus_2d(side, side, r)),
            Workload::new(format!("random n={n}"), gen::random_connected(n, 3 * n, r)),
        ] {
            let run = run_mst(&w.graph, &ElkinConfig::default()).expect("run");
            let bound = round_bound(n as u64, u64::from(w.diameter), 1);
            let ratio = run.stats.rounds as f64 / bound;
            ratios.push(ratio);
            row(&[
                w.name.clone(),
                n.to_string(),
                w.diameter.to_string(),
                run.k.to_string(),
                run.stats.rounds.to_string(),
                f3(bound),
                f3(ratio),
            ]);
        }
    }
    let (lo, hi) = ratios.iter().fold((f64::MAX, f64::MIN), |(l, h), &x| (l.min(x), h.max(x)));
    println!(
        "\nratio spread: min {} / max {} (flat within a small constant = bound holds)",
        f3(lo),
        f3(hi)
    );
}
