//! Experiment T1 — the paper's §1.1 comparison table, measured.
//!
//! | algorithm | time | messages |
//! |---|---|---|
//! | GHS83/CT85 | `O(n log n)`-ish | `O(m + n log n)` |
//! | GKP98 Pipeline | `O(D + sqrt(n) log* n)` | `O(m + n^{3/2})` |
//! | Elkin 2017 | `O((D + sqrt(n)) log n)` | `O(m log n + n log n log* n)` |
//!
//! Expected shape: GHS wins on messages but pays heavily in rounds on
//! high-diameter inputs; Pipeline is fast but message-hungry as `n` grows;
//! Elkin is close to Pipeline's speed at near-GHS message volume. The
//! `elkin-adaptive` rows add the `ScheduleMode::Adaptive` knob (same MST,
//! tighter Stage B scheduling) — on the high-diameter cliquepath it
//! removes most of Elkin's fixed-window penalty.
//!
//! Pass `--smoke` to run only the CI guard: the n = 2304 cliquepath in
//! both modes (asserting the >= 3x adaptive win, the fused-Stage-D round
//! budgets, the Stage D share ceiling, and per-row total-wire-word
//! ceilings at measured x 1.1) plus one low-diameter sanity point.

use dmst_baselines::{run_ghs, run_pipeline};
use dmst_bench::{banner, header, row, standard_trio};
use dmst_core::{run_mst, ElkinConfig};

fn smoke() {
    banner(
        "T1 (smoke): adaptive-schedule + fused-Stage-D round budget guard",
        "cliquepath n=2304: Adaptive <= 1/3 of Fixed, total <= 8640, Stage D <= 2820 and <= 36% of the run; identical MST",
    );
    header(&["workload", "mode", "rounds", "stage D", "messages", "wire words"]);
    let cliquepath = standard_trio(2304, 0x51)
        .into_iter()
        .find(|w| w.name.starts_with("cliquepath"))
        .expect("trio contains a cliquepath");
    let fixed = run_mst(&cliquepath.graph, &ElkinConfig::fixed()).expect("fixed run");
    let ada = run_mst(&cliquepath.graph, &ElkinConfig::adaptive()).expect("adaptive run");
    assert_eq!(fixed.edges, ada.edges, "schedule mode changed the MST");
    for (mode, run) in [("fixed", &fixed), ("adaptive", &ada)] {
        row(&[
            cliquepath.name.clone(),
            mode.to_string(),
            run.stats.rounds.to_string(),
            run.profile.stage_d.to_string(),
            run.stats.messages.to_string(),
            run.stats.wire_words.to_string(),
        ]);
    }
    assert!(
        3 * ada.stats.rounds <= fixed.stats.rounds,
        "adaptive ({}) must be <= 1/3 of fixed ({}) on the n=2304 cliquepath",
        ada.stats.rounds,
        fixed.stats.rounds
    );
    // Fused-Stage-D gates (PR 3): golden 7853 total / 2565 Stage D rounds
    // (+10% slack), plus a share ceiling so Stage D cannot quietly become
    // the bottleneck again. The measured Stage D sits within ~3% of the
    // 4H + 2k floor of this workload's two Borůvka phases.
    assert!(
        ada.stats.rounds <= 8640,
        "adaptive cliquepath total {} exceeds the 7853-round golden (+10%)",
        ada.stats.rounds
    );
    assert!(
        ada.profile.stage_d <= 2820,
        "adaptive cliquepath Stage D {} exceeds the 2565-round golden (+10%)",
        ada.profile.stage_d
    );
    assert!(
        100 * ada.profile.stage_d <= 36 * ada.stats.rounds,
        "Stage D share {}/{} exceeds the 36% ceiling on the cliquepath",
        ada.profile.stage_d,
        ada.stats.rounds
    );
    let torus = standard_trio(256, 0x51).into_iter().next().expect("trio has a torus");
    let tf = run_mst(&torus.graph, &ElkinConfig::fixed()).expect("torus fixed");
    let ta = run_mst(&torus.graph, &ElkinConfig::adaptive()).expect("torus adaptive");
    assert_eq!(tf.edges, ta.edges);
    assert!(ta.stats.rounds <= tf.stats.rounds, "adaptive must not regress the torus");
    // Total-wire-words gate, one ceiling per smoke row: the measured
    // encoded volume of each run + 10% slack. `wire_words` counts the
    // words `Message::encode` actually wrote into the rings (not the
    // declared `words()` the capacity check charges), so a protocol change
    // that bloats the physical representation trips this even when the
    // declared budgets stay flat.
    for (label, run, ceiling) in [
        ("cliquepath/fixed", &fixed, 902_122u64),
        ("cliquepath/adaptive", &ada, 743_958),
        ("torus/fixed", &tf, 40_872),
        ("torus/adaptive", &ta, 42_816),
    ] {
        println!("wire gate: {label:<22} {:>9} (ceiling {ceiling})", run.stats.wire_words);
        assert!(
            run.stats.wire_words <= ceiling,
            "{label}: total wire words {} exceed the measured-x-1.1 ceiling {ceiling}",
            run.stats.wire_words
        );
    }
    println!(
        "\nsmoke ok: adaptive/fixed = {}/{}, stage D = {}",
        ada.stats.rounds, fixed.stats.rounds, ada.profile.stage_d
    );
}

fn main() {
    if std::env::args().any(|a| a == "--smoke") {
        smoke();
        return;
    }

    banner(
        "T1: algorithm comparison (rounds & messages)",
        "Elkin simultaneously approaches the best time and the best message count",
    );

    header(&["workload", "n", "algorithm", "rounds", "messages"]);
    for n in [256usize, 1024, 2304] {
        for w in standard_trio(n, 0x51) {
            let g = &w.graph;
            let ghs = run_ghs(g).expect("ghs run");
            let pipe = run_pipeline(g).expect("pipeline run");
            let elkin = run_mst(g, &ElkinConfig::fixed()).expect("elkin run");
            let ada = run_mst(g, &ElkinConfig::adaptive()).expect("elkin adaptive run");
            assert_eq!(ghs.edges, elkin.edges, "baselines disagree on the MST");
            assert_eq!(pipe.edges, elkin.edges, "baselines disagree on the MST");
            assert_eq!(ada.edges, elkin.edges, "schedule mode changed the MST");
            for (name, stats) in [
                ("ghs", &ghs.stats),
                ("pipeline", &pipe.stats),
                ("elkin", &elkin.stats),
                ("elkin-adaptive", &ada.stats),
            ] {
                row(&[
                    w.name.clone(),
                    n.to_string(),
                    name.to_string(),
                    stats.rounds.to_string(),
                    stats.messages.to_string(),
                ]);
            }
        }
    }
    println!(
        "\nshape check: on the cliquepath (high D), ghs rounds blow up; on all\n\
         inputs pipeline messages grow fastest; elkin stays near the best of\n\
         both columns, and elkin-adaptive removes the fixed-window penalty\n\
         (>= 3x on the n=2304 cliquepath) without moving the message column."
    );
}
