//! Experiment T1 — the paper's §1.1 comparison table, measured.
//!
//! | algorithm | time | messages |
//! |---|---|---|
//! | GHS83/CT85 | `O(n log n)`-ish | `O(m + n log n)` |
//! | GKP98 Pipeline | `O(D + sqrt(n) log* n)` | `O(m + n^{3/2})` |
//! | Elkin 2017 | `O((D + sqrt(n)) log n)` | `O(m log n + n log n log* n)` |
//!
//! Expected shape: GHS wins on messages but pays heavily in rounds on
//! high-diameter inputs; Pipeline is fast but message-hungry as `n` grows;
//! Elkin is close to Pipeline's speed at near-GHS message volume.

use dmst_baselines::{run_ghs, run_pipeline};
use dmst_bench::{banner, header, row, standard_trio};
use dmst_core::{run_mst, ElkinConfig};

fn main() {
    banner(
        "T1: algorithm comparison (rounds & messages)",
        "Elkin simultaneously approaches the best time and the best message count",
    );

    header(&["workload", "n", "algorithm", "rounds", "messages"]);
    for n in [256usize, 1024, 2304] {
        for w in standard_trio(n, 0x51) {
            let g = &w.graph;
            let ghs = run_ghs(g).expect("ghs run");
            let pipe = run_pipeline(g).expect("pipeline run");
            let elkin = run_mst(g, &ElkinConfig::default()).expect("elkin run");
            assert_eq!(ghs.edges, elkin.edges, "baselines disagree on the MST");
            assert_eq!(pipe.edges, elkin.edges, "baselines disagree on the MST");
            for (name, stats) in
                [("ghs", &ghs.stats), ("pipeline", &pipe.stats), ("elkin", &elkin.stats)]
            {
                row(&[
                    w.name.clone(),
                    n.to_string(),
                    name.to_string(),
                    stats.rounds.to_string(),
                    stats.messages.to_string(),
                ]);
            }
        }
    }
    println!(
        "\nshape check: on the cliquepath (high D), ghs rounds blow up; on all\n\
         inputs pipeline messages grow fastest; elkin stays near the best of\n\
         both columns."
    );
}
