//! Experiment F3 — Theorem 3.1 message bound:
//! `O(m log n + n log n log* n)` messages.
//!
//! Density sweep at fixed `n = 1024`: `m/n` from 2 to 32. The ratio
//! messages / (m log n + n log n log* n) should stay flat (slightly
//! falling, as the per-edge announce term comes to dominate), and the
//! per-tag breakdown shows `announce` (the only `Θ(m log n)` term)
//! dominating at high density.

use dmst_bench::{banner, f3, header, message_bound, row};
use dmst_core::{run_mst, ElkinConfig};
use dmst_graphs::generators as gen;

fn main() {
    banner(
        "F3: message scaling vs density (Theorem 3.1)",
        "messages / (m log n + n log n log* n) flat across a 16x density sweep",
    );

    let n = 1024usize;
    header(&["m/n", "m", "messages", "bound", "ratio", "announce%"]);
    for dens in [2usize, 4, 8, 16, 32] {
        let r = &mut gen::WeightRng::new(dens as u64);
        let g = gen::random_connected(n, dens * n - (n - 1), r);
        let m = g.num_edges() as u64;
        let run = run_mst(&g, &ElkinConfig::default()).expect("run");
        let bound = message_bound(n as u64, m);
        let ann =
            run.stats.messages_with_tag("b:announce") + run.stats.messages_with_tag("d:announce");
        row(&[
            dens.to_string(),
            m.to_string(),
            run.stats.messages.to_string(),
            f3(bound),
            f3(run.stats.messages as f64 / bound),
            format!("{:.1}", 100.0 * ann as f64 / run.stats.messages as f64),
        ]);
    }
    println!(
        "\nshape check: the ratio column is flat-to-falling; the announce share\n\
         rises with density because the m log n term is the only one that\n\
         scales with m."
    );
}
