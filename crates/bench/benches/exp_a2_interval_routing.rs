//! Ablation A2 — interval-routed downcast vs naive broadcast (paper §3).
//!
//! Each Borůvka phase answers every base fragment with its new coarse id.
//! Routing each answer along the unique root-to-fragment path (using the
//! nested intervals) costs `O(D * n/k)` messages per phase; broadcasting
//! every answer to the whole tree would cost `O(n * n/k)`. The paper calls
//! this out explicitly ("this downcast sends each message only along its
//! own root-destination path, rather than broadcasting it").
//!
//! We report the *measured* `d:downcast` message count and the *computed*
//! cost the naive broadcast would have incurred on the same phases
//! (answers-per-phase × (n - 1) tree edges).

use dmst_bench::{banner, f3, header, row, Workload};
use dmst_core::{run_forest, run_mst, ElkinConfig};
use dmst_graphs::generators as gen;

fn main() {
    banner(
        "A2: interval routing vs naive broadcast downcast",
        "measured downcast messages ~ D * n/k per phase, versus n * n/k for broadcast",
    );

    header(&["workload", "n", "frags", "phases", "routed", "broadcast", "saving"]);
    for side in [16usize, 32, 48] {
        let r = &mut gen::WeightRng::new(side as u64);
        let w = Workload::new(format!("torus {side}x{side}"), gen::torus_2d(side, side, r));
        let n = w.graph.num_nodes();

        // Count base fragments (same seed and config as the full run).
        let forest = run_forest(&w.graph, &ElkinConfig::default()).expect("forest");
        let mut frags: Vec<u64> = forest.fragment_of.clone();
        frags.sort_unstable();
        frags.dedup();
        let f = frags.len() as u64;

        let run = run_mst(&w.graph, &ElkinConfig::default()).expect("run");
        let routed = run.stats.messages_with_tag("d:downcast");
        // Boruvka phases executed: |F| halves each phase.
        let phases = 64 - u64::from(f.max(1).leading_zeros());
        // Naive alternative: every phase broadcasts each of the |F| answers
        // over all n-1 tree edges.
        let broadcast = phases * f * (n as u64 - 1);
        row(&[
            w.name.clone(),
            n.to_string(),
            f.to_string(),
            phases.to_string(),
            routed.to_string(),
            broadcast.to_string(),
            f3(broadcast as f64 / routed.max(1) as f64),
        ]);
    }
    println!(
        "\nshape check: the saving factor grows with n (it is ~n/D); interval\n\
         routing is what keeps the downcast term inside the near-linear\n\
         message budget."
    );
}
