//! Experiment F7 — the paper's motivation (§1.2): the Pipeline phase of
//! GKP98/KP98 "is responsible for its large message complexity".
//!
//! We sweep `n` over 16x on *snake tori* (weights force the MST into a
//! Hamiltonian path), where Controlled-GHS genuinely retains `Θ(sqrt n)`
//! base fragments — on benign random inputs fragments over-merge and the
//! superlinear term hides. The Pipeline's superlinear term is its final
//! chosen-edge broadcast (`Θ(|F| * n) = Θ(n^{3/2})` messages, tag
//! `pipe:announce`); Elkin's total stays `O(m log n + n log n log* n)`,
//! i.e. exponent ~1 plus log factors. The measured exponent for the
//! Pipeline's broadcast term should sit near 1.5 and clearly above Elkin's
//! total-message exponent.

use dmst_baselines::run_pipeline;
use dmst_bench::{banner, f3, header, row};
use dmst_core::{run_mst, ElkinConfig};
use dmst_graphs::generators as gen;

/// Least-squares slope of `ln y` against `ln x`.
fn loglog_slope(points: &[(f64, f64)]) -> f64 {
    let n = points.len() as f64;
    let (mut sx, mut sy, mut sxx, mut sxy) = (0.0, 0.0, 0.0, 0.0);
    for &(x, y) in points {
        let (lx, ly) = (x.ln(), y.ln());
        sx += lx;
        sy += ly;
        sxx += lx * lx;
        sxy += lx * ly;
    }
    (n * sxy - sx * sy) / (n * sxx - sx * sx)
}

fn main() {
    banner(
        "F7: Pipeline message blow-up on sparse graphs",
        "pipeline's broadcast term grows ~n^1.5; elkin total grows ~n polylog(n)",
    );

    header(&["n", "m", "pipe total", "pipe bcast", "elkin total"]);
    let mut bcast_pts = Vec::new();
    let mut elkin_pts = Vec::new();
    for side in [16usize, 24, 32, 48, 64] {
        let n = side * side;
        let r = &mut gen::WeightRng::new(n as u64);
        let g = gen::snake_torus(side, side, r); // m = 2n, MST = Hamiltonian path
        let pipe = run_pipeline(&g).expect("pipeline run");
        let elkin = run_mst(&g, &ElkinConfig::default()).expect("elkin run");
        assert_eq!(pipe.edges, elkin.edges);
        let bcast = pipe.stats.messages_with_tag("pipe:announce");
        bcast_pts.push((n as f64, bcast as f64));
        elkin_pts.push((n as f64, elkin.stats.messages as f64));
        row(&[
            n.to_string(),
            g.num_edges().to_string(),
            pipe.stats.messages.to_string(),
            bcast.to_string(),
            elkin.stats.messages.to_string(),
        ]);
    }

    let s_bcast = loglog_slope(&bcast_pts);
    let s_elkin = loglog_slope(&elkin_pts);
    println!(
        "\nlog-log growth exponents: pipeline broadcast term {} (theory 1.5), \
         elkin total {} (theory ~1 + log factors)",
        f3(s_bcast),
        f3(s_elkin)
    );
    assert!(s_bcast > s_elkin + 0.2, "the pipeline's broadcast term should grow distinctly faster");
    println!(
        "shape check: the broadcast term's exponent sits near 1.5 and clearly\n\
         above elkin's — the Theta(n^{{3/2}}) cost Elkin's Boruvka-on-top removes."
    );
}
