//! Experiment F6 — the §3 regime split: automatic `k` selection follows
//! `max(sqrt(n), Θ(D))` as the diameter interpolates from `O(log n)` to
//! `Θ(n)` at fixed `n`.
//!
//! Family: path-of-cliques at fixed n = 1024 with clique sizes from 512
//! (D = 3) down to 2 (D = 767), plus a random graph and a path as the two
//! extremes.

use dmst_bench::{banner, header, row, Workload};
use dmst_core::{run_mst, ElkinConfig};
use dmst_graphs::generators as gen;

fn main() {
    banner(
        "F6: regime crossover (k selection vs diameter)",
        "k = sqrt(n) while D <= sqrt(n), then k tracks Theta(D); rounds stay within bound in both regimes",
    );

    let n = 1024usize;
    let sqrt_n = 32u64;
    header(&["workload", "D", "sqrt n", "k", "regime", "rounds", "messages"]);

    let mut cases: Vec<Workload> = Vec::new();
    {
        let r = &mut gen::WeightRng::new(0xF6);
        cases.push(Workload::new("random", gen::random_connected(n, 3 * n, r)));
        for (count, size) in [(4usize, 256usize), (16, 64), (64, 16), (256, 4), (512, 2)] {
            cases.push(Workload::new(
                format!("cliquepath {count}x{size}"),
                gen::path_of_cliques(count, size, r),
            ));
        }
        cases.push(Workload::new("path", gen::path(n, r)));
    }

    for w in cases {
        // The regime split under test is the paper's choose_k, i.e. the
        // Fixed schedule (Adaptive pins k = sqrt(n/b) in both regimes).
        let run = run_mst(&w.graph, &ElkinConfig::fixed()).expect("run");
        let regime = if run.k > sqrt_n { "large-D" } else { "small-D" };
        // k never falls below sqrt(n) and never exceeds ~D (BFS height <= D).
        assert!(run.k >= sqrt_n, "k dropped below sqrt(n) on {}", w.name);
        assert!(
            run.k <= u64::from(w.diameter).max(sqrt_n),
            "k = {} exceeds max(D, sqrt n) = {} on {}",
            run.k,
            u64::from(w.diameter).max(sqrt_n),
            w.name
        );
        row(&[
            w.name.clone(),
            w.diameter.to_string(),
            sqrt_n.to_string(),
            run.k.to_string(),
            regime.to_string(),
            run.stats.rounds.to_string(),
            run.stats.messages.to_string(),
        ]);
    }
    println!(
        "\nshape check: the regime column flips exactly where D crosses sqrt(n);\n\
         messages stay near-linear on both sides (no D*sqrt(n) blow-up)."
    );
}
