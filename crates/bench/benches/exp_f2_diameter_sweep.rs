//! Experiment F2 — Theorem 3.1, large-diameter regime: at fixed `n`,
//! rounds grow linearly with `D` (the `O(D log n)` term), and the chosen
//! `k` tracks `Θ(D)`.
//!
//! Family: path-of-cliques with `n = count * size` fixed at ~1024 while the
//! clique count (hence the diameter) sweeps 16x.

use dmst_bench::{banner, f3, header, row, Workload};
use dmst_core::{run_mst, ElkinConfig};
use dmst_graphs::generators as gen;

fn main() {
    banner(
        "F2: round scaling vs D at fixed n (large-diameter regime)",
        "rounds / (D log n) flat; k = Θ(D) once D > sqrt(n)",
    );

    header(&["cliques", "size", "n", "D", "k", "rounds", "rnds/(D lg n)"]);
    for (count, size) in [(16usize, 64usize), (32, 32), (64, 16), (128, 8), (256, 4)] {
        let r = &mut gen::WeightRng::new((count * size) as u64);
        let w = Workload::new("cliquepath", gen::path_of_cliques(count, size, r));
        let n = w.graph.num_nodes();
        // The paper's k = Θ(D) large-diameter choice is what this
        // experiment demonstrates; it lives in the Fixed schedule
        // (Adaptive, the default, deliberately keeps k = sqrt(n/b)).
        let run = run_mst(&w.graph, &ElkinConfig::fixed()).expect("run");
        let lg = (n as f64).log2();
        let norm = run.stats.rounds as f64 / (f64::from(w.diameter).max(1.0) * lg);
        row(&[
            count.to_string(),
            size.to_string(),
            n.to_string(),
            w.diameter.to_string(),
            run.k.to_string(),
            run.stats.rounds.to_string(),
            f3(norm),
        ]);
    }
    println!(
        "\nshape check: the last column stabilizes as D grows past sqrt(n)~32,\n\
         and k rises with D (the paper's k = D choice)."
    );
}
