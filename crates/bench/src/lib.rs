//! # dmst-bench — the experiment harness
//!
//! Shared utilities for the bench targets that regenerate every
//! table/figure of the reproduction (see `DESIGN.md` §5 and
//! `EXPERIMENTS.md`). Each `benches/exp_*.rs` file is a `harness = false`
//! bench target: `cargo bench` runs them all and prints the tables.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use dmst_core::util::{ceil_log2, log_star};
use dmst_graphs::{analysis, generators as gen, WeightedGraph};

/// One prepared workload: a graph plus its measured hop-diameter.
#[derive(Clone, Debug)]
pub struct Workload {
    /// Display name.
    pub name: String,
    /// The graph.
    pub graph: WeightedGraph,
    /// Exact hop-diameter (or two-sweep lower bound for large inputs).
    pub diameter: u32,
}

impl Workload {
    /// Wraps a graph, measuring its diameter exactly below 5000 vertices
    /// and by double sweep above.
    pub fn new(name: impl Into<String>, graph: WeightedGraph) -> Self {
        let diameter = if graph.num_nodes() <= 5000 {
            analysis::diameter_exact(&graph)
        } else {
            analysis::diameter_double_sweep(&graph)
        };
        Self { name: name.into(), graph, diameter }
    }
}

/// The standard workload trio used by the comparison experiments: a
/// low-diameter torus, a random graph, and a high-diameter path-of-cliques,
/// all with ~`n` vertices.
pub fn standard_trio(n: usize, seed: u64) -> Vec<Workload> {
    let r = &mut gen::WeightRng::new(seed);
    let side = (n as f64).sqrt().round() as usize;
    let cliques = (n / 8).max(2);
    vec![
        Workload::new(format!("torus {side}x{side}"), gen::torus_2d(side, side, r)),
        Workload::new(format!("random n={n} m={}", 4 * n), gen::random_connected(n, 3 * n, r)),
        Workload::new(format!("cliquepath {cliques}x8"), gen::path_of_cliques(cliques, 8, r)),
        Workload::new(format!("snake {side}x{side}"), gen::snake_torus(side, side, r)),
    ]
}

/// The analytic round bound of Theorem 3.1/3.2:
/// `(D + sqrt(n/b)) * log2 n`.
pub fn round_bound(n: u64, d: u64, b: u64) -> f64 {
    let nb = (n / b.max(1)).max(1) as f64;
    (d as f64 + nb.sqrt()) * (ceil_log2(n.max(2)) as f64)
}

/// The analytic message bound of Theorem 3.1:
/// `m log n + n log n log* n`.
pub fn message_bound(n: u64, m: u64) -> f64 {
    let lg = ceil_log2(n.max(2)) as f64;
    let ls = log_star(n.max(2)) as f64;
    (m as f64) * lg + (n as f64) * lg * ls
}

/// The forest-construction bounds of Theorem 4.3:
/// `(k log* n, m log k + n log k log* n)`.
pub fn forest_bounds(n: u64, m: u64, k: u64) -> (f64, f64) {
    let ls = log_star(n.max(2)) as f64;
    let lk = ceil_log2(k.max(2)) as f64;
    (k as f64 * ls, (m as f64) * lk + (n as f64) * lk * ls)
}

/// Prints a header row followed by a rule, `|`-separated, fixed-width.
pub fn header(cols: &[&str]) {
    let line: Vec<String> = cols.iter().map(|c| format!("{c:>12}")).collect();
    println!("{}", line.join(" | "));
    println!("{}", vec!["-".repeat(12); cols.len()].join("-+-"));
}

/// Prints one data row matching [`header`].
pub fn row(cells: &[String]) {
    let line: Vec<String> = cells.iter().map(|c| format!("{c:>12}")).collect();
    println!("{}", line.join(" | "));
}

/// Formats a float to 3 significant-ish decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Prints the experiment banner.
pub fn banner(id: &str, claim: &str) {
    println!("\n=== {id} ===");
    println!("claim: {claim}\n");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_are_monotone() {
        assert!(round_bound(1024, 10, 1) > round_bound(1024, 10, 4));
        assert!(message_bound(1024, 4096) > message_bound(1024, 2048));
        let (t1, m1) = forest_bounds(1024, 4096, 8);
        let (t2, m2) = forest_bounds(1024, 4096, 32);
        assert!(t2 > t1 && m2 > m1);
    }

    #[test]
    fn standard_trio_is_connected() {
        for w in standard_trio(128, 3) {
            assert!(w.graph.is_connected(), "{} disconnected", w.name);
            assert!(w.diameter > 0);
        }
    }
}
