//! The guard table misses "b:burst" and keeps a stale "c:gone" row.

pub(crate) const TAG_GUARDS: &[(&str, char, &str)] = &[
    ("a:bfs", 'a', "next_wake"),
    ("c:gone", 'c', "next_wake"),
];

pub struct Node;

impl Node {
    fn stage_tag(&self) -> &'static str {
        "a"
    }

    fn next_wake(&self) -> Option<u64> {
        None
    }
}
