//! Seeded violation: a wire tag with no TAG_GUARDS row, and a stale row.

pub enum Msg {
    Ping,
    Burst,
}

impl Message for Msg {
    fn words(&self) -> u32 {
        match self {
            Msg::Ping => 1,
            Msg::Burst => 2,
        }
    }

    fn tag(&self) -> &'static str {
        match self {
            Msg::Ping => "a:bfs",
            Msg::Burst => "b:burst",
        }
    }
}

impl Msg {
    fn encode(&self, w: &mut WireWriter<'_>) {
        match self {
            Msg::Ping => w.tag(0),
            Msg::Burst => w.tag(1),
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Self {
        match r.tag() {
            0 => Msg::Ping,
            1 => Msg::Burst,
            other => unreachable!("unknown tag {other}"),
        }
    }
}
