//! Seeded violation: a wire tag with no TAG_GUARDS row, and a stale row.

pub enum Msg {
    Ping,
    Burst,
}

impl Message for Msg {
    fn words(&self) -> u32 {
        match self {
            Msg::Ping => 1,
            Msg::Burst => 2,
        }
    }

    fn tag(&self) -> &'static str {
        match self {
            Msg::Ping => "a:bfs",
            Msg::Burst => "b:burst",
        }
    }
}
