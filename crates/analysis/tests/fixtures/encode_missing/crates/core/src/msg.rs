//! Seeded violation: a Msg variant absent from both encode() and
//! decode(), plus a wildcard arm in encode() that would hide the
//! omission on the wire. words() and the tag mirror are complete so
//! only encode-exhaustive fires.

pub enum Msg {
    Ping,
    Pong { weight: u64 },
    Probe(u64),
}

impl Message for Msg {
    fn words(&self) -> u32 {
        match self {
            Msg::Ping => 1,
            Msg::Pong { .. } => 2,
            Msg::Probe(..) => 2,
        }
    }

    fn tag(&self) -> &'static str {
        "a:bfs"
    }

    fn encode(&self, w: &mut WireWriter<'_>) {
        match self {
            Msg::Ping => w.tag(0),
            Msg::Pong { weight } => {
                w.tag(1);
                w.word(*weight);
            }
            _ => w.tag(9),
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Self {
        match r.tag() {
            0 => Msg::Ping,
            1 => Msg::Pong { weight: r.word() },
            other => unreachable!("unknown tag {other}"),
        }
    }
}

pub(crate) const TAG_GUARDS: &[(&str, char, &str)] = &[("a:bfs", 'a', "next_wake")];

pub struct Node;

impl Node {
    fn stage_tag(&self) -> &'static str {
        "a"
    }

    fn next_wake(&self) -> Option<u64> {
        None
    }
}
