//! Seeded violation: word counts re-stated as literals at budget sites.

pub struct Node {
    bandwidth: u32,
}

impl Node {
    pub fn pipe_budget(&self, _round: u64) -> u32 {
        self.bandwidth
    }

    pub fn flush(&self, round: u64) -> bool {
        self.pipe_budget(round) >= 2
    }

    pub fn cap(&self) -> u32 {
        8 * self.bandwidth
    }
}
