//! Seeded violation: a Msg variant without a words() arm, plus a
//! wildcard arm that would hide the omission. The tag mirror below is
//! complete so only the words rules fire.

pub enum Msg {
    Ping,
    Pong { weight: u64 },
    Probe(u64, u64),
}

impl Message for Msg {
    fn words(&self) -> u32 {
        match self {
            Msg::Ping => 1,
            _ => 2,
        }
    }

    fn tag(&self) -> &'static str {
        "a:bfs"
    }
}

pub(crate) const TAG_GUARDS: &[(&str, char, &str)] = &[("a:bfs", 'a', "next_wake")];

pub struct Node;

impl Node {
    fn stage_tag(&self) -> &'static str {
        "a"
    }

    fn next_wake(&self) -> Option<u64> {
        None
    }
}
