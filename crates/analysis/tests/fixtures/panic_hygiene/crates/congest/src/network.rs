//! Seeded violation: bare unwrap and arithmetic indexing in the executor.

pub fn drain(rings: &mut [Vec<u64>], base: usize, p: usize) -> u64 {
    let ring = &mut rings[base + p];
    ring.pop().unwrap()
}
