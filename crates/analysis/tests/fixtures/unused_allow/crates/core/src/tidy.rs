//! Seeded violation: an allow pragma with nothing to suppress, and a
//! malformed pragma missing its reason.

// dmst-analysis:allow(hash-order) -- stale justification, nothing here anymore
pub fn tidy() -> u64 {
    7
}

// dmst-analysis:allow(time-source)
pub fn also_tidy() -> u64 {
    8
}
