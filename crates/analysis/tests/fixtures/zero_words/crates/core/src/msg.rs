//! Seeded violation: a words() arm that can return 0. The tag mirror
//! below is complete so only words-zero fires.

pub enum Msg {
    Ping,
    Ack,
}

impl Message for Msg {
    fn words(&self) -> u32 {
        match self {
            Msg::Ping => 1,
            Msg::Ack => 0,
        }
    }

    fn tag(&self) -> &'static str {
        "a:bfs"
    }
}

pub(crate) const TAG_GUARDS: &[(&str, char, &str)] = &[("a:bfs", 'a', "next_wake")];

pub struct Node;

impl Node {
    fn stage_tag(&self) -> &'static str {
        "a"
    }

    fn next_wake(&self) -> Option<u64> {
        None
    }
}

impl Msg {
    fn encode(&self, w: &mut WireWriter<'_>) {
        match self {
            Msg::Ping => w.tag(0),
            Msg::Ack => w.tag(1),
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Self {
        match r.tag() {
            0 => Msg::Ping,
            1 => Msg::Ack,
            other => unreachable!("unknown tag {other}"),
        }
    }
}
