//! A clean protocol file: exhaustive words(), positive word counts,
//! mirrored tags.

pub enum Msg {
    Ping,
    Pong { weight: u64 },
}

impl Message for Msg {
    fn words(&self) -> u32 {
        match self {
            Msg::Ping => 1,
            Msg::Pong { .. } => 2,
        }
    }

    fn tag(&self) -> &'static str {
        match self {
            Msg::Ping => "a:bfs",
            Msg::Pong { .. } => "b:reply",
        }
    }
}

pub(crate) const TAG_GUARDS: &[(&str, char, &str)] =
    &[("a:bfs", 'a', "next_wake"), ("b:reply", 'b', "next_wake")];

pub struct Node {
    counts: std::collections::BTreeMap<u64, u64>,
}

impl Node {
    fn stage_tag(&self) -> &'static str {
        match self.counts.len() {
            0 => "a",
            _ => "b",
        }
    }

    fn next_wake(&self) -> Option<u64> {
        None
    }
}

impl Msg {
    fn encode(&self, w: &mut WireWriter<'_>) {
        match self {
            Msg::Ping => w.tag(0),
            Msg::Pong { weight } => {
                w.tag(1);
                w.word(*weight);
            }
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Self {
        match r.tag() {
            0 => Msg::Ping,
            1 => Msg::Pong { weight: r.word() },
            other => unreachable!("unknown tag {other}"),
        }
    }
}
