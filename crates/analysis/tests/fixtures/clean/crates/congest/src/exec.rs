//! A clean executor-adjacent file: a reasoned allow that is used.

pub fn dedup(xs: &[u64]) -> usize {
    // dmst-analysis:allow(hash-order) -- membership-only dedup, never iterated
    let set: std::collections::HashSet<&u64> = xs.iter().collect();
    set.len()
}
