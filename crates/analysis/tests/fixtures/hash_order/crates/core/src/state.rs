//! Seeded violation: an unordered map in protocol state.

use std::collections::HashMap;

pub struct State {
    pub members: HashMap<u64, Vec<usize>>,
}

#[cfg(test)]
mod tests {
    // Unordered collections are fine in test code.
    use std::collections::HashSet;

    #[test]
    fn exempt() {
        let _ = HashSet::<u64>::new();
    }
}
