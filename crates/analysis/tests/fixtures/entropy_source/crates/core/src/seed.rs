//! Seeded violation: ambient entropy in protocol code.

pub fn roll() -> u64 {
    let mut rng = rand::thread_rng();
    rng.next_u64()
}
