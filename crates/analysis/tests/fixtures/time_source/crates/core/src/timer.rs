//! Seeded violation: wall-clock time in protocol code.

pub fn stamp() -> std::time::Instant {
    std::time::Instant::now()
}
