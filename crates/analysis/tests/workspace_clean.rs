//! The tier-1 gate: the real workspace must analyze clean. This is the
//! same engine and file set as `cargo run -p dmst-analysis -- --check`,
//! so a violation fails `cargo test -q` even where CI is not running.

use std::path::PathBuf;

use dmst_analysis::{analyze, collect_workspace};

#[test]
fn workspace_has_zero_findings() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("..").join("..");
    let files = collect_workspace(&root).expect("workspace readable");
    // Sanity: the walk actually saw the protocol crates (a broken root
    // would vacuously pass).
    assert!(files.len() >= 30, "suspiciously few files collected: {}", files.len());
    for need in
        ["crates/core/src/msg.rs", "crates/congest/src/network.rs", "crates/core/src/node/mod.rs"]
    {
        assert!(files.iter().any(|f| f.path == need), "missing {need}");
    }
    let findings = analyze(&files);
    assert!(
        findings.is_empty(),
        "workspace contract violations:\n{}",
        findings.iter().map(ToString::to_string).collect::<Vec<_>>().join("\n")
    );
}
