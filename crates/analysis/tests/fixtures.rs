//! Negative-fixture coverage: each seeded tree under `tests/fixtures/`
//! must produce exactly the expected findings — rule IDs *and* file:line
//! spans — and the clean tree must produce none.

use std::path::PathBuf;

use dmst_analysis::{analyze, collect_workspace, Finding};

fn run(case: &str) -> Vec<Finding> {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(case);
    let files = collect_workspace(&root).expect("fixture tree readable");
    assert!(!files.is_empty(), "fixture `{case}` has no sources");
    analyze(&files)
}

/// Asserts the findings of `case` are exactly `want` as `(rule, path, line)`
/// triples, in the engine's sorted order.
fn expect(case: &str, want: &[(&str, &str, u32)]) {
    let got = run(case);
    let got_spans: Vec<(&str, &str, u32)> =
        got.iter().map(|f| (f.rule, f.path.as_str(), f.line)).collect();
    assert_eq!(got_spans, want, "case `{case}`: {got:#?}");
}

#[test]
fn clean_tree_reports_zero_findings() {
    expect("clean", &[]);
}

#[test]
fn hash_order() {
    expect(
        "hash_order",
        &[
            ("hash-order", "crates/core/src/state.rs", 3),
            ("hash-order", "crates/core/src/state.rs", 6),
        ],
    );
}

#[test]
fn time_source() {
    expect(
        "time_source",
        &[
            ("time-source", "crates/core/src/timer.rs", 3),
            ("time-source", "crates/core/src/timer.rs", 4),
        ],
    );
}

#[test]
fn entropy_source() {
    expect("entropy_source", &[("entropy-source", "crates/core/src/seed.rs", 4)]);
}

#[test]
fn words_missing_arm_and_wildcard() {
    expect(
        "words_missing",
        &[
            ("words-exhaustive", "crates/core/src/msg.rs", 7),
            ("words-exhaustive", "crates/core/src/msg.rs", 8),
            ("words-exhaustive", "crates/core/src/msg.rs", 15),
        ],
    );
    let got = run("words_missing");
    assert!(got.iter().any(|f| f.msg.contains("Msg::Pong")), "{got:#?}");
    assert!(got.iter().any(|f| f.msg.contains("Msg::Probe")), "{got:#?}");
    assert!(got.iter().any(|f| f.msg.contains("wildcard")), "{got:#?}");
}

#[test]
fn encode_missing_variant_and_wildcard() {
    expect(
        "encode_missing",
        &[
            ("encode-exhaustive", "crates/core/src/msg.rs", 9),
            ("encode-exhaustive", "crates/core/src/msg.rs", 9),
            ("encode-exhaustive", "crates/core/src/msg.rs", 32),
        ],
    );
    let got = run("encode_missing");
    assert!(got.iter().any(|f| f.msg.contains("Msg::Probe never appears in Message::encode()")));
    assert!(got.iter().any(|f| f.msg.contains("Msg::Probe never appears in Message::decode()")));
    assert!(got.iter().any(|f| f.msg.contains("wildcard")), "{got:#?}");
}

#[test]
fn zero_words() {
    expect("zero_words", &[("words-zero", "crates/core/src/msg.rs", 13)]);
}

#[test]
fn drifting_literal() {
    expect(
        "drifting_literal",
        &[
            ("drifting-literal", "crates/core/src/node.rs", 13),
            ("drifting-literal", "crates/core/src/node.rs", 17),
        ],
    );
}

#[test]
fn tag_guard_missing_and_stale() {
    expect(
        "tag_guard",
        &[("tag-guard", "crates/core/src/msg.rs", 19), ("tag-guard", "crates/core/src/node.rs", 5)],
    );
    let got = run("tag_guard");
    assert!(got.iter().any(|f| f.msg.contains("\"b:burst\"")), "{got:#?}");
    assert!(got.iter().any(|f| f.msg.contains("never sends")), "{got:#?}");
}

#[test]
fn panic_hygiene() {
    expect(
        "panic_hygiene",
        &[
            ("panic-hygiene", "crates/congest/src/network.rs", 4),
            ("panic-hygiene", "crates/congest/src/network.rs", 5),
        ],
    );
}

#[test]
fn unused_and_malformed_allow() {
    expect(
        "unused_allow",
        &[
            ("unused-allow", "crates/core/src/tidy.rs", 4),
            ("malformed-allow", "crates/core/src/tidy.rs", 9),
        ],
    );
}
