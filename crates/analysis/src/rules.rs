//! The protocol-contract rules.
//!
//! Each rule is grounded in a bug class this repository has already paid
//! for dynamically (proptest shrinkage, golden-pin churn, hand-audited
//! "drifting literal" sweeps in PR 3); see `DESIGN.md` § "Static
//! contracts" for the rule-by-rule rationale and the division of labor
//! with `clippy.toml`'s `disallowed-methods` lane.

use crate::lexer::{matching_brace, Tok, TokKind};
use crate::{Finding, ParsedFile};

/// Machine-readable description of one rule.
#[derive(Clone, Copy, Debug)]
pub struct RuleInfo {
    /// Stable rule id, used in findings and allow pragmas.
    pub id: &'static str,
    /// One-line description (shown by `--list-rules`).
    pub what: &'static str,
}

/// Every rule the engine knows, including the meta rules that audit the
/// pragmas themselves.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "hash-order",
        what: "unordered containers (HashMap/HashSet/RandomState) in protocol code: \
               iteration order is platform-defined and breaks bit-identical determinism",
    },
    RuleInfo {
        id: "time-source",
        what: "wall-clock access (Instant/SystemTime) in protocol code: rounds are the \
               only clock the simulator recognizes",
    },
    RuleInfo {
        id: "entropy-source",
        what: "ambient entropy (thread_rng/OsRng/from_entropy/RandomState) in protocol \
               code: all randomness must be seeded",
    },
    RuleInfo {
        id: "words-exhaustive",
        what: "every Msg variant needs its own arm in Message::words(); wildcard arms \
               silently under-account new variants",
    },
    RuleInfo {
        id: "encode-exhaustive",
        what: "every Msg variant must appear in Message::encode() and Message::decode(); \
               wildcard arms would silently mis-frame new variants on the wire",
    },
    RuleInfo {
        id: "words-zero",
        what: "a words() arm that can return 0 under-declares bandwidth (the >= 1 \
               contract of congest_sim::Message)",
    },
    RuleInfo {
        id: "drifting-literal",
        what: "pipeline-budget sites must derive thresholds from Msg::words() and \
               UNIT_WORDS, not re-state word counts as literals",
    },
    RuleInfo {
        id: "tag-guard",
        what: "every wire tag must be mirrored in node::TAG_GUARDS with its stage \
               census letter and next_wake guard",
    },
    RuleInfo {
        id: "panic-hygiene",
        what: "unwrap/expect/panic!/arithmetic indexing in the executor hot path needs \
               a reasoned allow",
    },
    RuleInfo {
        id: "unused-allow",
        what: "an allow pragma that suppresses nothing is itself an error (meta rule; \
               not suppressible)",
    },
    RuleInfo {
        id: "malformed-allow",
        what: "an allow pragma must match `dmst-analysis:allow(<rule>) -- <reason>` \
               (meta rule; not suppressible)",
    },
];

/// Is `id` a known (non-meta) rule an allow pragma may name?
pub fn is_known_rule(id: &str) -> bool {
    RULES.iter().any(|r| r.id == id && r.id != "unused-allow" && r.id != "malformed-allow")
}

// ---------------------------------------------------------------------------
// Scope: which rules run where.
// ---------------------------------------------------------------------------

/// How a file participates in analysis, derived from its workspace-relative
/// path. Benches, examples, integration tests, vendored stubs, and the
/// analyzer itself are out of scope by construction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scope {
    /// `crates/{core,congest,baselines}/src` and the umbrella `src/`: the
    /// protocol crates; every rule applies.
    Protocol,
    /// `crates/graphs/src`: determinism rules apply (generators feed the
    /// golden pins), bandwidth/tag rules do not.
    Graphs,
    /// Everything else: lexed (for cross-file facts) but no findings.
    Exempt,
}

/// Classifies a workspace-relative, `/`-separated path.
pub fn classify(path: &str) -> Scope {
    let protocol_roots =
        ["src/", "crates/core/src/", "crates/congest/src/", "crates/baselines/src/"];
    if protocol_roots.iter().any(|r| path.starts_with(r)) {
        Scope::Protocol
    } else if path.starts_with("crates/graphs/src/") {
        Scope::Graphs
    } else {
        Scope::Exempt
    }
}

// ---------------------------------------------------------------------------
// Per-file token rules.
// ---------------------------------------------------------------------------

const HASH_IDENTS: &[&str] = &["HashMap", "HashSet", "hash_map", "hash_set"];
const TIME_IDENTS: &[&str] = &["Instant", "SystemTime"];
const ENTROPY_IDENTS: &[&str] = &["thread_rng", "OsRng", "from_entropy", "RandomState"];

/// Runs every per-file rule over one parsed file.
pub fn check_file(f: &ParsedFile, findings: &mut Vec<Finding>) {
    if f.scope == Scope::Exempt {
        return;
    }
    determinism_rules(f, findings);
    if f.scope == Scope::Protocol {
        drifting_literal(f, findings);
        words_rules(f, findings);
        encode_rules(f, findings);
        if f.path.ends_with("/network.rs") {
            panic_hygiene(f, findings);
        }
    }
}

/// `hash-order` / `time-source` / `entropy-source`: forbidden identifiers.
fn determinism_rules(f: &ParsedFile, findings: &mut Vec<Finding>) {
    for (i, t) in f.tokens.iter().enumerate() {
        if f.test_mask[i] || t.kind != TokKind::Ident {
            continue;
        }
        let rule = if HASH_IDENTS.contains(&t.text.as_str()) {
            "hash-order"
        } else if TIME_IDENTS.contains(&t.text.as_str()) {
            "time-source"
        } else if ENTROPY_IDENTS.contains(&t.text.as_str()) {
            "entropy-source"
        } else {
            continue;
        };
        findings.push(Finding {
            rule,
            path: f.path.clone(),
            line: t.line,
            msg: format!("`{}` is forbidden in protocol code (nondeterminism hazard)", t.text),
        });
    }
}

/// `drifting-literal`: a line that touches the pipeline budget must not
/// carry a numeric word count, and the unit size must come from
/// `UNIT_WORDS`, never a `<literal> * bandwidth` product (the exact drift
/// class PR 3 swept by hand).
fn drifting_literal(f: &ParsedFile, findings: &mut Vec<Finding>) {
    let mut lines: Vec<(u32, bool, bool, bool, bool)> = Vec::new(); // (line, pipe, band, star, int)
    for (i, t) in f.tokens.iter().enumerate() {
        if f.test_mask[i] {
            continue;
        }
        let entry = match lines.last_mut() {
            Some(e) if e.0 == t.line => e,
            _ => {
                lines.push((t.line, false, false, false, false));
                lines.last_mut().expect("just pushed")
            }
        };
        entry.1 |= t.is_ident("pipe_budget");
        entry.2 |= t.is_ident("bandwidth");
        entry.3 |= t.is_punct('*');
        entry.4 |= t.kind == TokKind::Num && t.int_value().is_some();
    }
    for (line, pipe, band, star, int) in lines {
        if pipe && int {
            findings.push(Finding {
                rule: "drifting-literal",
                path: f.path.clone(),
                line,
                msg: "budget threshold written as a literal; derive it from Msg::words()"
                    .to_string(),
            });
        } else if band && star && int {
            findings.push(Finding {
                rule: "drifting-literal",
                path: f.path.clone(),
                line,
                msg: "unit size re-stated as a literal next to `bandwidth`; use \
                      congest_sim::UNIT_WORDS"
                    .to_string(),
            });
        }
    }
}

/// `words-exhaustive` + `words-zero` over any file that defines `enum Msg`
/// and/or `fn words` bodies.
fn words_rules(f: &ParsedFile, findings: &mut Vec<Finding>) {
    let toks = &f.tokens;
    // `words-zero`: every `fn words` body, whatever it belongs to.
    let mut i = 0;
    while i + 1 < toks.len() {
        if toks[i].is_ident("fn") && toks[i + 1].is_ident("words") && !f.test_mask[i] {
            if let Some(open) = (i + 2..toks.len()).find(|&k| toks[k].is_punct('{')) {
                let close = matching_brace(toks, open);
                for t in &toks[open + 1..close] {
                    if t.int_value() == Some(0) {
                        findings.push(Finding {
                            rule: "words-zero",
                            path: f.path.clone(),
                            line: t.line,
                            msg: "words() arm can return 0, violating the >= 1 contract \
                                  (see congest_sim::Message::words)"
                                .to_string(),
                        });
                    }
                }
                i = close;
                continue;
            }
        }
        i += 1;
    }

    // `words-exhaustive` needs both the enum and the impl in this file.
    let Some(variants) = msg_enum_variants(toks, &f.test_mask) else { return };
    let Some(words) = words_match(toks, &f.test_mask) else {
        // An `enum Msg` without any words() match at all: every variant is
        // unaccounted for. Report once at the enum.
        if let Some((_, line)) = variants.first() {
            findings.push(Finding {
                rule: "words-exhaustive",
                path: f.path.clone(),
                line: *line,
                msg: "enum Msg has no Message::words() match".to_string(),
            });
        }
        return;
    };
    for (v, line) in &variants {
        if !words.names.iter().any(|n| n == v) {
            findings.push(Finding {
                rule: "words-exhaustive",
                path: f.path.clone(),
                line: *line,
                msg: format!("Msg::{v} has no arm in Message::words()"),
            });
        }
    }
    for line in &words.wildcard_lines {
        findings.push(Finding {
            rule: "words-exhaustive",
            path: f.path.clone(),
            line: *line,
            msg: "wildcard arm in words() would silently cover future variants; \
                  list every variant explicitly"
                .to_string(),
        });
    }
}

/// `encode-exhaustive` over any file that defines `enum Msg`: every
/// variant must appear (as `Msg::V` or `Self::V`) in the bodies of both
/// `fn encode` and `fn decode`, and neither may use a `_ =>` wildcard
/// arm. An unencoded variant trips the send-side length assertion only
/// when it is first sent; a wildcard would let it land silently
/// mis-framed and desynchronize every later message in the ring. (Named
/// catch-all bindings over the *tag word* in decode — `other =>
/// unreachable!(..)` — are fine: they reject, not absorb.)
fn encode_rules(f: &ParsedFile, findings: &mut Vec<Finding>) {
    let toks = &f.tokens;
    let Some(variants) = msg_enum_variants(toks, &f.test_mask) else { return };
    for fname in ["encode", "decode"] {
        let Some((open, close)) = fn_body_span(toks, &f.test_mask, fname) else {
            if let Some((_, line)) = variants.first() {
                findings.push(Finding {
                    rule: "encode-exhaustive",
                    path: f.path.clone(),
                    line: *line,
                    msg: format!("enum Msg has no Message::{fname}()"),
                });
            }
            continue;
        };
        for (v, line) in &variants {
            let mentioned = (open + 1..close).any(|i| {
                toks[i].is_ident(v)
                    && i >= 3
                    && (toks[i - 3].is_ident("Msg") || toks[i - 3].is_ident("Self"))
                    && toks[i - 2].is_punct(':')
                    && toks[i - 1].is_punct(':')
            });
            if !mentioned {
                findings.push(Finding {
                    rule: "encode-exhaustive",
                    path: f.path.clone(),
                    line: *line,
                    msg: format!("Msg::{v} never appears in Message::{fname}()"),
                });
            }
        }
        for i in open + 1..close {
            if toks[i].is_ident("_")
                && toks.get(i + 1).is_some_and(|t| t.is_punct('='))
                && toks.get(i + 2).is_some_and(|t| t.is_punct('>'))
            {
                findings.push(Finding {
                    rule: "encode-exhaustive",
                    path: f.path.clone(),
                    line: toks[i].line,
                    msg: format!(
                        "wildcard arm in {fname}() would silently cover future variants; \
                         list every variant explicitly"
                    ),
                });
            }
        }
    }
}

/// Token span `(open, close)` of the brace-delimited body of the first
/// non-test `fn <name>`.
fn fn_body_span(toks: &[Tok], mask: &[bool], name: &str) -> Option<(usize, usize)> {
    let fn_at = (0..toks.len().saturating_sub(1))
        .find(|&i| toks[i].is_ident("fn") && toks[i + 1].is_ident(name) && !mask[i])?;
    let open = (fn_at + 2..toks.len()).find(|&k| toks[k].is_punct('{'))?;
    Some((open, matching_brace(toks, open)))
}

/// Variant names (with lines) of `pub enum Msg { ... }`, if this file
/// defines one outside test code.
fn msg_enum_variants(toks: &[Tok], mask: &[bool]) -> Option<Vec<(String, u32)>> {
    let start = (0..toks.len().saturating_sub(1))
        .find(|&i| toks[i].is_ident("enum") && toks[i + 1].is_ident("Msg") && !mask[i])?;
    let open = (start + 2..toks.len()).find(|&k| toks[k].is_punct('{'))?;
    let close = matching_brace(toks, open);
    let mut variants = Vec::new();
    let mut i = open + 1;
    while i < close {
        let t = &toks[i];
        if t.is_punct('#') {
            // Variant attribute: skip the `[...]` group.
            if toks.get(i + 1).is_some_and(|t| t.is_punct('[')) {
                let mut depth = 0usize;
                i += 1;
                while i < close {
                    if toks[i].is_punct('[') {
                        depth += 1;
                    } else if toks[i].is_punct(']') {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    i += 1;
                }
            }
        } else if t.kind == TokKind::Ident {
            variants.push((t.text.clone(), t.line));
            // Skip the payload (`{...}` or `(...)`) if present.
            if let Some(next) = toks.get(i + 1) {
                if next.is_punct('{') {
                    i = matching_brace(toks, i + 1);
                } else if next.is_punct('(') {
                    let mut depth = 0usize;
                    i += 1;
                    while i < close {
                        if toks[i].is_punct('(') {
                            depth += 1;
                        } else if toks[i].is_punct(')') {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        i += 1;
                    }
                }
            }
        }
        i += 1;
    }
    Some(variants)
}

/// What a `fn words` match body covers.
struct WordsMatch {
    names: Vec<String>,
    wildcard_lines: Vec<u32>,
}

/// Parses the `match self { ... }` inside the first non-test `fn words`.
fn words_match(toks: &[Tok], mask: &[bool]) -> Option<WordsMatch> {
    let fn_at = (0..toks.len().saturating_sub(1))
        .find(|&i| toks[i].is_ident("fn") && toks[i + 1].is_ident("words") && !mask[i])?;
    let body_open = (fn_at + 2..toks.len()).find(|&k| toks[k].is_punct('{'))?;
    let body_close = matching_brace(toks, body_open);
    let match_at = (body_open + 1..body_close).find(|&k| toks[k].is_ident("match"))?;
    let open = (match_at + 1..body_close).find(|&k| toks[k].is_punct('{'))?;
    let close = matching_brace(toks, open);

    let mut out = WordsMatch { names: Vec::new(), wildcard_lines: Vec::new() };
    let mut depth = 0usize;
    let mut in_pattern = true;
    let mut i = open + 1;
    while i < close {
        let t = &toks[i];
        if t.is_punct('{') || t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct('}') || t.is_punct(')') || t.is_punct(']') {
            depth = depth.saturating_sub(1);
            // A braced arm body ends without a comma.
            if depth == 0 && !in_pattern && t.is_punct('}') {
                in_pattern = true;
            }
        } else if depth == 0 {
            if in_pattern {
                if (t.is_ident("Msg") || t.is_ident("Self"))
                    && toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
                    && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
                {
                    if let Some(name) = toks.get(i + 3) {
                        out.names.push(name.text.clone());
                        i += 3;
                    }
                } else if t.is_ident("_") {
                    out.wildcard_lines.push(t.line);
                } else if t.is_punct('=') && toks.get(i + 1).is_some_and(|t| t.is_punct('>')) {
                    in_pattern = false;
                    i += 1;
                }
            } else if t.is_punct(',') {
                in_pattern = true;
            }
        }
        i += 1;
    }
    Some(out)
}

/// `panic-hygiene` on executor files: `.unwrap()` / `.expect(...)`,
/// `panic!`-family macros, and indexing whose subscript does arithmetic
/// (the off-by-one-prone `[g - plo]` class) each need a reasoned allow.
fn panic_hygiene(f: &ParsedFile, findings: &mut Vec<Finding>) {
    let toks = &f.tokens;
    let mut push = |line: u32, msg: String| {
        findings.push(Finding { rule: "panic-hygiene", path: f.path.clone(), line, msg });
    };
    for i in 0..toks.len() {
        if f.test_mask[i] {
            continue;
        }
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        match t.text.as_str() {
            "unwrap" | "expect" if i > 0 && toks[i - 1].is_punct('.') => {
                push(t.line, format!("`.{}()` in the executor hot path", t.text));
            }
            "panic" | "unreachable" | "todo" | "unimplemented"
                if toks.get(i + 1).is_some_and(|n| n.is_punct('!')) =>
            {
                push(t.line, format!("`{}!` in the executor hot path", t.text));
            }
            _ => {}
        }
    }
    // Arithmetic indexing: `expr[... + ...]` / `expr[... - ...]` where the
    // `[` is a postfix subscript (previous token ends an expression).
    for i in 1..toks.len() {
        if f.test_mask[i] || !toks[i].is_punct('[') {
            continue;
        }
        let prev = &toks[i - 1];
        let is_subscript =
            prev.kind == TokKind::Ident && !prev.is_ident("mut") && !prev.is_ident("return")
                || prev.is_punct(')')
                || prev.is_punct(']');
        if !is_subscript {
            continue;
        }
        let mut depth = 0usize;
        let mut j = i;
        let mut arithmetic = false;
        while j < toks.len() {
            if toks[j].is_punct('[') {
                depth += 1;
            } else if toks[j].is_punct(']') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else if toks[j].is_punct('+') || toks[j].is_punct('-') {
                arithmetic = true;
            }
            j += 1;
        }
        if arithmetic {
            push(
                toks[i].line,
                "arithmetic in an index expression on the executor hot path".to_string(),
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Cross-file rule: tag-guard.
// ---------------------------------------------------------------------------

/// One `(tag, census letter, guard fn)` row parsed out of `TAG_GUARDS`.
#[derive(Clone, Debug)]
struct GuardRow {
    tag: String,
    letter: String,
    guard: String,
    line: u32,
}

/// `tag-guard`: cross-checks `Msg::tag()`'s wire tags against the
/// `TAG_GUARDS` table and the stage census letters of `fn stage_tag`.
pub fn check_tag_guards(files: &[ParsedFile], findings: &mut Vec<Finding>) {
    // Wire tags: string literals containing ':' inside `fn tag` of the file
    // that defines `enum Msg`.
    let mut tags: Vec<(String, u32, String)> = Vec::new(); // (tag, line, path)
    let mut enum_site: Option<(String, u32)> = None;
    for f in files {
        if f.scope != Scope::Protocol {
            continue;
        }
        if let Some(vars) = msg_enum_variants(&f.tokens, &f.test_mask) {
            if let Some((_, line)) = vars.first() {
                enum_site = Some((f.path.clone(), *line));
            }
            for (s, line) in fn_string_literals(&f.tokens, &f.test_mask, "tag") {
                if s.contains(':') && !tags.iter().any(|(t, _, _)| *t == s) {
                    tags.push((s, line, f.path.clone()));
                }
            }
        }
    }
    if tags.is_empty() {
        return; // nothing to mirror (fixture trees without a protocol)
    }

    // The table, the census letters, and the guard functions.
    let mut rows: Vec<GuardRow> = Vec::new();
    let mut table_site: Option<(String, u32)> = None;
    let mut letters: Vec<String> = Vec::new();
    let mut guard_fns: Vec<String> = Vec::new();
    for f in files {
        if f.scope == Scope::Exempt {
            continue;
        }
        if let Some((parsed, line)) = parse_tag_guards(&f.tokens, &f.test_mask) {
            table_site = Some((f.path.clone(), line));
            for (s, _) in fn_string_literals(&f.tokens, &f.test_mask, "stage_tag") {
                if s.len() == 1 {
                    letters.push(s);
                }
            }
            rows = parsed;
        }
        let toks = &f.tokens;
        for i in 0..toks.len().saturating_sub(1) {
            if toks[i].is_ident("fn") && toks[i + 1].kind == TokKind::Ident && !f.test_mask[i] {
                guard_fns.push(toks[i + 1].text.clone());
            }
        }
    }

    let Some((table_path, _)) = table_site else {
        let (path, line) = enum_site.expect("tags imply an enum site");
        findings.push(Finding {
            rule: "tag-guard",
            path,
            line,
            msg: "protocol defines wire tags but no TAG_GUARDS table mirrors them \
                  (expected `const TAG_GUARDS` next to the NodeProgram impl)"
                .to_string(),
        });
        return;
    };

    for (tag, line, path) in &tags {
        if !rows.iter().any(|r| r.tag == *tag) {
            findings.push(Finding {
                rule: "tag-guard",
                path: path.clone(),
                line: *line,
                msg: format!(
                    "wire tag \"{tag}\" is not mirrored in TAG_GUARDS; audit its census \
                     letter and next_wake guard, then add a row"
                ),
            });
        }
    }
    for r in &rows {
        if !tags.iter().any(|(t, _, _)| *t == r.tag) {
            findings.push(Finding {
                rule: "tag-guard",
                path: table_path.clone(),
                line: r.line,
                msg: format!("TAG_GUARDS row \"{}\" names a tag the protocol never sends", r.tag),
            });
            continue;
        }
        let prefix = r.tag.split(':').next().unwrap_or("");
        if prefix != r.letter {
            findings.push(Finding {
                rule: "tag-guard",
                path: table_path.clone(),
                line: r.line,
                msg: format!(
                    "TAG_GUARDS row \"{}\" claims census letter '{}' but the tag's stage \
                     prefix is \"{prefix}\"",
                    r.tag, r.letter
                ),
            });
        }
        if !letters.contains(&r.letter) {
            findings.push(Finding {
                rule: "tag-guard",
                path: table_path.clone(),
                line: r.line,
                msg: format!(
                    "census letter '{}' of TAG_GUARDS row \"{}\" is never returned by \
                     fn stage_tag",
                    r.letter, r.tag
                ),
            });
        }
        if !guard_fns.contains(&r.guard) {
            findings.push(Finding {
                rule: "tag-guard",
                path: table_path.clone(),
                line: r.line,
                msg: format!(
                    "next_wake guard `{}` of TAG_GUARDS row \"{}\" does not exist",
                    r.guard, r.tag
                ),
            });
        }
    }
}

/// String literals (with lines) inside the body of `fn <name>`.
fn fn_string_literals(toks: &[Tok], mask: &[bool], name: &str) -> Vec<(String, u32)> {
    let Some(fn_at) = (0..toks.len().saturating_sub(1))
        .find(|&i| toks[i].is_ident("fn") && toks[i + 1].is_ident(name) && !mask[i])
    else {
        return Vec::new();
    };
    let Some(open) = (fn_at + 2..toks.len()).find(|&k| toks[k].is_punct('{')) else {
        return Vec::new();
    };
    let close = matching_brace(toks, open);
    toks[open + 1..close]
        .iter()
        .filter(|t| t.kind == TokKind::Str)
        .map(|t| (t.text.clone(), t.line))
        .collect()
}

/// Parses `TAG_GUARDS: ... = &[ ("tag", 'x', "guard"), ... ]`.
fn parse_tag_guards(toks: &[Tok], mask: &[bool]) -> Option<(Vec<GuardRow>, u32)> {
    let at = (0..toks.len()).find(|&i| toks[i].is_ident("TAG_GUARDS") && !mask[i])?;
    let eq = (at + 1..toks.len()).find(|&k| toks[k].is_punct('='))?;
    let open = (eq + 1..toks.len()).find(|&k| toks[k].is_punct('['))?;
    let mut rows = Vec::new();
    let mut i = open + 1;
    let mut depth = 1usize;
    while i < toks.len() && depth > 0 {
        let t = &toks[i];
        if t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(']') {
            depth -= 1;
        } else if t.is_punct('(') && depth == 1 {
            // Expect Str , Char , Str )
            let tag = toks.get(i + 1).filter(|t| t.kind == TokKind::Str);
            let letter = toks.get(i + 3).filter(|t| t.kind == TokKind::Char);
            let guard = toks.get(i + 5).filter(|t| t.kind == TokKind::Str);
            if let (Some(tag), Some(letter), Some(guard)) = (tag, letter, guard) {
                rows.push(GuardRow {
                    tag: tag.text.clone(),
                    letter: letter.text.clone(),
                    guard: guard.text.clone(),
                    line: tag.line,
                });
                i += 6;
            }
        }
        i += 1;
    }
    Some((rows, toks[at].line))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_file;

    fn protocol(path: &str, src: &str) -> ParsedFile {
        parse_file(path.to_string(), src)
    }

    #[test]
    fn classify_paths() {
        assert_eq!(classify("crates/core/src/msg.rs"), Scope::Protocol);
        assert_eq!(classify("src/testkit.rs"), Scope::Protocol);
        assert_eq!(classify("crates/graphs/src/generators.rs"), Scope::Graphs);
        assert_eq!(classify("crates/bench/src/lib.rs"), Scope::Exempt);
        assert_eq!(classify("crates/core/tests/smoke.rs"), Scope::Exempt);
        assert_eq!(classify("vendor/rand/src/lib.rs"), Scope::Exempt);
        assert_eq!(classify("crates/analysis/src/rules.rs"), Scope::Exempt);
    }

    #[test]
    fn hash_order_flags_and_test_code_exempt() {
        let f = protocol(
            "crates/core/src/x.rs",
            "use std::collections::HashMap;\n#[cfg(test)]\nmod tests { use std::collections::HashSet; }\n",
        );
        let mut out = Vec::new();
        check_file(&f, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, "hash-order");
        assert_eq!(out[0].line, 1);
    }

    #[test]
    fn words_exhaustive_missing_and_wildcard() {
        let src = r#"
pub enum Msg { A, B { x: u64 }, C }
impl Message for Msg {
    fn words(&self) -> u32 {
        match self {
            Msg::A => 1,
            _ => 2,
        }
    }
}
"#;
        let f = protocol("crates/core/src/msg.rs", src);
        let mut out = Vec::new();
        check_file(&f, &mut out);
        let rules: Vec<_> = out.iter().map(|f| (f.rule, f.line)).collect();
        // B and C miss arms; the wildcard is flagged once.
        assert!(rules.contains(&("words-exhaustive", 2)));
        assert_eq!(out.iter().filter(|f| f.msg.contains("wildcard")).count(), 1);
        assert_eq!(out.iter().filter(|f| f.msg.contains("Msg::B")).count(), 1);
        assert_eq!(out.iter().filter(|f| f.msg.contains("Msg::C")).count(), 1);
    }

    #[test]
    fn encode_exhaustive_missing_and_wildcard() {
        let src = r#"
pub enum Msg { A, B { x: u64 }, C }
impl Message for Msg {
    fn words(&self) -> u32 { match self { Msg::A => 1, Msg::B { .. } => 2, Msg::C => 1 } }
    fn tag(&self) -> &'static str { "a:bfs" }
    fn encode(&self, w: &mut WireWriter<'_>) {
        match self {
            Msg::A => w.tag(0),
            Msg::B { x } => { w.tag(1); w.word(*x); }
            _ => w.tag(9),
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Self {
        match r.tag() {
            0 => Msg::A,
            1 => Msg::B { x: r.word() },
            other => unreachable!("bad tag {other}"),
        }
    }
}
"#;
        let f = protocol("crates/core/src/msg.rs", src);
        let mut out = Vec::new();
        check_file(&f, &mut out);
        let enc: Vec<_> = out.iter().filter(|f| f.rule == "encode-exhaustive").collect();
        // C misses both bodies, encode has a wildcard; the named `other`
        // catch-all over the decode tag word is NOT flagged.
        assert_eq!(enc.len(), 3, "{enc:#?}");
        assert_eq!(enc.iter().filter(|f| f.msg.contains("Msg::C")).count(), 2, "{enc:#?}");
        assert_eq!(enc.iter().filter(|f| f.msg.contains("wildcard")).count(), 1, "{enc:#?}");
        assert!(enc.iter().all(|f| !f.msg.contains("other")), "{enc:#?}");
    }

    #[test]
    fn encode_exhaustive_flags_missing_fns() {
        let src = r#"
pub enum Msg { A }
impl Message for Msg {
    fn words(&self) -> u32 { match self { Msg::A => 1 } }
    fn tag(&self) -> &'static str { "a:bfs" }
}
"#;
        let f = protocol("crates/core/src/msg.rs", src);
        let mut out = Vec::new();
        check_file(&f, &mut out);
        let enc: Vec<_> = out.iter().filter(|f| f.rule == "encode-exhaustive").collect();
        assert_eq!(enc.len(), 2, "{enc:#?}");
        assert!(enc.iter().any(|f| f.msg.contains("no Message::encode()")), "{enc:#?}");
        assert!(enc.iter().any(|f| f.msg.contains("no Message::decode()")), "{enc:#?}");
    }

    #[test]
    fn words_zero_flags() {
        let src = "impl Message for M { fn words(&self) -> u32 { 0 } }";
        let f = protocol("crates/congest/src/message.rs", src);
        let mut out = Vec::new();
        check_file(&f, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, "words-zero");
    }

    #[test]
    fn drifting_literal_flags_pipe_budget_and_unit_size() {
        let src = "fn f(&self) {\n  if self.pipe_budget(r, p) >= 2 {}\n  let cap = 8 * self.cfg.bandwidth;\n}";
        let f = protocol("crates/core/src/node/mod.rs", src);
        let mut out = Vec::new();
        check_file(&f, &mut out);
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|f| f.rule == "drifting-literal"));
        assert_eq!(out[0].line, 2);
        assert_eq!(out[1].line, 3);
    }

    #[test]
    fn drifting_literal_accepts_words_derived() {
        let src = "fn f(&self) { if self.pipe_budget(r, p) >= Msg::RegDone.words() {} \
                   let cap = UNIT_WORDS * self.cfg.bandwidth; }";
        let f = protocol("crates/core/src/node/mod.rs", src);
        let mut out = Vec::new();
        check_file(&f, &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn panic_hygiene_only_in_network_rs() {
        let src = "fn f(x: Option<u32>, v: &[u32], i: usize) -> u32 { x.unwrap() + v[i + 1] }";
        let mut out = Vec::new();
        check_file(&protocol("crates/congest/src/network.rs", src), &mut out);
        assert_eq!(out.iter().filter(|f| f.rule == "panic-hygiene").count(), 2);
        out.clear();
        check_file(&protocol("crates/congest/src/stats.rs", src), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn tag_guard_happy_path() {
        let msg = r#"
pub enum Msg { A }
impl Message for Msg {
    fn words(&self) -> u32 { match self { Msg::A => 1 } }
    fn tag(&self) -> &'static str { match self { Msg::A => "a:bfs" } }
}
"#;
        let node = r#"
pub(crate) const TAG_GUARDS: &[(&str, char, &str)] = &[("a:bfs", 'a', "next_wake")];
impl N {
    fn stage_tag(&self) -> &'static str { "a" }
    fn next_wake(&self) -> Option<u64> { None }
}
"#;
        let files = vec![
            protocol("crates/core/src/msg.rs", msg),
            protocol("crates/core/src/node/mod.rs", node),
        ];
        let mut out = Vec::new();
        check_tag_guards(&files, &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn tag_guard_catches_drift() {
        let msg = r#"
pub enum Msg { A, B }
impl Message for Msg {
    fn words(&self) -> u32 { match self { Msg::A => 1, Msg::B => 1 } }
    fn tag(&self) -> &'static str { match self { Msg::A => "a:bfs", Msg::B => "b:new" } }
}
"#;
        // Table misses "b:new", has a stale row, a wrong letter, and a
        // missing guard fn.
        let node = r#"
pub(crate) const TAG_GUARDS: &[(&str, char, &str)] = &[
    ("a:bfs", 'b', "gone_fn"),
    ("z:stale", 'z', "next_wake"),
];
impl N {
    fn stage_tag(&self) -> &'static str { "a" }
    fn next_wake(&self) -> Option<u64> { None }
}
"#;
        let files = vec![
            protocol("crates/core/src/msg.rs", msg),
            protocol("crates/core/src/node/mod.rs", node),
        ];
        let mut out = Vec::new();
        check_tag_guards(&files, &mut out);
        let msgs: Vec<&str> = out.iter().map(|f| f.msg.as_str()).collect();
        assert!(msgs.iter().any(|m| m.contains("\"b:new\" is not mirrored")), "{msgs:?}");
        assert!(msgs.iter().any(|m| m.contains("never sends")), "{msgs:?}");
        assert!(msgs.iter().any(|m| m.contains("census letter 'b'")), "{msgs:?}");
        assert!(msgs.iter().any(|m| m.contains("`gone_fn`")), "{msgs:?}");
    }
}
