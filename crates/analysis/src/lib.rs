//! `dmst-analysis`: a protocol-contract static analyzer for this
//! workspace.
//!
//! The simulator's two load-bearing invariants — bit-identical
//! determinism across executors/shard counts, and `CONGEST(b log n)` word
//! accounting through `Msg::words()` — are enforced dynamically by
//! proptests and golden pins, which only fire *after* a drifting change
//! lands. This crate is the compiler-adjacent gate: a lightweight lexer
//! (no `syn`; the build is offline and zero-dependency) plus a small rule
//! engine that walks every workspace `.rs` file and fails the build on
//! contract violations.
//!
//! It runs three ways, all from the same engine:
//! - `cargo run -p dmst-analysis -- --check` (CLI, used by CI),
//! - as a tier-1 `#[test]` (`tests/workspace_clean.rs`),
//! - against seeded fixture trees (`tests/fixtures.rs`).
//!
//! Suppressions are inline comments audited by the engine itself:
//!
//! ```text
//! // dmst-analysis:allow(<rule>) -- <reason>
//! ```
//!
//! A pragma applies to its own line and the next line. Unused or
//! malformed pragmas are errors (`unused-allow` / `malformed-allow`), so
//! the allow inventory cannot rot. See `DESIGN.md` § "Static contracts"
//! for the rule catalog and the division of labor with `clippy.toml`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lexer;
pub mod rules;

use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

use lexer::{lex, test_line_ranges, test_region_mask, Pragma, Tok};
use rules::{check_file, check_tag_guards, classify, is_known_rule, Scope};

/// One source file handed to [`analyze`]: a workspace-relative,
/// `/`-separated path plus its text.
#[derive(Clone, Debug)]
pub struct SourceFile {
    /// Path relative to the analysis root, always `/`-separated.
    pub path: String,
    /// Full file contents.
    pub text: String,
}

/// One rule violation (or meta-rule violation) with its span.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Stable rule id (see [`rules::RULES`]).
    pub rule: &'static str,
    /// Workspace-relative path of the offending file.
    pub path: String,
    /// 1-based line of the violation.
    pub line: u32,
    /// Human-readable explanation.
    pub msg: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.path, self.line, self.rule, self.msg)
    }
}

/// A lexed + classified file, ready for the rules.
pub struct ParsedFile {
    /// Workspace-relative path.
    pub path: String,
    /// How the rules treat this file (see [`Scope`]).
    pub scope: Scope,
    /// Token stream (comments removed).
    pub tokens: Vec<Tok>,
    /// Parallel mask: `true` for tokens inside `#[cfg(test)]` modules.
    pub test_mask: Vec<bool>,
    /// Well-formed allow pragmas, excluding ones inside test modules.
    pub pragmas: Vec<Pragma>,
    /// Pragma-shaped comments that failed to parse.
    pub malformed: Vec<lexer::MalformedPragma>,
}

/// Lexes and classifies one file.
pub fn parse_file(path: String, text: &str) -> ParsedFile {
    let lexed = lex(text);
    let test_mask = test_region_mask(&lexed.tokens);
    let test_ranges = test_line_ranges(&lexed.tokens, &test_mask);
    let in_test = |line: u32| test_ranges.iter().any(|&(lo, hi)| (lo..=hi).contains(&line));
    let pragmas = lexed.pragmas.into_iter().filter(|p| !in_test(p.line)).collect();
    let malformed = lexed.malformed.into_iter().filter(|m| !in_test(m.line)).collect();
    ParsedFile { scope: classify(&path), path, tokens: lexed.tokens, test_mask, pragmas, malformed }
}

/// Runs every rule over `files` and returns the surviving findings,
/// sorted by path, line, and rule. Pragma suppression and the meta rules
/// (`unused-allow`, `malformed-allow`) are applied here.
pub fn analyze(files: &[SourceFile]) -> Vec<Finding> {
    let parsed: Vec<ParsedFile> =
        files.iter().map(|f| parse_file(f.path.clone(), &f.text)).collect();

    let mut raw: Vec<Finding> = Vec::new();
    for f in &parsed {
        check_file(f, &mut raw);
    }
    check_tag_guards(&parsed, &mut raw);

    let mut out: Vec<Finding> = Vec::new();
    for f in &parsed {
        let mut used = vec![false; f.pragmas.len()];
        for finding in raw.iter().filter(|x| x.path == f.path) {
            let suppressed = f.pragmas.iter().enumerate().any(|(pi, p)| {
                let hit = p.rule == finding.rule
                    && (finding.line == p.line || finding.line == p.line + 1);
                if hit {
                    used[pi] = true;
                }
                hit
            });
            if !suppressed {
                out.push(finding.clone());
            }
        }
        // Meta rules: every pragma must be well-formed, name a real rule,
        // and suppress at least one finding. Out-of-scope files (benches,
        // the analyzer itself) can mention the pragma grammar freely.
        if f.scope == Scope::Exempt {
            continue;
        }
        for m in &f.malformed {
            out.push(Finding {
                rule: "malformed-allow",
                path: f.path.clone(),
                line: m.line,
                msg: m.what.clone(),
            });
        }
        for (pi, p) in f.pragmas.iter().enumerate() {
            if !is_known_rule(&p.rule) {
                out.push(Finding {
                    rule: "malformed-allow",
                    path: f.path.clone(),
                    line: p.line,
                    msg: format!("allow names unknown rule `{}`", p.rule),
                });
            } else if !used[pi] {
                out.push(Finding {
                    rule: "unused-allow",
                    path: f.path.clone(),
                    line: p.line,
                    msg: format!(
                        "allow({}) suppresses nothing; delete it or move it to the \
                         offending line",
                        p.rule
                    ),
                });
            }
        }
    }
    // Findings in files not present in `parsed` cannot happen (rules only
    // attribute findings to input paths), so the loop above is exhaustive.
    out.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.rule, a.msg.as_str()).cmp(&(
            b.path.as_str(),
            b.line,
            b.rule,
            b.msg.as_str(),
        ))
    });
    out
}

/// Collects the workspace's analyzable sources under `root`: the umbrella
/// `src/` and every `crates/*/src/` tree. `vendor/`, benches, examples,
/// and integration tests are never collected — [`rules::classify`] would
/// exempt them anyway, but skipping keeps the walk cheap. Paths in the
/// result are root-relative and `/`-separated, sorted.
pub fn collect_workspace(root: &Path) -> io::Result<Vec<SourceFile>> {
    let mut out = Vec::new();
    let top_src = root.join("src");
    if top_src.is_dir() {
        walk_rs(&top_src, root, &mut out)?;
    }
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut kids: Vec<_> =
            fs::read_dir(&crates)?.collect::<Result<Vec<_>, _>>()?.into_iter().collect();
        kids.sort_by_key(|e| e.file_name());
        for kid in kids {
            let src = kid.path().join("src");
            if src.is_dir() {
                walk_rs(&src, root, &mut out)?;
            }
        }
    }
    out.sort_by(|a, b| a.path.cmp(&b.path));
    Ok(out)
}

/// Recursively gathers `.rs` files under `dir` into `out`, with paths
/// relative to `root`.
fn walk_rs(dir: &Path, root: &Path, out: &mut Vec<SourceFile>) -> io::Result<()> {
    let mut entries: Vec<_> = fs::read_dir(dir)?.collect::<Result<Vec<_>, _>>()?;
    entries.sort_by_key(|e| e.file_name());
    for entry in entries {
        let path = entry.path();
        if path.is_dir() {
            walk_rs(&path, root, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            out.push(SourceFile { path: rel, text: fs::read_to_string(&path)? });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one(path: &str, text: &str) -> Vec<SourceFile> {
        vec![SourceFile { path: path.to_string(), text: text.to_string() }]
    }

    #[test]
    fn pragma_suppresses_same_and_next_line() {
        let src = "// dmst-analysis:allow(hash-order) -- lookup only, never iterated\n\
                   use std::collections::HashMap;\n";
        assert!(analyze(&one("crates/core/src/x.rs", src)).is_empty());
        let trailing = "use std::collections::HashMap; \
                        // dmst-analysis:allow(hash-order) -- lookup only\n";
        assert!(analyze(&one("crates/core/src/x.rs", trailing)).is_empty());
    }

    #[test]
    fn unused_allow_is_an_error() {
        let src = "// dmst-analysis:allow(hash-order) -- stale\nfn f() {}\n";
        let got = analyze(&one("crates/core/src/x.rs", src));
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].rule, "unused-allow");
        assert_eq!(got[0].line, 1);
    }

    #[test]
    fn unknown_rule_is_malformed() {
        let src = "// dmst-analysis:allow(no-such-rule) -- whatever\n";
        let got = analyze(&one("crates/core/src/x.rs", src));
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].rule, "malformed-allow");
    }

    #[test]
    fn meta_rules_are_not_suppressible() {
        // An allow(unused-allow) pragma is itself an unknown-rule pragma.
        let src = "// dmst-analysis:allow(unused-allow) -- nice try\n";
        let got = analyze(&one("crates/core/src/x.rs", src));
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].rule, "malformed-allow");
    }

    #[test]
    fn pragma_does_not_reach_two_lines_down() {
        let src = "// dmst-analysis:allow(hash-order) -- too far away\n\
                   \n\
                   use std::collections::HashMap;\n";
        let got = analyze(&one("crates/core/src/x.rs", src));
        let rules: Vec<&str> = got.iter().map(|f| f.rule).collect();
        assert!(rules.contains(&"hash-order"), "{got:?}");
        assert!(rules.contains(&"unused-allow"), "{got:?}");
    }

    #[test]
    fn findings_are_sorted() {
        let files = vec![
            SourceFile {
                path: "crates/core/src/b.rs".into(),
                text: "use std::collections::HashSet;\nuse std::time::Instant;\n".into(),
            },
            SourceFile {
                path: "crates/core/src/a.rs".into(),
                text: "use std::collections::HashMap;\n".into(),
            },
        ];
        let got = analyze(&files);
        assert_eq!(got.len(), 3);
        assert!(got[0].path < got[1].path);
        assert!(got[1].line < got[2].line);
    }
}
