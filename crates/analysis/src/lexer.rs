//! A minimal Rust lexer: just enough to tokenize the workspace's sources
//! for the rule engine, with no dependency on `syn` or `proc-macro2` (the
//! build is offline; see the crate docs for why a full parse is overkill).
//!
//! The lexer produces a flat token stream with line numbers, swallows
//! comments (extracting `dmst-analysis:allow(...)` pragmas from them), and
//! understands the token classes the rules care about: identifiers,
//! integer/float literals, string/char literals (including raw strings and
//! lifetimes), and single-character punctuation.

/// Kind of a lexed token.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `HashMap`, `_`, ...).
    Ident,
    /// Numeric literal (`0`, `8u32`, `1_000`, `0x1F`, `1.5`).
    Num,
    /// String literal; `text` holds the raw content between the quotes.
    Str,
    /// Char literal; `text` holds the raw content between the quotes.
    Char,
    /// Lifetime (`'a`, `'static`); `text` holds the name without the quote.
    Lifetime,
    /// Single punctuation character (`{`, `=`, `*`, ...).
    Punct,
}

/// One lexed token.
#[derive(Clone, Debug)]
pub struct Tok {
    /// What class of token this is.
    pub kind: TokKind,
    /// The token text (see [`TokKind`] for per-kind conventions).
    pub text: String,
    /// 1-based source line the token starts on.
    pub line: u32,
}

impl Tok {
    /// Is this an identifier with exactly this text?
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// Is this a punctuation token with exactly this character?
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.starts_with(c)
    }

    /// Numeric value of a [`TokKind::Num`] token, if it is a plain integer
    /// (underscores and type suffixes are stripped; hex/octal/binary are
    /// decoded; floats return `None`).
    pub fn int_value(&self) -> Option<u64> {
        if self.kind != TokKind::Num {
            return None;
        }
        let cleaned: String = self.text.chars().filter(|&c| c != '_').collect();
        let strip = |s: &str| -> String {
            // Type suffixes (`u32`, `usize`, `i8`, ...) are the only legal
            // trailing alphabetics outside the digit set of the radix.
            for suf in ["usize", "isize", "u8", "u16", "u32", "u64", "i8", "i16", "i32", "i64"] {
                if let Some(body) = s.strip_suffix(suf) {
                    return body.to_string();
                }
            }
            s.to_string()
        };
        if let Some(hex) = cleaned.strip_prefix("0x") {
            return u64::from_str_radix(&strip(hex), 16).ok();
        }
        if let Some(oct) = cleaned.strip_prefix("0o") {
            return u64::from_str_radix(&strip(oct), 8).ok();
        }
        if let Some(bin) = cleaned.strip_prefix("0b") {
            return u64::from_str_radix(&strip(bin), 2).ok();
        }
        strip(&cleaned).parse().ok()
    }
}

/// An inline suppression extracted from a comment:
/// `// dmst-analysis:allow(<rule>) -- <reason>`.
#[derive(Clone, Debug)]
pub struct Pragma {
    /// The rule id inside the parentheses.
    pub rule: String,
    /// The free-text reason after `--`.
    pub reason: String,
    /// 1-based line the pragma appears on.
    pub line: u32,
}

/// A pragma-shaped comment that does not match the grammar (missing rule,
/// missing `-- <reason>`, unclosed parenthesis).
#[derive(Clone, Debug)]
pub struct MalformedPragma {
    /// What is wrong with it.
    pub what: String,
    /// 1-based line of the offending comment.
    pub line: u32,
}

/// Everything the lexer extracts from one source file.
#[derive(Clone, Debug, Default)]
pub struct Lexed {
    /// The token stream, comments and whitespace removed.
    pub tokens: Vec<Tok>,
    /// Well-formed allow pragmas, in source order.
    pub pragmas: Vec<Pragma>,
    /// Pragma-shaped comments that fail to parse.
    pub malformed: Vec<MalformedPragma>,
}

const PRAGMA_KEY: &str = "dmst-analysis:allow";

/// Lexes one file. Never fails: unterminated constructs simply end the
/// token stream at end of input (the rules are heuristics, not a compiler).
pub fn lex(src: &str) -> Lexed {
    let chars: Vec<char> = src.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;

    while i < chars.len() {
        let c = chars[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if chars.get(i + 1) == Some(&'/') => {
                let start = i;
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                scan_pragma(&text, line, &mut out);
            }
            '/' if chars.get(i + 1) == Some(&'*') => {
                let start = i;
                let start_line = line;
                let mut depth = 1;
                i += 2;
                while i < chars.len() && depth > 0 {
                    if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                        depth += 1;
                        i += 2;
                    } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        if chars[i] == '\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
                let text: String = chars[start..i.min(chars.len())].iter().collect();
                scan_pragma(&text, start_line, &mut out);
            }
            '"' => {
                let (text, ni, nl) = lex_string(&chars, i, line);
                out.tokens.push(Tok { kind: TokKind::Str, text, line });
                i = ni;
                line = nl;
            }
            '\'' => {
                let (tok, ni) = lex_quote(&chars, i, line);
                out.tokens.push(tok);
                i = ni;
            }
            c if c.is_ascii_digit() => {
                let start = i;
                i += 1;
                while i < chars.len() {
                    let d = chars[i];
                    if d.is_ascii_alphanumeric() || d == '_' {
                        i += 1;
                    } else if d == '.'
                        && chars.get(i + 1).is_some_and(|n| n.is_ascii_digit())
                        && !chars[start..i].contains(&'.')
                    {
                        i += 1; // decimal point of a float, not a range `..`
                    } else {
                        break;
                    }
                }
                let text: String = chars[start..i].iter().collect();
                out.tokens.push(Tok { kind: TokKind::Num, text, line });
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                // Raw / byte string prefixes: `r"..."`, `r#"..."#`, `b"..."`.
                let next = chars.get(i).copied();
                if matches!(text.as_str(), "r" | "b" | "br") && matches!(next, Some('"' | '#')) {
                    if let Some((text, ni, nl)) = lex_raw_string(&chars, i, line) {
                        out.tokens.push(Tok { kind: TokKind::Str, text, line });
                        i = ni;
                        line = nl;
                        continue;
                    }
                }
                out.tokens.push(Tok { kind: TokKind::Ident, text, line });
            }
            c => {
                out.tokens.push(Tok { kind: TokKind::Punct, text: c.to_string(), line });
                i += 1;
            }
        }
    }
    out
}

/// Lexes a `"..."` string starting at `chars[i] == '"'`. Returns the inner
/// text, the index past the closing quote, and the updated line counter.
fn lex_string(chars: &[char], mut i: usize, mut line: u32) -> (String, usize, u32) {
    let start = i + 1;
    i += 1;
    while i < chars.len() {
        match chars[i] {
            '\\' => i += 2,
            '"' => break,
            '\n' => {
                line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    let text: String = chars[start..i.min(chars.len())].iter().collect();
    (text, (i + 1).min(chars.len()), line)
}

/// Lexes `r"..."` / `r#"..."#` / `b"..."` starting just past the prefix
/// ident. `None` if it turns out not to be a string (e.g. `r#foo` raw ident).
fn lex_raw_string(chars: &[char], mut i: usize, mut line: u32) -> Option<(String, usize, u32)> {
    let mut hashes = 0usize;
    while chars.get(i) == Some(&'#') {
        hashes += 1;
        i += 1;
    }
    if chars.get(i) != Some(&'"') {
        return None; // raw identifier like `r#match`
    }
    i += 1;
    let start = i;
    'outer: while i < chars.len() {
        if chars[i] == '\n' {
            line += 1;
        }
        if chars[i] == '"' {
            for h in 0..hashes {
                if chars.get(i + 1 + h) != Some(&'#') {
                    i += 1;
                    continue 'outer;
                }
            }
            return Some((chars[start..i].iter().collect(), i + 1 + hashes, line));
        }
        i += 1;
    }
    Some((chars[start..].iter().collect(), chars.len(), line))
}

/// Disambiguates `'a` (lifetime) from `'x'` / `'\n'` (char literal),
/// starting at `chars[i] == '\''`.
fn lex_quote(chars: &[char], i: usize, line: u32) -> (Tok, usize) {
    match chars.get(i + 1) {
        Some('\\') => {
            // Escaped char literal: scan to the closing quote.
            let mut j = i + 2;
            while j < chars.len() && chars[j] != '\'' {
                j += 1;
            }
            let text: String = chars[i + 1..j.min(chars.len())].iter().collect();
            (Tok { kind: TokKind::Char, text, line }, (j + 1).min(chars.len()))
        }
        Some(&c) if chars.get(i + 2) == Some(&'\'') => {
            (Tok { kind: TokKind::Char, text: c.to_string(), line }, i + 3)
        }
        Some(&c) if c.is_alphabetic() || c == '_' => {
            let mut j = i + 1;
            while j < chars.len() && (chars[j].is_alphanumeric() || chars[j] == '_') {
                j += 1;
            }
            let text: String = chars[i + 1..j].iter().collect();
            (Tok { kind: TokKind::Lifetime, text, line }, j)
        }
        _ => (Tok { kind: TokKind::Punct, text: "'".to_string(), line }, i + 1),
    }
}

/// Extracts an allow pragma (or records a malformed one) from a comment.
fn scan_pragma(comment: &str, line: u32, out: &mut Lexed) {
    let Some(pos) = comment.find(PRAGMA_KEY) else { return };
    let rest = &comment[pos + PRAGMA_KEY.len()..];
    let Some(open) = rest.strip_prefix('(') else {
        out.malformed.push(MalformedPragma {
            what: format!("expected `(<rule>)` after `{PRAGMA_KEY}`"),
            line,
        });
        return;
    };
    let Some(close) = open.find(')') else {
        out.malformed
            .push(MalformedPragma { what: "unclosed `(` in allow pragma".to_string(), line });
        return;
    };
    let rule = open[..close].trim().to_string();
    if rule.is_empty() {
        out.malformed.push(MalformedPragma { what: "empty rule id in allow pragma".into(), line });
        return;
    }
    let after = open[close + 1..].trim_start();
    let Some(reason) = after.strip_prefix("--") else {
        out.malformed.push(MalformedPragma {
            what: format!("allow({rule}) is missing its `-- <reason>` justification"),
            line,
        });
        return;
    };
    let reason = reason.trim();
    if reason.is_empty() {
        out.malformed.push(MalformedPragma {
            what: format!("allow({rule}) has an empty `-- <reason>` justification"),
            line,
        });
        return;
    }
    out.pragmas.push(Pragma { rule, reason: reason.to_string(), line });
}

/// Index of the brace that closes the one at `open` (which must be `{`),
/// or `tokens.len()` if unbalanced.
pub fn matching_brace(tokens: &[Tok], open: usize) -> usize {
    debug_assert!(tokens[open].is_punct('{'));
    let mut depth = 0usize;
    for (j, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
    }
    tokens.len()
}

/// Marks every token inside a `#[cfg(test)] mod ... { ... }` region.
/// Returns a parallel `bool` mask (`true` = test code). Attributes between
/// the `cfg(test)` and the `mod` keyword (e.g. `#[allow(...)]`) are
/// tolerated.
pub fn test_region_mask(tokens: &[Tok]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0usize;
    while i + 6 < tokens.len() {
        let is_cfg_test = tokens[i].is_punct('#')
            && tokens[i + 1].is_punct('[')
            && tokens[i + 2].is_ident("cfg")
            && tokens[i + 3].is_punct('(')
            && tokens[i + 4].is_ident("test")
            && tokens[i + 5].is_punct(')')
            && tokens[i + 6].is_punct(']');
        if !is_cfg_test {
            i += 1;
            continue;
        }
        let mut j = i + 7;
        // Skip any further attributes.
        while j < tokens.len() && tokens[j].is_punct('#') {
            if tokens.get(j + 1).is_some_and(|t| t.is_punct('[')) {
                let mut depth = 0usize;
                j += 1;
                while j < tokens.len() {
                    if tokens[j].is_punct('[') {
                        depth += 1;
                    } else if tokens[j].is_punct(']') {
                        depth -= 1;
                        if depth == 0 {
                            j += 1;
                            break;
                        }
                    }
                    j += 1;
                }
            } else {
                break;
            }
        }
        if j < tokens.len() && tokens[j].is_ident("mod") {
            // `mod name {` — mark the whole block.
            if let Some(open) = (j..tokens.len().min(j + 4)).find(|&k| tokens[k].is_punct('{')) {
                let close = matching_brace(tokens, open);
                for m in mask.iter_mut().take(close + 1).skip(i) {
                    *m = true;
                }
                i = close + 1;
                continue;
            }
        }
        i += 1;
    }
    mask
}

/// Line ranges (inclusive) covered by `#[cfg(test)]` modules.
pub fn test_line_ranges(tokens: &[Tok], mask: &[bool]) -> Vec<(u32, u32)> {
    let mut ranges: Vec<(u32, u32)> = Vec::new();
    for (t, &m) in tokens.iter().zip(mask) {
        if !m {
            continue;
        }
        match ranges.last_mut() {
            Some(r) if t.line <= r.1 + 1 => r.1 = r.1.max(t.line),
            _ => ranges.push((t.line, t.line)),
        }
    }
    ranges
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_tokens() {
        let l = lex("fn f(x: u32) -> u32 { x + 0x1F }");
        let idents: Vec<&str> =
            l.tokens.iter().filter(|t| t.kind == TokKind::Ident).map(|t| t.text.as_str()).collect();
        assert_eq!(idents, ["fn", "f", "x", "u32", "u32", "x"]);
        let num = l.tokens.iter().find(|t| t.kind == TokKind::Num).unwrap();
        assert_eq!(num.int_value(), Some(0x1F));
    }

    #[test]
    fn int_values() {
        for (src, want) in
            [("0", 0), ("8u32", 8), ("1_000", 1000), ("0x10", 16), ("0b101", 5), ("0o17", 15)]
        {
            let l = lex(src);
            assert_eq!(l.tokens[0].int_value(), Some(want), "{src}");
        }
        assert_eq!(lex("1.5").tokens[0].int_value(), None);
        // A range does not glue into a float.
        let l = lex("0..n");
        assert_eq!(l.tokens[0].int_value(), Some(0));
        assert!(l.tokens[3].is_ident("n"));
    }

    #[test]
    fn comments_strings_lifetimes() {
        let src = r##"
            // line comment with "quotes"
            /* block /* nested */ comment */
            let s = "str with // not a comment";
            let r = r#"raw "inner" string"#;
            let c = 'x';
            let nl = '\n';
            fn f<'a>(x: &'a str) {}
        "##;
        let l = lex(src);
        let strs: Vec<&str> =
            l.tokens.iter().filter(|t| t.kind == TokKind::Str).map(|t| t.text.as_str()).collect();
        assert_eq!(strs, ["str with // not a comment", r#"raw "inner" string"#]);
        let lifetimes: usize = l.tokens.iter().filter(|t| t.kind == TokKind::Lifetime).count();
        assert_eq!(lifetimes, 2);
        let chars: usize = l.tokens.iter().filter(|t| t.kind == TokKind::Char).count();
        assert_eq!(chars, 2);
    }

    #[test]
    fn pragma_extraction() {
        let src = "let x = 1; // dmst-analysis:allow(hash-order) -- membership only\n";
        let l = lex(src);
        assert_eq!(l.pragmas.len(), 1);
        assert_eq!(l.pragmas[0].rule, "hash-order");
        assert_eq!(l.pragmas[0].reason, "membership only");
        assert_eq!(l.pragmas[0].line, 1);
    }

    #[test]
    fn pragma_missing_reason_is_malformed() {
        let l = lex("// dmst-analysis:allow(hash-order)\n");
        assert!(l.pragmas.is_empty());
        assert_eq!(l.malformed.len(), 1);
        assert!(l.malformed[0].what.contains("missing"));
    }

    #[test]
    fn cfg_test_mask() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn hidden() {}\n}\nfn live2() {}";
        let l = lex(src);
        let mask = test_region_mask(&l.tokens);
        let hidden_idx = l.tokens.iter().position(|t| t.is_ident("hidden")).unwrap();
        let live2_idx = l.tokens.iter().position(|t| t.is_ident("live2")).unwrap();
        assert!(mask[hidden_idx]);
        assert!(!mask[live2_idx]);
        let ranges = test_line_ranges(&l.tokens, &mask);
        assert_eq!(ranges, vec![(2, 5)]);
    }

    #[test]
    fn line_numbers_cross_strings() {
        let src = "let a = \"x\ny\";\nlet b = 1;";
        let l = lex(src);
        let b = l.tokens.iter().find(|t| t.is_ident("b")).unwrap();
        assert_eq!(b.line, 3);
    }
}
