//! CLI for the protocol-contract analyzer.
//!
//! ```text
//! cargo run -p dmst-analysis -- --check            # analyze the workspace
//! cargo run -p dmst-analysis -- --check --root DIR # analyze another tree
//! cargo run -p dmst-analysis -- --list-rules       # print the rule catalog
//! ```
//!
//! Exit status: 0 when clean, 1 when any finding survives suppression,
//! 2 on usage or I/O errors.

use std::path::PathBuf;
use std::process::ExitCode;

use dmst_analysis::{analyze, collect_workspace, rules};

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut check = false;
    let mut list = false;
    let mut root: Option<PathBuf> = None;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--check" => check = true,
            "--list-rules" => list = true,
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("error: --root needs a directory argument");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("error: unknown argument `{other}`");
                eprintln!("usage: dmst-analysis [--check] [--root DIR] [--list-rules]");
                return ExitCode::from(2);
            }
        }
    }

    if list {
        for r in rules::RULES {
            println!("{:<16} {}", r.id, r.what.split_whitespace().collect::<Vec<_>>().join(" "));
        }
        if !check {
            return ExitCode::SUCCESS;
        }
    }
    if !check {
        eprintln!("usage: dmst-analysis [--check] [--root DIR] [--list-rules]");
        return ExitCode::from(2);
    }

    // Default root: the workspace this binary was built from.
    let root =
        root.unwrap_or_else(|| PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("..").join(".."));
    let files = match collect_workspace(&root) {
        Ok(files) => files,
        Err(e) => {
            eprintln!("error: failed to read sources under {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    let findings = analyze(&files);
    if findings.is_empty() {
        println!("dmst-analysis: {} files, 0 findings", files.len());
        ExitCode::SUCCESS
    } else {
        for f in &findings {
            println!("{f}");
        }
        println!("dmst-analysis: {} files, {} findings", files.len(), findings.len());
        ExitCode::FAILURE
    }
}
