//! Structural analysis: BFS layers, eccentricities, diameter, components.
//!
//! The paper's bounds are parameterized by the *hop*-diameter `D` (unweighted
//! diameter); [`diameter_exact`] computes it by running a BFS from every
//! vertex (fine at experiment scale), and [`diameter_double_sweep`] gives the
//! classic two-sweep lower bound for larger inputs.

use std::collections::VecDeque;

use crate::{NodeId, WeightedGraph};

/// Distance marker for unreachable vertices in [`bfs_distances`].
pub const UNREACHABLE: u32 = u32::MAX;

/// Hop distances from `src` to every vertex (`UNREACHABLE` where no path).
///
/// # Panics
///
/// Panics if `src >= n`.
pub fn bfs_distances(g: &WeightedGraph, src: NodeId) -> Vec<u32> {
    let mut dist = vec![UNREACHABLE; g.num_nodes()];
    let mut q = VecDeque::new();
    dist[src] = 0;
    q.push_back(src);
    while let Some(v) = q.pop_front() {
        for &(u, _) in g.neighbors(v) {
            if dist[u] == UNREACHABLE {
                dist[u] = dist[v] + 1;
                q.push_back(u);
            }
        }
    }
    dist
}

/// Eccentricity of `src`: the largest finite hop distance from it.
///
/// # Panics
///
/// Panics if `src >= n`.
pub fn eccentricity(g: &WeightedGraph, src: NodeId) -> u32 {
    bfs_distances(g, src).into_iter().filter(|&d| d != UNREACHABLE).max().unwrap_or(0)
}

/// Exact hop-diameter via one BFS per vertex (`O(n * m)`); ignores
/// unreachable pairs, so on a disconnected graph it is the largest component
/// diameter. Returns 0 for graphs with fewer than 2 vertices.
pub fn diameter_exact(g: &WeightedGraph) -> u32 {
    (0..g.num_nodes()).map(|v| eccentricity(g, v)).max().unwrap_or(0)
}

/// Two-sweep diameter lower bound: BFS from vertex 0 to find a far vertex
/// `a`, then `ecc(a)`. Exact on trees; never overestimates.
pub fn diameter_double_sweep(g: &WeightedGraph) -> u32 {
    if g.num_nodes() == 0 {
        return 0;
    }
    let d0 = bfs_distances(g, 0);
    let a = d0
        .iter()
        .enumerate()
        .filter(|(_, &d)| d != UNREACHABLE)
        .max_by_key(|(_, &d)| d)
        .map(|(v, _)| v)
        .unwrap_or(0);
    eccentricity(g, a)
}

/// Connected-component label of each vertex (labels are the minimum vertex
/// id of the component), plus the number of components.
pub fn components(g: &WeightedGraph) -> (Vec<NodeId>, usize) {
    let n = g.num_nodes();
    let mut label = vec![usize::MAX; n];
    let mut count = 0;
    for s in 0..n {
        if label[s] != usize::MAX {
            continue;
        }
        count += 1;
        let mut stack = vec![s];
        label[s] = s;
        while let Some(v) = stack.pop() {
            for &(u, _) in g.neighbors(v) {
                if label[u] == usize::MAX {
                    label[u] = s;
                    stack.push(u);
                }
            }
        }
    }
    (label, count)
}

/// BFS tree parents from `src` (`None` for the source and unreachable
/// vertices), breaking ties toward the smaller neighbor id — the same rule
/// the distributed BFS uses, so the two trees are comparable in tests.
///
/// # Panics
///
/// Panics if `src >= n`.
pub fn bfs_parents(g: &WeightedGraph, src: NodeId) -> Vec<Option<NodeId>> {
    let n = g.num_nodes();
    let mut parent = vec![None; n];
    let mut dist = vec![UNREACHABLE; n];
    let mut q = VecDeque::new();
    dist[src] = 0;
    q.push_back(src);
    while let Some(v) = q.pop_front() {
        let mut nbrs: Vec<NodeId> = g.neighbors(v).iter().map(|&(u, _)| u).collect();
        nbrs.sort_unstable();
        for u in nbrs {
            if dist[u] == UNREACHABLE {
                dist[u] = dist[v] + 1;
                parent[u] = Some(v);
                q.push_back(u);
            }
        }
    }
    parent
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{self, WeightRng};
    use crate::WeightedGraph;

    #[test]
    fn bfs_on_path() {
        let g = generators::path(5, &mut WeightRng::new(1));
        assert_eq!(bfs_distances(&g, 0), vec![0, 1, 2, 3, 4]);
        assert_eq!(bfs_distances(&g, 2), vec![2, 1, 0, 1, 2]);
        assert_eq!(eccentricity(&g, 2), 2);
    }

    #[test]
    fn unreachable_marked() {
        let g = WeightedGraph::new(3, vec![(0, 1, 1)]).unwrap();
        let d = bfs_distances(&g, 0);
        assert_eq!(d[2], UNREACHABLE);
        assert_eq!(eccentricity(&g, 0), 1);
    }

    #[test]
    fn double_sweep_exact_on_trees() {
        let mut r = WeightRng::new(3);
        for n in [2usize, 5, 17, 64] {
            let g = generators::random_tree(n, &mut r);
            assert_eq!(diameter_double_sweep(&g), diameter_exact(&g));
        }
    }

    #[test]
    fn double_sweep_never_overestimates() {
        let mut r = WeightRng::new(5);
        for _ in 0..10 {
            let g = generators::random_connected(30, 40, &mut r);
            assert!(diameter_double_sweep(&g) <= diameter_exact(&g));
        }
    }

    #[test]
    fn components_counts() {
        let g = WeightedGraph::new(5, vec![(0, 1, 1), (3, 4, 1)]).unwrap();
        let (label, count) = components(&g);
        assert_eq!(count, 3);
        assert_eq!(label, vec![0, 0, 2, 3, 3]);
    }

    #[test]
    fn bfs_parents_consistent_with_distances() {
        let g = generators::grid_2d(4, 4, &mut WeightRng::new(9));
        let d = bfs_distances(&g, 0);
        let p = bfs_parents(&g, 0);
        assert_eq!(p[0], None);
        for v in 1..g.num_nodes() {
            let pv = p[v].unwrap();
            assert_eq!(d[v], d[pv] + 1);
        }
    }
}
