//! DIMACS-style text I/O for weighted graphs.
//!
//! The format is the classic DIMACS edge format used by MST/shortest-path
//! benchmark suites, 1-indexed:
//!
//! ```text
//! c optional comment lines
//! p edge <n> <m>
//! e <u> <v> <weight>
//! ```
//!
//! [`write_dimacs`] produces it and [`parse_dimacs`] reads it back;
//! round-tripping preserves the graph exactly (including edge order, so
//! edge ids remain stable).

use std::error::Error;
use std::fmt;
use std::io::{BufRead, Write};

use crate::{GraphError, WeightedGraph};

/// Errors from [`parse_dimacs`].
#[derive(Debug)]
pub enum IoError {
    /// Underlying reader/writer failure.
    Io(std::io::Error),
    /// The text did not conform to the DIMACS edge format.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        msg: String,
    },
    /// The edges did not form a valid simple graph.
    Graph(GraphError),
}

impl fmt::Display for IoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "i/o failure: {e}"),
            IoError::Parse { line, msg } => write!(f, "parse error at line {line}: {msg}"),
            IoError::Graph(e) => write!(f, "invalid graph: {e}"),
        }
    }
}

impl Error for IoError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            IoError::Io(e) => Some(e),
            IoError::Graph(e) => Some(e),
            IoError::Parse { .. } => None,
        }
    }
}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

impl From<GraphError> for IoError {
    fn from(e: GraphError) -> Self {
        IoError::Graph(e)
    }
}

/// Parses a DIMACS edge-format graph from a reader.
///
/// # Errors
///
/// [`IoError::Parse`] on malformed lines, missing/duplicate `p` lines, a
/// wrong edge count, or out-of-range endpoints; [`IoError::Graph`] if the
/// edge list is not a simple graph.
///
/// ```
/// let text = "c tiny\np edge 3 2\ne 1 2 7\ne 2 3 9\n";
/// let g = dmst_graphs::io::parse_dimacs(text.as_bytes())?;
/// assert_eq!(g.num_nodes(), 3);
/// assert_eq!(g.weight(1), 9);
/// # Ok::<(), dmst_graphs::io::IoError>(())
/// ```
pub fn parse_dimacs<R: BufRead>(reader: R) -> Result<WeightedGraph, IoError> {
    let mut header: Option<(usize, usize)> = None;
    let mut edges: Vec<(usize, usize, u64)> = Vec::new();

    for (idx, line) in reader.lines().enumerate() {
        let lineno = idx + 1;
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("p") => {
                if header.is_some() {
                    return Err(IoError::Parse { line: lineno, msg: "duplicate p line".into() });
                }
                let kind = parts.next().unwrap_or("");
                if kind != "edge" && kind != "sp" {
                    return Err(IoError::Parse {
                        line: lineno,
                        msg: format!("unsupported problem type {kind:?}"),
                    });
                }
                let n = parse_num(parts.next(), lineno, "vertex count")?;
                let m = parse_num(parts.next(), lineno, "edge count")?;
                header = Some((n as usize, m as usize));
                edges.reserve(m as usize);
            }
            Some("e") | Some("a") => {
                let (n, _) = header
                    .ok_or(IoError::Parse { line: lineno, msg: "edge before the p line".into() })?;
                let u = parse_num(parts.next(), lineno, "endpoint")? as usize;
                let v = parse_num(parts.next(), lineno, "endpoint")? as usize;
                let w = parse_num(parts.next(), lineno, "weight")?;
                if u == 0 || v == 0 || u > n || v > n {
                    return Err(IoError::Parse {
                        line: lineno,
                        msg: format!("endpoint out of 1..={n}"),
                    });
                }
                edges.push((u - 1, v - 1, w));
            }
            Some(tok) => {
                return Err(IoError::Parse {
                    line: lineno,
                    msg: format!("unexpected token {tok:?}"),
                })
            }
            None => unreachable!("split of non-empty line yields a token"),
        }
    }

    let (n, m) = header.ok_or(IoError::Parse { line: 0, msg: "missing p line".into() })?;
    if edges.len() != m {
        return Err(IoError::Parse {
            line: 0,
            msg: format!("p line promised {m} edges, found {}", edges.len()),
        });
    }
    Ok(WeightedGraph::new(n, edges)?)
}

fn parse_num(tok: Option<&str>, line: usize, what: &str) -> Result<u64, IoError> {
    let tok = tok.ok_or_else(|| IoError::Parse { line, msg: format!("missing {what}") })?;
    tok.parse().map_err(|_| IoError::Parse { line, msg: format!("bad {what}: {tok:?}") })
}

/// Writes `g` in DIMACS edge format (1-indexed, edge order preserved).
///
/// # Errors
///
/// Propagates writer failures.
pub fn write_dimacs<W: Write>(g: &WeightedGraph, mut writer: W) -> Result<(), IoError> {
    writeln!(writer, "c written by dmst-graphs")?;
    writeln!(writer, "p edge {} {}", g.num_nodes(), g.num_edges())?;
    for &(u, v, w) in g.edges() {
        writeln!(writer, "e {} {} {}", u + 1, v + 1, w)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{self, WeightRng};

    #[test]
    fn roundtrip_preserves_graph() {
        let g = generators::random_connected(40, 80, &mut WeightRng::new(7));
        let mut buf = Vec::new();
        write_dimacs(&g, &mut buf).unwrap();
        let back = parse_dimacs(buf.as_slice()).unwrap();
        assert_eq!(g, back);
    }

    #[test]
    fn accepts_comments_blanks_and_sp() {
        let text = "c hello\n\n  \np sp 2 1\na 1 2 5\n";
        let g = parse_dimacs(text.as_bytes()).unwrap();
        assert_eq!(g.num_nodes(), 2);
        assert_eq!(g.weight(0), 5);
    }

    #[test]
    fn rejects_malformed_input() {
        let cases = [
            ("e 1 2 3\n", "edge before the p line"),
            ("p edge 2 1\np edge 2 1\n", "duplicate p line"),
            ("p matrix 2 1\ne 1 2 3\n", "unsupported problem type"),
            ("p edge 2 2\ne 1 2 3\n", "promised 2 edges"),
            ("p edge 2 1\ne 0 2 3\n", "endpoint out of"),
            ("p edge 2 1\ne 1 3 3\n", "endpoint out of"),
            ("p edge 2 1\ne 1 x 3\n", "bad endpoint"),
            ("p edge 2 1\nq 1 2 3\n", "unexpected token"),
            ("", "missing p line"),
        ];
        for (text, needle) in cases {
            let err = parse_dimacs(text.as_bytes()).unwrap_err();
            let msg = err.to_string();
            assert!(msg.contains(needle), "{text:?}: {msg} should contain {needle:?}");
        }
    }

    #[test]
    fn rejects_invalid_graphs() {
        let err = parse_dimacs("p edge 2 1\ne 1 1 3\n".as_bytes()).unwrap_err();
        assert!(matches!(err, IoError::Graph(GraphError::SelfLoop { .. })));
    }
}
