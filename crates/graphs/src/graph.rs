//! The weighted graph type and the unique-MST tie-breaking order.

use std::error::Error;
use std::fmt;

/// Vertex identifier, `0..n`.
pub type NodeId = usize;

/// Edge identifier, `0..m`, in input order.
pub type EdgeId = usize;

/// Total order on edges that makes the minimum spanning tree unique.
///
/// The paper assumes unique edge weights w.l.o.g. (\[Pel00\] Ch. 5); the
/// standard realization is to compare `(weight, min endpoint, max endpoint)`
/// lexicographically. Every MST algorithm in this workspace — sequential and
/// distributed — compares edges through this key, so they all agree on a
/// single canonical MST.
///
/// ```
/// use dmst_graphs::{EdgeKey, WeightedGraph};
/// let g = WeightedGraph::new(3, vec![(0, 1, 5), (1, 2, 5), (0, 2, 5)]).unwrap();
/// // Equal weights are broken by endpoint ids, so keys are strictly ordered.
/// assert!(g.edge_key(0) < g.edge_key(2));
/// assert!(g.edge_key(2) < g.edge_key(1));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EdgeKey {
    /// The raw weight.
    pub weight: u64,
    /// Smaller endpoint id.
    pub lo: NodeId,
    /// Larger endpoint id.
    pub hi: NodeId,
}

impl EdgeKey {
    /// Builds the key for an edge `(u, v)` of weight `w`.
    pub fn new(w: u64, u: NodeId, v: NodeId) -> Self {
        Self { weight: w, lo: u.min(v), hi: u.max(v) }
    }
}

impl fmt::Display for EdgeKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}-{})", self.weight, self.lo, self.hi)
    }
}

/// Errors from [`WeightedGraph`] construction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GraphError {
    /// An endpoint was `>= n`.
    EndpointOutOfRange {
        /// Offending edge index in the input list.
        edge: EdgeId,
        /// The out-of-range endpoint.
        endpoint: NodeId,
        /// Number of vertices.
        n: usize,
    },
    /// An edge joined a vertex to itself.
    SelfLoop {
        /// Offending edge index.
        edge: EdgeId,
    },
    /// The same vertex pair appeared twice.
    DuplicateEdge {
        /// Offending (second) edge index.
        edge: EdgeId,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::EndpointOutOfRange { edge, endpoint, n } => {
                write!(f, "edge {edge} references vertex {endpoint} but n = {n}")
            }
            GraphError::SelfLoop { edge } => write!(f, "edge {edge} is a self-loop"),
            GraphError::DuplicateEdge { edge } => {
                write!(f, "edge {edge} duplicates an earlier edge")
            }
        }
    }
}

impl Error for GraphError {}

/// An undirected, simple, weighted graph with an adjacency index.
///
/// Weights are `u64`; uniqueness of the MST comes from [`EdgeKey`], not from
/// the raw weights, so arbitrary (even all-equal) weights are fine.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WeightedGraph {
    n: usize,
    edges: Vec<(NodeId, NodeId, u64)>,
    adj: Vec<Vec<(NodeId, EdgeId)>>,
}

impl WeightedGraph {
    /// Builds a graph on `n` vertices from an undirected edge list.
    ///
    /// # Errors
    ///
    /// Rejects self-loops, duplicate vertex pairs (either orientation), and
    /// endpoints `>= n` — see [`GraphError`].
    pub fn new(n: usize, edges: Vec<(NodeId, NodeId, u64)>) -> Result<Self, GraphError> {
        let mut adj: Vec<Vec<(NodeId, EdgeId)>> = vec![Vec::new(); n];
        // dmst-analysis:allow(hash-order) -- membership-only duplicate check, never iterated
        let mut seen = std::collections::HashSet::with_capacity(edges.len());
        for (eid, &(u, v, _)) in edges.iter().enumerate() {
            if u >= n {
                return Err(GraphError::EndpointOutOfRange { edge: eid, endpoint: u, n });
            }
            if v >= n {
                return Err(GraphError::EndpointOutOfRange { edge: eid, endpoint: v, n });
            }
            if u == v {
                return Err(GraphError::SelfLoop { edge: eid });
            }
            if !seen.insert((u.min(v), u.max(v))) {
                return Err(GraphError::DuplicateEdge { edge: eid });
            }
            adj[u].push((v, eid));
            adj[v].push((u, eid));
        }
        Ok(Self { n, edges, adj })
    }

    /// Number of vertices.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Number of edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The edge list `(u, v, w)` in input order — the exact shape
    /// `congest_sim::Topology::new` takes.
    #[inline]
    pub fn edges(&self) -> &[(NodeId, NodeId, u64)] {
        &self.edges
    }

    /// Neighbors of `v` as `(neighbor, edge id)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if `v >= n`.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[(NodeId, EdgeId)] {
        &self.adj[v]
    }

    /// Degree of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= n`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        self.adj[v].len()
    }

    /// Endpoints `(u, v)` of edge `e`.
    ///
    /// # Panics
    ///
    /// Panics if `e >= m`.
    #[inline]
    pub fn endpoints(&self, e: EdgeId) -> (NodeId, NodeId) {
        let (u, v, _) = self.edges[e];
        (u, v)
    }

    /// Raw weight of edge `e`.
    ///
    /// # Panics
    ///
    /// Panics if `e >= m`.
    #[inline]
    pub fn weight(&self, e: EdgeId) -> u64 {
        self.edges[e].2
    }

    /// Tie-breaking key of edge `e` (see [`EdgeKey`]).
    ///
    /// # Panics
    ///
    /// Panics if `e >= m`.
    #[inline]
    pub fn edge_key(&self, e: EdgeId) -> EdgeKey {
        let (u, v, w) = self.edges[e];
        EdgeKey::new(w, u, v)
    }

    /// Sum of raw weights over a set of edges.
    pub fn total_weight<I: IntoIterator<Item = EdgeId>>(&self, edges: I) -> u128 {
        edges.into_iter().map(|e| u128::from(self.weight(e))).sum()
    }

    /// Whether every pair of vertices is joined by a path. Graphs with at
    /// most one vertex count as connected.
    pub fn is_connected(&self) -> bool {
        if self.n <= 1 {
            return true;
        }
        let mut seen = vec![false; self.n];
        let mut stack = vec![0];
        seen[0] = true;
        let mut count = 1;
        while let Some(v) = stack.pop() {
            for &(u, _) in &self.adj[v] {
                if !seen[u] {
                    seen[u] = true;
                    count += 1;
                    stack.push(u);
                }
            }
        }
        count == self.n
    }

    /// Checks that `edges` forms a spanning tree of this graph: `n - 1`
    /// distinct edges, no cycle, all vertices covered.
    pub fn is_spanning_tree(&self, edges: &[EdgeId]) -> bool {
        if self.n == 0 {
            return edges.is_empty();
        }
        if edges.len() != self.n - 1 {
            return false;
        }
        let mut uf = crate::UnionFind::new(self.n);
        for &e in edges {
            if e >= self.edges.len() {
                return false;
            }
            let (u, v) = self.endpoints(e);
            if !uf.union(u, v) {
                return false; // cycle
            }
        }
        uf.num_sets() == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_key_total_order_breaks_ties() {
        let a = EdgeKey::new(5, 2, 1);
        let b = EdgeKey::new(5, 1, 3);
        let c = EdgeKey::new(4, 9, 8);
        assert_eq!(a, EdgeKey::new(5, 1, 2));
        assert!(c < a && a < b);
    }

    #[test]
    fn construction_validates() {
        assert!(WeightedGraph::new(2, vec![(0, 0, 1)]).is_err());
        assert!(WeightedGraph::new(2, vec![(0, 1, 1), (1, 0, 2)]).is_err());
        assert!(WeightedGraph::new(2, vec![(0, 5, 1)]).is_err());
        assert!(WeightedGraph::new(3, vec![(0, 1, 1), (1, 2, 1)]).is_ok());
    }

    #[test]
    fn accessors() {
        let g = WeightedGraph::new(3, vec![(0, 1, 7), (1, 2, 9)]).unwrap();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.endpoints(1), (1, 2));
        assert_eq!(g.weight(0), 7);
        assert_eq!(g.total_weight([0, 1]), 16);
        assert!(g.is_connected());
    }

    #[test]
    fn spanning_tree_checker() {
        let g = WeightedGraph::new(4, vec![(0, 1, 1), (1, 2, 1), (2, 3, 1), (3, 0, 1)]).unwrap();
        assert!(g.is_spanning_tree(&[0, 1, 2]));
        assert!(!g.is_spanning_tree(&[0, 1])); // too few
        assert!(!g.is_spanning_tree(&[0, 1, 1])); // duplicate edge forms no tree
        let g2 = WeightedGraph::new(4, vec![(0, 1, 1), (1, 2, 1), (0, 2, 1), (2, 3, 1)]).unwrap();
        assert!(!g2.is_spanning_tree(&[0, 1, 2])); // triangle: cycle
    }

    #[test]
    fn disconnected_detected() {
        let g = WeightedGraph::new(4, vec![(0, 1, 1), (2, 3, 1)]).unwrap();
        assert!(!g.is_connected());
    }
}
