//! Sequential MST oracles: Kruskal, Prim, Borůvka.
//!
//! All three compare edges by [`EdgeKey`](crate::EdgeKey), so on a connected
//! graph they return the *same* canonical tree — the ground truth against
//! which every distributed execution in this workspace is verified. On a
//! disconnected graph they return the minimum spanning forest.

use std::collections::BinaryHeap;

use crate::{EdgeId, EdgeKey, UnionFind, WeightedGraph};

/// A minimum spanning tree (or forest): edge ids sorted ascending, plus the
/// total raw weight.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MstResult {
    /// MST edge ids, sorted ascending for canonical comparison.
    pub edges: Vec<EdgeId>,
    /// Sum of the raw weights of those edges.
    pub total_weight: u128,
}

impl MstResult {
    fn from_edges(g: &WeightedGraph, mut edges: Vec<EdgeId>) -> Self {
        edges.sort_unstable();
        let total_weight = g.total_weight(edges.iter().copied());
        Self { edges, total_weight }
    }
}

/// Kruskal's algorithm: sort by [`EdgeKey`](crate::EdgeKey), union–find.
///
/// ```
/// use dmst_graphs::{mst, WeightedGraph};
/// let g = WeightedGraph::new(3, vec![(0, 1, 1), (1, 2, 2), (0, 2, 3)]).unwrap();
/// let t = mst::kruskal(&g);
/// assert_eq!(t.edges, vec![0, 1]);
/// assert_eq!(t.total_weight, 3);
/// ```
pub fn kruskal(g: &WeightedGraph) -> MstResult {
    let mut order: Vec<EdgeId> = (0..g.num_edges()).collect();
    order.sort_unstable_by_key(|&e| g.edge_key(e));
    let mut uf = UnionFind::new(g.num_nodes());
    let mut chosen = Vec::with_capacity(g.num_nodes().saturating_sub(1));
    for e in order {
        let (u, v) = g.endpoints(e);
        if uf.union(u, v) {
            chosen.push(e);
        }
    }
    MstResult::from_edges(g, chosen)
}

/// Prim's algorithm with a binary heap, restarted per component.
pub fn prim(g: &WeightedGraph) -> MstResult {
    let n = g.num_nodes();
    let mut in_tree = vec![false; n];
    let mut chosen = Vec::with_capacity(n.saturating_sub(1));
    // Max-heap on Reverse(key): pop the smallest EdgeKey first.
    let mut heap: BinaryHeap<(std::cmp::Reverse<EdgeKey>, EdgeId)> = BinaryHeap::new();
    for start in 0..n {
        if in_tree[start] {
            continue;
        }
        in_tree[start] = true;
        for &(_, e) in g.neighbors(start) {
            heap.push((std::cmp::Reverse(g.edge_key(e)), e));
        }
        while let Some((_, e)) = heap.pop() {
            let (u, v) = g.endpoints(e);
            let fresh = match (in_tree[u], in_tree[v]) {
                (true, false) => v,
                (false, true) => u,
                _ => continue,
            };
            in_tree[fresh] = true;
            chosen.push(e);
            for &(_, e2) in g.neighbors(fresh) {
                let (a, b) = g.endpoints(e2);
                if !in_tree[a] || !in_tree[b] {
                    heap.push((std::cmp::Reverse(g.edge_key(e2)), e2));
                }
            }
        }
    }
    MstResult::from_edges(g, chosen)
}

/// Borůvka's algorithm: repeatedly add every component's minimum-weight
/// outgoing edge (the sequential skeleton of the distributed algorithms).
pub fn boruvka(g: &WeightedGraph) -> MstResult {
    let n = g.num_nodes();
    let mut uf = UnionFind::new(n);
    let mut chosen: Vec<EdgeId> = Vec::with_capacity(n.saturating_sub(1));
    loop {
        // best[root of component] = lightest outgoing edge, by EdgeKey.
        let mut best: Vec<Option<EdgeId>> = vec![None; n];
        let mut any = false;
        for e in 0..g.num_edges() {
            let (u, v) = g.endpoints(e);
            let (ru, rv) = (uf.find(u), uf.find(v));
            if ru == rv {
                continue;
            }
            any = true;
            for r in [ru, rv] {
                if best[r].is_none_or(|b| g.edge_key(e) < g.edge_key(b)) {
                    best[r] = Some(e);
                }
            }
        }
        if !any {
            break;
        }
        for opt in &best {
            if let Some(e) = *opt {
                let (u, v) = g.endpoints(e);
                if uf.union(u, v) {
                    chosen.push(e);
                }
            }
        }
    }
    MstResult::from_edges(g, chosen)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{self, WeightRng};

    fn all_three(g: &WeightedGraph) -> MstResult {
        let k = kruskal(g);
        assert_eq!(k, prim(g), "Prim disagrees with Kruskal");
        assert_eq!(k, boruvka(g), "Boruvka disagrees with Kruskal");
        k
    }

    #[test]
    fn textbook_example() {
        let g =
            WeightedGraph::new(4, vec![(0, 1, 10), (1, 2, 6), (2, 3, 4), (3, 0, 5), (0, 2, 11)])
                .unwrap();
        let t = all_three(&g);
        assert_eq!(t.edges, vec![1, 2, 3]);
        assert_eq!(t.total_weight, 15);
        assert!(g.is_spanning_tree(&t.edges));
    }

    #[test]
    fn tree_input_is_its_own_mst() {
        let g = generators::random_tree(40, &mut WeightRng::new(2));
        let t = all_three(&g);
        assert_eq!(t.edges, (0..39).collect::<Vec<_>>());
    }

    #[test]
    fn equal_weights_resolved_by_tiebreak() {
        // All weights equal: the canonical MST is determined purely by ids.
        let edges = vec![(0, 1, 7), (1, 2, 7), (2, 0, 7), (2, 3, 7), (3, 0, 7)];
        let g = WeightedGraph::new(4, edges).unwrap();
        let t = all_three(&g);
        assert_eq!(t.edges.len(), 3);
        assert!(g.is_spanning_tree(&t.edges));
        // Kruskal order by key: (7,0,1) (7,0,2) (7,0,3) (7,1,2) (7,2,3)
        assert_eq!(t.edges, vec![0, 2, 4]);
    }

    #[test]
    fn random_graphs_agree() {
        let mut r = WeightRng::new(11);
        for n in [2usize, 3, 8, 40, 90] {
            let g = generators::random_connected(n, 2 * n, &mut r);
            let t = all_three(&g);
            assert_eq!(t.edges.len(), n - 1);
            assert!(g.is_spanning_tree(&t.edges));
        }
    }

    #[test]
    fn forest_on_disconnected() {
        let g = WeightedGraph::new(5, vec![(0, 1, 3), (1, 2, 2), (0, 2, 1), (3, 4, 9)]).unwrap();
        let t = all_three(&g);
        assert_eq!(t.edges.len(), 3); // 2 + 1
        assert_eq!(t.total_weight, 1 + 2 + 9);
    }

    #[test]
    fn single_vertex_and_empty() {
        let g1 = WeightedGraph::new(1, vec![]).unwrap();
        assert_eq!(all_three(&g1).edges, Vec::<EdgeId>::new());
        let g0 = WeightedGraph::new(0, vec![]).unwrap();
        assert_eq!(all_three(&g0).edges, Vec::<EdgeId>::new());
    }
}
