//! # dmst-graphs — weighted graphs, generators, and sequential MST oracles
//!
//! Substrate crate for the reproduction of Elkin's deterministic distributed
//! MST algorithm (PODC 2017). It provides:
//!
//! * [`WeightedGraph`]: a validated, undirected, simple weighted graph.
//! * [`EdgeKey`]: the lexicographic tie-breaking order `(w, min(u,v),
//!   max(u,v))` that makes the MST unique for *any* weight assignment — the
//!   standard reduction the paper cites (\[Pel00\], Ch. 5).
//! * [`generators`]: deterministic families used by the experiments (paths,
//!   grids, tori, hypercubes, random connected graphs, path-of-cliques with
//!   controlled diameter, ...).
//! * [`analysis`]: BFS, eccentricities, exact and two-sweep diameter,
//!   connected components.
//! * [`mst`]: sequential Kruskal, Prim, and Borůvka — the ground truth every
//!   distributed run is checked against.
//! * [`UnionFind`]: path-halving + union-by-rank disjoint sets.
//!
//! ```
//! use dmst_graphs::{generators, mst, analysis};
//!
//! let g = generators::torus_2d(8, 8, &mut generators::WeightRng::new(7));
//! let tree = mst::kruskal(&g);
//! assert_eq!(tree.edges.len(), g.num_nodes() - 1);
//! assert_eq!(tree, mst::prim(&g));
//! let d = analysis::diameter_exact(&g);
//! assert_eq!(d, 8); // 4 + 4 hops around the torus
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod generators;
mod graph;
pub mod io;
pub mod mst;
mod unionfind;

pub use graph::{EdgeId, EdgeKey, GraphError, NodeId, WeightedGraph};
pub use unionfind::UnionFind;
