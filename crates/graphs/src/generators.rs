//! Deterministic graph families used by the experiments.
//!
//! Every generator takes a [`WeightRng`] so structure and weights are fully
//! reproducible from a seed. Families are chosen to exercise the regimes the
//! paper distinguishes:
//!
//! * **low diameter** (`D <= sqrt(n)`): [`torus_2d`], [`hypercube`],
//!   [`complete`], [`random_connected`], [`circulant`];
//! * **high diameter** (`D > sqrt(n)`): [`path`], [`cycle`],
//!   [`path_of_cliques`] (diameter dialed by the number of cliques),
//!   [`barbell`], [`lollipop`], [`broom`], [`caterpillar`];
//! * **trees** (MST = graph): [`random_tree`], [`binary_tree`], [`star`].

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{NodeId, WeightedGraph};

/// Default weight range; large enough that uniform draws rarely collide,
/// while collisions remain harmless thanks to [`EdgeKey`](crate::EdgeKey)
/// tie-breaking.
pub const MAX_WEIGHT: u64 = 1_000_000;

/// Seeded random source for generator structure and edge weights.
#[derive(Clone, Debug)]
pub struct WeightRng {
    rng: StdRng,
}

impl WeightRng {
    /// Creates a source from a seed; equal seeds give equal graphs.
    pub fn new(seed: u64) -> Self {
        Self { rng: StdRng::seed_from_u64(seed) }
    }

    /// A uniform weight in `1..=MAX_WEIGHT`.
    pub fn weight(&mut self) -> u64 {
        self.rng.gen_range(1..=MAX_WEIGHT)
    }

    /// A uniform integer in `0..bound`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn index(&mut self, bound: usize) -> usize {
        self.rng.gen_range(0..bound)
    }
}

fn build(n: usize, mut edges: Vec<(NodeId, NodeId, u64)>, rng: &mut WeightRng) -> WeightedGraph {
    for e in &mut edges {
        e.2 = rng.weight();
    }
    WeightedGraph::new(n, edges).expect("generator produced an invalid graph")
}

/// The path `0 - 1 - ... - (n-1)`; diameter `n - 1`.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn path(n: usize, rng: &mut WeightRng) -> WeightedGraph {
    assert!(n > 0, "path needs at least one vertex");
    build(n, (1..n).map(|v| (v - 1, v, 0)).collect(), rng)
}

/// The cycle on `n >= 3` vertices; diameter `floor(n/2)`.
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn cycle(n: usize, rng: &mut WeightRng) -> WeightedGraph {
    assert!(n >= 3, "cycle needs at least three vertices");
    let mut edges: Vec<(NodeId, NodeId, u64)> = (1..n).map(|v| (v - 1, v, 0)).collect();
    edges.push((n - 1, 0, 0));
    build(n, edges, rng)
}

/// The complete graph `K_n`; diameter 1.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn complete(n: usize, rng: &mut WeightRng) -> WeightedGraph {
    assert!(n > 0, "complete graph needs at least one vertex");
    let mut edges = Vec::with_capacity(n * (n - 1) / 2);
    for u in 0..n {
        for v in (u + 1)..n {
            edges.push((u, v, 0));
        }
    }
    build(n, edges, rng)
}

/// The star with center 0 and `n - 1` leaves; diameter 2.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn star(n: usize, rng: &mut WeightRng) -> WeightedGraph {
    assert!(n > 0, "star needs at least one vertex");
    build(n, (1..n).map(|v| (0, v, 0)).collect(), rng)
}

/// The complete binary tree on `n` vertices (heap layout: parent of `v` is
/// `(v - 1) / 2`).
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn binary_tree(n: usize, rng: &mut WeightRng) -> WeightedGraph {
    assert!(n > 0, "binary tree needs at least one vertex");
    build(n, (1..n).map(|v| ((v - 1) / 2, v, 0)).collect(), rng)
}

/// A uniformly random recursive tree: vertex `v` attaches to a uniform
/// earlier vertex. Expected diameter `O(log n)`.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn random_tree(n: usize, rng: &mut WeightRng) -> WeightedGraph {
    assert!(n > 0, "tree needs at least one vertex");
    let edges = (1..n).map(|v| (rng.index(v), v, 0)).collect();
    build(n, edges, rng)
}

/// The `rows x cols` grid; diameter `rows + cols - 2`.
///
/// # Panics
///
/// Panics if either dimension is 0.
pub fn grid_2d(rows: usize, cols: usize, rng: &mut WeightRng) -> WeightedGraph {
    assert!(rows > 0 && cols > 0, "grid needs positive dimensions");
    let id = |r: usize, c: usize| r * cols + c;
    let mut edges = Vec::new();
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                edges.push((id(r, c), id(r, c + 1), 0));
            }
            if r + 1 < rows {
                edges.push((id(r, c), id(r + 1, c), 0));
            }
        }
    }
    build(rows * cols, edges, rng)
}

/// The `rows x cols` torus (grid with wraparound); diameter
/// `floor(rows/2) + floor(cols/2)`. Needs `rows, cols >= 3` to stay simple.
///
/// # Panics
///
/// Panics if either dimension is below 3.
pub fn torus_2d(rows: usize, cols: usize, rng: &mut WeightRng) -> WeightedGraph {
    assert!(rows >= 3 && cols >= 3, "torus needs both dimensions >= 3");
    let id = |r: usize, c: usize| r * cols + c;
    let mut edges = Vec::new();
    for r in 0..rows {
        for c in 0..cols {
            edges.push((id(r, c), id(r, (c + 1) % cols), 0));
            edges.push((id(r, c), id((r + 1) % rows, c), 0));
        }
    }
    build(rows * cols, edges, rng)
}

/// The `dim`-dimensional hypercube on `2^dim` vertices; diameter `dim`.
///
/// # Panics
///
/// Panics if `dim == 0` or `dim >= 24`.
pub fn hypercube(dim: u32, rng: &mut WeightRng) -> WeightedGraph {
    assert!(dim > 0 && dim < 24, "hypercube dimension must be in 1..24");
    let n = 1usize << dim;
    let mut edges = Vec::with_capacity(n * dim as usize / 2);
    for v in 0..n {
        for b in 0..dim {
            let u = v ^ (1 << b);
            if v < u {
                edges.push((v, u, 0));
            }
        }
    }
    build(n, edges, rng)
}

/// The circulant graph: a cycle on `n` vertices plus chords at the given
/// offsets. Low diameter for well-spread offsets; a cheap deterministic
/// expander stand-in.
///
/// # Panics
///
/// Panics if `n < 3` or any offset is 0 or `>= n / 2 + 1`.
pub fn circulant(n: usize, offsets: &[usize], rng: &mut WeightRng) -> WeightedGraph {
    assert!(n >= 3, "circulant needs at least three vertices");
    let mut edges = Vec::new();
    let mut all = vec![1usize];
    all.extend_from_slice(offsets);
    all.sort_unstable();
    all.dedup();
    for &o in &all {
        assert!(o >= 1 && 2 * o <= n, "offset {o} invalid for n = {n}");
        for v in 0..n {
            let u = (v + o) % n;
            // For the half-way offset each edge would be generated twice.
            if 2 * o == n && v >= u {
                continue;
            }
            edges.push((v, u, 0));
        }
    }
    build(n, edges, rng)
}

/// A connected random graph: a random recursive tree plus `extra` uniform
/// non-duplicate chords. `m = n - 1 + extra` (chords that collide with
/// existing edges are re-drawn a bounded number of times, so `m` can fall
/// slightly short on dense inputs).
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn random_connected(n: usize, extra: usize, rng: &mut WeightRng) -> WeightedGraph {
    assert!(n > 0, "graph needs at least one vertex");
    let mut edges: Vec<(NodeId, NodeId, u64)> = (1..n).map(|v| (rng.index(v), v, 0)).collect();
    // dmst-analysis:allow(hash-order) -- membership-only rejection sampling set, never iterated
    let mut seen: std::collections::HashSet<(NodeId, NodeId)> =
        edges.iter().map(|&(u, v, _)| (u.min(v), u.max(v))).collect();
    let max_extra = n.saturating_mul(n.saturating_sub(1)) / 2 - edges.len();
    let want = extra.min(max_extra);
    let mut added = 0;
    let mut attempts = 0;
    while added < want && attempts < 20 * want + 100 {
        attempts += 1;
        let u = rng.index(n);
        let v = rng.index(n);
        if u == v {
            continue;
        }
        let key = (u.min(v), u.max(v));
        if seen.insert(key) {
            edges.push((key.0, key.1, 0));
            added += 1;
        }
    }
    build(n, edges, rng)
}

/// Two cliques of size `clique` joined by a path of `path_len` extra
/// vertices; diameter `path_len + 3` (for `clique >= 2`).
///
/// # Panics
///
/// Panics if `clique < 2`.
pub fn barbell(clique: usize, path_len: usize, rng: &mut WeightRng) -> WeightedGraph {
    assert!(clique >= 2, "barbell cliques need at least two vertices");
    let n = 2 * clique + path_len;
    let mut edges = Vec::new();
    for u in 0..clique {
        for v in (u + 1)..clique {
            edges.push((u, v, 0));
            edges.push((clique + path_len + u, clique + path_len + v, 0));
        }
    }
    // Path bridging the cliques: clique-1 .. bridge vertices .. clique+path_len.
    let mut prev = clique - 1;
    for i in 0..path_len {
        edges.push((prev, clique + i, 0));
        prev = clique + i;
    }
    edges.push((prev, clique + path_len, 0));
    build(n, edges, rng)
}

/// A clique of size `clique` with a path of `path_len` vertices hanging off
/// one clique vertex; the classic high-diameter, locally-dense family.
///
/// # Panics
///
/// Panics if `clique < 2`.
pub fn lollipop(clique: usize, path_len: usize, rng: &mut WeightRng) -> WeightedGraph {
    assert!(clique >= 2, "lollipop clique needs at least two vertices");
    let n = clique + path_len;
    let mut edges = Vec::new();
    for u in 0..clique {
        for v in (u + 1)..clique {
            edges.push((u, v, 0));
        }
    }
    let mut prev = clique - 1;
    for i in 0..path_len {
        edges.push((prev, clique + i, 0));
        prev = clique + i;
    }
    build(n, edges, rng)
}

/// `count` cliques of size `size` arranged in a row, consecutive cliques
/// joined by a single edge. `n = count * size`, `m = Θ(count * size²)`,
/// diameter `Θ(count)` — the family that dials `D` independently of `n`,
/// used for the paper's large-diameter regime (`k = D`).
///
/// # Panics
///
/// Panics if `count == 0` or `size < 2`.
pub fn path_of_cliques(count: usize, size: usize, rng: &mut WeightRng) -> WeightedGraph {
    assert!(count > 0, "need at least one clique");
    assert!(size >= 2, "cliques need at least two vertices");
    let n = count * size;
    let mut edges = Vec::new();
    for c in 0..count {
        let base = c * size;
        for u in 0..size {
            for v in (u + 1)..size {
                edges.push((base + u, base + v, 0));
            }
        }
        if c + 1 < count {
            // Last vertex of this clique to first vertex of the next.
            edges.push((base + size - 1, base + size, 0));
        }
    }
    build(n, edges, rng)
}

/// A torus whose weights force the MST to be a Hamiltonian "snake": the
/// boustrophedon row-major path gets ascending small weights, every other
/// edge a weight above them all. `D = Θ(sqrt(n))` but `Diam(MST) = n - 1`
/// — the adversarial input separating diameter-controlled algorithms
/// (Elkin: `O((D + sqrt n) log n)` rounds) from GHS-style merging (`Θ(n)`
/// tall fragments, `Θ(n log n)` rounds).
///
/// # Panics
///
/// Panics if either dimension is below 3.
pub fn snake_torus(rows: usize, cols: usize, rng: &mut WeightRng) -> WeightedGraph {
    let g = torus_2d(rows, cols, rng);
    let n = g.num_nodes() as u64;
    let id = |r: usize, c: usize| r * cols + c;
    // Consecutive vertices along the snake: row 0 left-to-right, row 1
    // right-to-left, ...
    let mut snake_rank = std::collections::BTreeMap::new();
    let mut prev: Option<usize> = None;
    let mut rank = 0u64;
    for r in 0..rows {
        let cs: Vec<usize> =
            if r % 2 == 0 { (0..cols).collect() } else { (0..cols).rev().collect() };
        for c in cs {
            if let Some(p) = prev {
                snake_rank.insert((p.min(id(r, c)), p.max(id(r, c))), rank);
                rank += 1;
            }
            prev = Some(id(r, c));
        }
    }
    let edges = g
        .edges()
        .iter()
        .map(|&(u, v, _)| {
            let w = match snake_rank.get(&(u.min(v), u.max(v))) {
                Some(&r) => 1 + r,
                None => 10 * n + rng.index(n as usize) as u64,
            };
            (u, v, w)
        })
        .collect();
    WeightedGraph::new(rows * cols, edges).expect("same structure as the torus")
}

/// A caterpillar: a spine path of `spine` vertices, each with `legs` leaves.
///
/// # Panics
///
/// Panics if `spine == 0`.
pub fn caterpillar(spine: usize, legs: usize, rng: &mut WeightRng) -> WeightedGraph {
    assert!(spine > 0, "caterpillar needs a spine");
    let n = spine * (1 + legs);
    let mut edges = Vec::new();
    for s in 1..spine {
        edges.push((s - 1, s, 0));
    }
    for s in 0..spine {
        for l in 0..legs {
            edges.push((s, spine + s * legs + l, 0));
        }
    }
    build(n, edges, rng)
}

/// A broom (star of paths): `paths` disjoint paths of length `len` all
/// attached to a central vertex 0; diameter `2 * len`.
///
/// # Panics
///
/// Panics if `paths == 0` or `len == 0`.
pub fn broom(paths: usize, len: usize, rng: &mut WeightRng) -> WeightedGraph {
    assert!(paths > 0 && len > 0, "broom needs positive arms");
    let n = 1 + paths * len;
    let mut edges = Vec::new();
    for p in 0..paths {
        let base = 1 + p * len;
        edges.push((0, base, 0));
        for i in 1..len {
            edges.push((base + i - 1, base + i, 0));
        }
    }
    build(n, edges, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis;

    fn rng() -> WeightRng {
        WeightRng::new(0xDEADBEEF)
    }

    #[test]
    fn sizes_and_connectivity() {
        let r = &mut rng();
        let cases: Vec<(WeightedGraph, usize, usize)> = vec![
            (path(10, r), 10, 9),
            (cycle(10, r), 10, 10),
            (complete(6, r), 6, 15),
            (star(7, r), 7, 6),
            (binary_tree(10, r), 10, 9),
            (random_tree(33, r), 33, 32),
            (grid_2d(4, 5, r), 20, 31),
            (torus_2d(4, 5, r), 20, 40),
            (hypercube(4, r), 16, 32),
            (circulant(12, &[3, 5], r), 12, 36),
            (barbell(4, 3, r), 11, 16),
            (lollipop(5, 4, r), 9, 14),
            (path_of_cliques(4, 3, r), 12, 15),
            (caterpillar(5, 2, r), 15, 14),
            (broom(3, 4, r), 13, 12),
        ];
        for (g, n, m) in cases {
            assert_eq!(g.num_nodes(), n);
            assert_eq!(g.num_edges(), m, "wrong edge count for n = {n}");
            assert!(g.is_connected(), "generator output disconnected (n = {n})");
        }
    }

    #[test]
    fn diameters_match_formulas() {
        let r = &mut rng();
        assert_eq!(analysis::diameter_exact(&path(9, r)), 8);
        assert_eq!(analysis::diameter_exact(&cycle(9, r)), 4);
        assert_eq!(analysis::diameter_exact(&complete(9, r)), 1);
        assert_eq!(analysis::diameter_exact(&star(9, r)), 2);
        assert_eq!(analysis::diameter_exact(&grid_2d(3, 4, r)), 5);
        assert_eq!(analysis::diameter_exact(&torus_2d(4, 6, r)), 5);
        assert_eq!(analysis::diameter_exact(&hypercube(5, r)), 5);
        assert_eq!(analysis::diameter_exact(&broom(4, 3, r)), 6);
        assert_eq!(analysis::diameter_exact(&barbell(3, 2, r)), 5);
    }

    #[test]
    fn path_of_cliques_diameter_scales_with_count() {
        let r = &mut rng();
        let d4 = analysis::diameter_exact(&path_of_cliques(4, 4, r));
        let d8 = analysis::diameter_exact(&path_of_cliques(8, 4, r));
        assert!(d8 > d4);
        assert_eq!(d4, 2 * 4 - 1); // alternating clique hop + bridge hop
    }

    #[test]
    fn snake_torus_mst_is_the_snake() {
        let r = &mut rng();
        let g = snake_torus(4, 5, r);
        assert_eq!(g.num_nodes(), 20);
        assert_eq!(g.num_edges(), 40);
        let t = crate::mst::kruskal(&g);
        assert_eq!(t.edges.len(), 19);
        // The MST is a path of diameter n-1: check via its total weight
        // (snake weights are 1..n-1) and its degree profile.
        assert_eq!(t.total_weight, (1..=19u128).sum());
        let mut deg = [0u32; 20];
        for &e in &t.edges {
            let (u, v) = g.endpoints(e);
            deg[u] += 1;
            deg[v] += 1;
        }
        assert_eq!(deg.iter().filter(|&&d| d == 1).count(), 2, "a path has two leaves");
        assert!(deg.iter().all(|&d| d <= 2), "a path has max degree 2");
    }

    #[test]
    fn random_connected_edge_budget() {
        let r = &mut rng();
        let g = random_connected(50, 100, r);
        assert_eq!(g.num_nodes(), 50);
        assert_eq!(g.num_edges(), 149);
        assert!(g.is_connected());
        // Requesting more chords than the complete graph holds saturates.
        let g2 = random_connected(5, 1000, r);
        assert_eq!(g2.num_edges(), 10);
    }

    #[test]
    fn determinism_by_seed() {
        let g1 = random_connected(40, 60, &mut WeightRng::new(7));
        let g2 = random_connected(40, 60, &mut WeightRng::new(7));
        let g3 = random_connected(40, 60, &mut WeightRng::new(8));
        assert_eq!(g1, g2);
        assert_ne!(g1, g3);
    }

    #[test]
    fn weights_in_range() {
        let g = complete(8, &mut rng());
        assert!(g.edges().iter().all(|&(_, _, w)| (1..=MAX_WEIGHT).contains(&w)));
    }
}
