//! Disjoint-set forest with union by rank and path halving.

/// A union–find (disjoint set) structure over `0..n`.
///
/// Used by the sequential MST algorithms, by the spanning-tree verifier, and
/// by the root-local fragment-graph computation inside the distributed
/// algorithms (the paper's root `rt` merges fragments locally every Borůvka
/// phase).
///
/// ```
/// use dmst_graphs::UnionFind;
/// let mut uf = UnionFind::new(4);
/// assert!(uf.union(0, 1));
/// assert!(!uf.union(1, 0)); // already joined
/// assert_eq!(uf.num_sets(), 3);
/// assert!(uf.same(0, 1));
/// ```
#[derive(Clone, Debug)]
pub struct UnionFind {
    parent: Vec<usize>,
    rank: Vec<u8>,
    sets: usize,
}

impl UnionFind {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        Self { parent: (0..n).collect(), rank: vec![0; n], sets: n }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the structure is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Representative of `x`'s set (with path halving).
    ///
    /// # Panics
    ///
    /// Panics if `x >= n`.
    pub fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    /// Merges the sets of `a` and `b`. Returns `true` if they were distinct.
    ///
    /// # Panics
    ///
    /// Panics if `a >= n` or `b >= n`.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (hi, lo) = if self.rank[ra] >= self.rank[rb] { (ra, rb) } else { (rb, ra) };
        self.parent[lo] = hi;
        if self.rank[ra] == self.rank[rb] {
            self.rank[hi] += 1;
        }
        self.sets -= 1;
        true
    }

    /// Whether `a` and `b` are currently in the same set.
    ///
    /// # Panics
    ///
    /// Panics if `a >= n` or `b >= n`.
    pub fn same(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Current number of disjoint sets.
    pub fn num_sets(&self) -> usize {
        self.sets
    }

    /// Number of parent hops from `x` to its root, *without* compressing
    /// (diagnostic; lets tests observe path halving through the public API).
    ///
    /// # Panics
    ///
    /// Panics if `x >= n`.
    pub fn depth(&self, mut x: usize) -> usize {
        let mut hops = 0;
        while self.parent[x] != x {
            x = self.parent[x];
            hops += 1;
        }
        hops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons() {
        let mut uf = UnionFind::new(3);
        assert_eq!(uf.num_sets(), 3);
        assert_eq!(uf.len(), 3);
        assert!(!uf.is_empty());
        assert!(!uf.same(0, 2));
        assert_eq!(uf.find(1), 1);
    }

    #[test]
    fn chain_unions_compress() {
        let mut uf = UnionFind::new(100);
        for i in 0..99 {
            assert!(uf.union(i, i + 1));
        }
        assert_eq!(uf.num_sets(), 1);
        assert!(uf.same(0, 99));
        assert!(!uf.union(5, 95));
    }

    #[test]
    fn empty() {
        let uf = UnionFind::new(0);
        assert!(uf.is_empty());
        assert_eq!(uf.num_sets(), 0);
    }
}
