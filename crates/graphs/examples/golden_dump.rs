//! Regenerates the golden values pinned by `tests/determinism.rs`.
//!
//! Run `cargo run -p dmst-graphs --example golden_dump` after any
//! *deliberate* change to the RNG or the generators, and update the test
//! constants from its output. Accidental drift (platform, toolchain, or
//! refactor) is exactly what the pinned tests exist to catch.

use dmst_graphs::generators as gen;

fn main() {
    let mut r = gen::WeightRng::new(42);
    let weights: Vec<u64> = (0..8).map(|_| r.weight()).collect();
    println!("weights(seed 42) = {weights:?};");
    let mut r = gen::WeightRng::new(42);
    let indices: Vec<usize> = (0..8).map(|_| r.index(1000)).collect();
    println!("indices(seed 42, bound 1000) = {indices:?};");

    let tree = gen::random_tree(6, &mut gen::WeightRng::new(3));
    println!("random_tree(6, seed 3) = {:?};", tree.edges());

    let g = gen::random_connected(8, 4, &mut gen::WeightRng::new(7));
    println!("random_connected(8, 4, seed 7) = {:?};", g.edges());

    let p = gen::path(4, &mut gen::WeightRng::new(0));
    println!("path(4, seed 0) = {:?};", p.edges());

    let s = gen::snake_torus(3, 3, &mut gen::WeightRng::new(5));
    println!("snake_torus(3, 3, seed 5) = {:?};", s.edges());
}
