//! Edge-case and contract tests for the graph substrate: documented panics
//! fire, degenerate sizes work, and analysis handles pathological shapes.

use dmst_graphs::{analysis, generators as gen, mst, GraphError, WeightedGraph};

#[test]
fn documented_panics_fire() {
    let r = || gen::WeightRng::new(0);
    macro_rules! panics {
        ($e:expr) => {
            assert!(std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| $e)).is_err());
        };
    }
    panics!(gen::path(0, &mut r()));
    panics!(gen::cycle(2, &mut r()));
    panics!(gen::complete(0, &mut r()));
    panics!(gen::torus_2d(2, 5, &mut r()));
    panics!(gen::hypercube(0, &mut r()));
    panics!(gen::circulant(10, &[6], &mut r())); // offset > n/2
    panics!(gen::barbell(1, 3, &mut r()));
    panics!(gen::path_of_cliques(0, 3, &mut r()));
    panics!(gen::broom(0, 3, &mut r()));
    panics!(gen::snake_torus(2, 2, &mut r()));
}

#[test]
fn degenerate_sizes() {
    let mut r = gen::WeightRng::new(1);
    assert_eq!(gen::path(1, &mut r).num_edges(), 0);
    assert_eq!(gen::star(1, &mut r).num_edges(), 0);
    assert_eq!(gen::complete(2, &mut r).num_edges(), 1);
    assert_eq!(gen::grid_2d(1, 1, &mut r).num_nodes(), 1);
    assert_eq!(gen::caterpillar(1, 0, &mut r).num_nodes(), 1);
    assert_eq!(gen::cycle(3, &mut r).num_edges(), 3);
}

#[test]
fn graph_error_display() {
    let e = WeightedGraph::new(2, vec![(0, 0, 1)]).unwrap_err();
    assert_eq!(e, GraphError::SelfLoop { edge: 0 });
    assert!(e.to_string().contains("self-loop"));
    let e = WeightedGraph::new(1, vec![(0, 1, 1)]).unwrap_err();
    assert!(e.to_string().contains("n = 1"));
    let e = WeightedGraph::new(2, vec![(0, 1, 1), (1, 0, 1)]).unwrap_err();
    assert!(e.to_string().contains("duplicates"));
}

#[test]
fn analysis_on_pathological_shapes() {
    let mut r = gen::WeightRng::new(2);
    // Star: center eccentricity 1, leaf eccentricity 2.
    let star = gen::star(50, &mut r);
    assert_eq!(analysis::eccentricity(&star, 0), 1);
    assert_eq!(analysis::eccentricity(&star, 7), 2);
    // Single vertex: everything degenerate but defined.
    let one = WeightedGraph::new(1, vec![]).unwrap();
    assert_eq!(analysis::diameter_exact(&one), 0);
    assert_eq!(analysis::diameter_double_sweep(&one), 0);
    let (labels, count) = analysis::components(&one);
    assert_eq!((labels, count), (vec![0], 1));
    // Empty graph.
    let zero = WeightedGraph::new(0, vec![]).unwrap();
    assert_eq!(analysis::diameter_exact(&zero), 0);
    assert_eq!(analysis::components(&zero).1, 0);
}

#[test]
fn mst_weight_overflow_safe() {
    // Sum of near-max weights exceeds u64: total_weight must be exact in
    // u128.
    let edges = vec![(0usize, 1usize, u64::MAX), (1, 2, u64::MAX)];
    let g = WeightedGraph::new(3, edges).unwrap();
    let t = mst::kruskal(&g);
    assert_eq!(t.total_weight, 2 * u128::from(u64::MAX));
}

#[test]
fn snake_torus_has_long_mst_but_short_diameter() {
    let mut r = gen::WeightRng::new(3);
    let g = gen::snake_torus(8, 8, &mut r);
    let d = analysis::diameter_exact(&g);
    assert!(d <= 8, "torus diameter stays Θ(sqrt n), got {d}");
    // MST path diameter is n-1 = 63: measure on the MST subgraph.
    let t = mst::kruskal(&g);
    let tree_edges: Vec<_> = t
        .edges
        .iter()
        .map(|&e| {
            let (u, v) = g.endpoints(e);
            (u, v, 1)
        })
        .collect();
    let tree = WeightedGraph::new(64, tree_edges).unwrap();
    assert_eq!(analysis::diameter_exact(&tree), 63);
}

#[test]
fn bfs_parents_root_tiebreak_smallest() {
    // Diamond: 0-1, 0-2, 1-3, 2-3. From 0, vertex 3's parent must be 1
    // (smallest-id tie-break).
    let g = WeightedGraph::new(4, vec![(0, 1, 1), (0, 2, 1), (1, 3, 1), (2, 3, 1)]).unwrap();
    let p = analysis::bfs_parents(&g, 0);
    assert_eq!(p[3], Some(1));
}
