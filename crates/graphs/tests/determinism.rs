//! Golden-value determinism pins: exact `WeightRng` output streams and
//! generator edge lists for fixed seeds.
//!
//! Every benchmark table and every seeded test in this workspace assumes
//! that a seed fully determines a graph, on every platform and toolchain.
//! Silent RNG or generator drift would invalidate all recorded experiment
//! results without failing a single invariant test — so the exact values
//! are pinned here and drift fails loudly.
//!
//! Deliberate changes to the RNG or generators must regenerate these
//! constants via `cargo run -p dmst-graphs --example golden_dump`.

use dmst_graphs::generators as gen;

#[test]
fn weight_rng_stream_is_pinned() {
    let mut r = gen::WeightRng::new(42);
    let weights: Vec<u64> = (0..8).map(|_| r.weight()).collect();
    assert_eq!(weights, [741565, 159911, 278602, 344191, 38031, 868229, 218406, 800632]);
}

#[test]
fn index_stream_is_pinned() {
    let mut r = gen::WeightRng::new(42);
    let indices: Vec<usize> = (0..8).map(|_| r.index(1000)).collect();
    assert_eq!(indices, [741, 159, 278, 344, 38, 868, 218, 800]);
}

#[test]
fn weight_and_index_draw_from_one_stream() {
    // Interleaving weight() and index() consumes the same underlying
    // stream: pinning both orders guards against accidental re-seeding or
    // stream splitting inside WeightRng.
    let mut r = gen::WeightRng::new(42);
    assert_eq!(r.weight(), 741565);
    assert_eq!(r.index(1000), 159);
    assert_eq!(r.weight(), 278602);
}

#[test]
fn random_tree_edges_are_pinned() {
    let tree = gen::random_tree(6, &mut gen::WeightRng::new(3));
    assert_eq!(
        tree.edges(),
        [(0, 1, 636223), (1, 2, 135146), (1, 3, 888719), (0, 4, 491063), (1, 5, 888530)]
    );
}

#[test]
fn random_connected_edges_are_pinned() {
    // Structure (tree + chords, including the rejection loop) and weights.
    let g = gen::random_connected(8, 4, &mut gen::WeightRng::new(7));
    assert_eq!(
        g.edges(),
        [
            (0, 1, 106695),
            (0, 2, 344443),
            (2, 3, 423773),
            (2, 4, 902540),
            (2, 5, 960330),
            (1, 6, 76682),
            (3, 7, 407045),
            (1, 2, 901846),
            (0, 3, 415032),
            (4, 7, 971136),
            (5, 6, 54241)
        ]
    );
}

#[test]
fn deterministic_structure_with_weights_is_pinned() {
    let p = gen::path(4, &mut gen::WeightRng::new(0));
    assert_eq!(p.edges(), [(0, 1, 883311), (1, 2, 431528), (2, 3, 26434)]);
}

#[test]
fn snake_torus_weighting_is_pinned() {
    // The snake weighting mixes deterministic ranks (1..n-1 along the
    // boustrophedon path) with RNG-drawn heavy weights for off-path edges.
    let s = gen::snake_torus(3, 3, &mut gen::WeightRng::new(5));
    assert_eq!(
        s.edges(),
        [
            (0, 1, 1),
            (0, 3, 91),
            (1, 2, 2),
            (1, 4, 94),
            (2, 0, 91),
            (2, 5, 3),
            (3, 4, 5),
            (3, 6, 6),
            (4, 5, 4),
            (4, 7, 98),
            (5, 3, 91),
            (5, 8, 97),
            (6, 7, 7),
            (6, 0, 91),
            (7, 8, 8),
            (7, 1, 96),
            (8, 6, 98),
            (8, 2, 91)
        ]
    );
}

#[test]
fn generators_are_reproducible_across_calls() {
    // Same seed, same graph; different seed, different graph — over every
    // stochastic generator (the fixed-structure ones are covered by the
    // pinned lists above).
    for seed in [0u64, 1, 99] {
        let a = gen::random_connected(30, 45, &mut gen::WeightRng::new(seed));
        let b = gen::random_connected(30, 45, &mut gen::WeightRng::new(seed));
        assert_eq!(a, b, "seed {seed} not reproducible");
        let t1 = gen::random_tree(30, &mut gen::WeightRng::new(seed));
        let t2 = gen::random_tree(30, &mut gen::WeightRng::new(seed));
        assert_eq!(t1, t2);
    }
    let a = gen::random_connected(30, 45, &mut gen::WeightRng::new(0));
    let b = gen::random_connected(30, 45, &mut gen::WeightRng::new(1));
    assert_ne!(a, b, "different seeds must differ");
}
