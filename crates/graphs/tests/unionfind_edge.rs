//! Edge-case tests for `UnionFind`: singletons, self-unions, idempotence,
//! path compression (observable via `depth`), and adversarial union orders.

use dmst_graphs::UnionFind;

#[test]
fn singleton_structure() {
    let mut uf = UnionFind::new(1);
    assert_eq!(uf.len(), 1);
    assert!(!uf.is_empty());
    assert_eq!(uf.num_sets(), 1);
    assert_eq!(uf.find(0), 0);
    assert_eq!(uf.depth(0), 0);
    assert!(uf.same(0, 0));
    // Self-union is a no-op, not an error.
    assert!(!uf.union(0, 0));
    assert_eq!(uf.num_sets(), 1);
}

#[test]
fn self_union_never_changes_set_count() {
    let mut uf = UnionFind::new(10);
    for x in 0..10 {
        assert!(!uf.union(x, x));
    }
    assert_eq!(uf.num_sets(), 10);
}

#[test]
fn union_is_idempotent_and_symmetric() {
    let mut uf = UnionFind::new(4);
    assert!(uf.union(0, 1));
    assert!(!uf.union(1, 0));
    assert!(!uf.union(0, 1));
    assert_eq!(uf.num_sets(), 3);
    assert!(uf.same(1, 0) && uf.same(0, 1));
}

#[test]
fn full_path_compression_flattens_chains() {
    // Build the deepest tree union-by-rank permits: repeatedly join equal
    // -rank trees so ranks grow to log2(n).
    let n = 1 << 10;
    let mut uf = UnionFind::new(n);
    let mut stride = 1;
    while stride < n {
        for base in (0..n).step_by(2 * stride) {
            uf.union(base, base + stride);
        }
        stride *= 2;
    }
    assert_eq!(uf.num_sets(), 1);
    let deepest = (0..n).max_by_key(|&x| uf.depth(x)).unwrap();
    assert!(uf.depth(deepest) >= 2, "construction failed to create depth");
    // Path halving: every find at least halves the path, so O(log depth)
    // repeated finds drive the queried element to depth <= 1.
    let root = uf.find(deepest);
    for _ in 0..16 {
        uf.find(deepest);
    }
    assert!(uf.depth(deepest) <= 1, "path not compressed: depth {}", uf.depth(deepest));
    assert_eq!(uf.find(deepest), root, "compression must not change the root");
    assert_eq!(uf.num_sets(), 1, "compression must not change set structure");
}

#[test]
fn compression_preserves_all_memberships() {
    let n = 64;
    let mut uf = UnionFind::new(n);
    for i in 0..n - 1 {
        uf.union(i, i + 1);
    }
    // Record membership before heavy compression, re-check after.
    let root = uf.find(0);
    for x in 0..n {
        assert_eq!(uf.find(x), root);
    }
    for x in 0..n {
        assert!(uf.depth(x) <= 2, "element {x} left deep after global find pass");
    }
}

#[test]
fn adversarial_union_orders_agree_on_components() {
    // Same edge set, three different orders: identical partition.
    let edges = [(0usize, 1usize), (2, 3), (4, 5), (1, 2), (5, 6), (8, 9)];
    let mut orders = vec![edges.to_vec(), edges.iter().rev().copied().collect::<Vec<_>>()];
    let mut interleaved = edges.to_vec();
    interleaved.swap(0, 3);
    interleaved.swap(1, 4);
    orders.push(interleaved);
    let mut partitions = Vec::new();
    for order in orders {
        let mut uf = UnionFind::new(10);
        for (a, b) in order {
            uf.union(a, b);
        }
        let repr: Vec<usize> = (0..10).map(|x| uf.find(x)).collect();
        let canon: Vec<Vec<usize>> =
            (0..10).map(|x| (0..10).filter(|&y| repr[y] == repr[x]).collect()).collect();
        partitions.push((uf.num_sets(), canon));
    }
    assert_eq!(partitions[0], partitions[1]);
    assert_eq!(partitions[0], partitions[2]);
    assert_eq!(partitions[0].0, 4); // {0..=3}, {4..=6}, {7}, {8,9}
}

#[test]
fn empty_structure_is_consistent() {
    let uf = UnionFind::new(0);
    assert!(uf.is_empty());
    assert_eq!(uf.len(), 0);
    assert_eq!(uf.num_sets(), 0);
}
