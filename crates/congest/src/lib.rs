//! # congest-sim — a deterministic synchronous `CONGEST(b log n)` simulator
//!
//! This crate is the substrate for the reproduction of Elkin's deterministic
//! distributed MST algorithm (PODC 2017). It models the synchronous
//! message-passing network of the paper's Section 2:
//!
//! * Every vertex of the communication graph hosts a processor (a
//!   [`NodeProgram`] state machine).
//! * Computation proceeds in **synchronous rounds**. In each round every node
//!   receives the messages sent to it in the previous round, performs local
//!   computation, and sends messages to its neighbors.
//! * Every edge carries, per direction per round, at most `b` *unit messages*
//!   of `O(log n)` bits each. A unit message holds up to
//!   [`RunConfig::words_per_unit`] *words*, where one word is a single
//!   `O(log n)`-bit quantity (a vertex identity or an edge weight). This is
//!   the "`O(1)` edge weights and/or identity numbers" formulation the paper
//!   gives as an alternative to bit-counting.
//!
//! The simulator is fully deterministic: the quantities the paper bounds —
//! **rounds** and **messages** — are exactly what [`RunStats`] reports, so a
//! run is a measurement, not an approximation. Execution may be sequential
//! or sharded across worker threads ([`RunConfig::shards`]); the per-port
//! FIFO merge order makes the results bit-identical either way, so
//! parallelism is purely a wallclock knob.
//!
//! ## Quick example
//!
//! ```
//! use congest_sim::{Message, Network, NodeInfo, NodeProgram, RoundCtx, RunConfig, Topology};
//!
//! /// A trivial broadcast: node 0 floods a token; everyone halts on receipt.
//! #[derive(Clone, Debug)]
//! struct Token;
//! impl Message for Token {
//!     fn encode(&self, out: &mut congest_sim::WireWriter<'_>) { out.word(0) }
//!     fn decode(r: &mut congest_sim::WireReader<'_>) -> Self { r.word(); Token }
//! }
//!
//! struct Flood { seen: bool, origin: bool }
//! impl NodeProgram for Flood {
//!     type Msg = Token;
//!     fn on_round(&mut self, ctx: &mut RoundCtx<'_, Token>) {
//!         let fire = (self.origin || !ctx.inbox().is_empty()) && !self.seen;
//!         if fire {
//!             self.seen = true;
//!             for p in 0..ctx.degree() {
//!                 ctx.send(p, Token);
//!             }
//!         }
//!     }
//!     fn is_done(&self) -> bool { self.seen }
//! }
//!
//! # fn main() -> Result<(), congest_sim::SimError> {
//! let topo = Topology::new(3, &[(0, 1, 1), (1, 2, 1)])?;
//! let mut net = Network::new(topo, |info: NodeInfo<'_>| Flood {
//!     seen: false,
//!     origin: info.id == 0,
//! });
//! let stats = net.run(&RunConfig::default())?;
//! assert!(net.nodes().iter().all(|n| n.seen));
//! assert_eq!(stats.messages, 4); // 0->1, then 1->0 and 1->2, then 2->1
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod error;
mod message;
mod network;
mod stats;
mod topology;

pub use config::{CapacityMode, RunConfig, UNIT_WORDS};
pub use error::SimError;
pub use message::{Message, WireReader, WireWriter};
pub use network::{Network, NodeInfo, NodeProgram, RoundCtx};
pub use stats::{RunStats, TagStats};
pub use topology::{EdgeId, NodeId, Port, PortId, Topology};
