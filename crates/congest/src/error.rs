//! Simulation errors.

use std::error::Error;
use std::fmt;

use crate::topology::NodeId;

/// Errors raised while constructing a topology or running a simulation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimError {
    /// The edge list did not describe a simple graph on `n` nodes.
    InvalidTopology(String),
    /// In [`CapacityMode::Strict`](crate::CapacityMode::Strict), a node sent
    /// more words over one edge direction in one round than the budget
    /// allows. This indicates a protocol bug, not congestion.
    CapacityExceeded {
        /// Round in which the violation occurred.
        round: u64,
        /// Sender.
        from: NodeId,
        /// Receiver.
        to: NodeId,
        /// Words enqueued on this direction this round, including the
        /// violating message.
        words: u64,
        /// Allowed words per direction per round.
        capacity: u64,
    },
    /// The run exceeded [`RunConfig::max_rounds`](crate::RunConfig).
    MaxRoundsExceeded {
        /// The configured cap.
        max_rounds: u64,
        /// Nodes still not done when the cap was hit.
        pending_nodes: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidTopology(msg) => write!(f, "invalid topology: {msg}"),
            SimError::CapacityExceeded { round, from, to, words, capacity } => write!(
                f,
                "bandwidth exceeded at round {round} on edge {from} -> {to}: \
                 {words} words sent, {capacity} allowed"
            ),
            SimError::MaxRoundsExceeded { max_rounds, pending_nodes } => write!(
                f,
                "simulation did not terminate within {max_rounds} rounds \
                 ({pending_nodes} nodes still running)"
            ),
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SimError::CapacityExceeded { round: 3, from: 1, to: 2, words: 9, capacity: 8 };
        let s = e.to_string();
        assert!(s.contains("round 3"));
        assert!(s.contains("1 -> 2"));
    }
}
