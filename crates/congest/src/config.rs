//! Run-time configuration of a simulation.

/// Default number of words in one unit message.
///
/// A unit message in our protocols carries at most ~6 fields (a tag, a
/// weight, two endpoint ids, two fragment ids); 8 gives slack while
/// staying `O(1)` words = `O(log n)` bits. Protocol code that needs the
/// per-round word budget must derive it as `UNIT_WORDS * bandwidth` (or
/// call [`RunConfig::capacity_words`]) instead of re-stating the unit size
/// as a literal — the `dmst-analysis` `drifting-literal` rule enforces
/// this.
pub const UNIT_WORDS: u32 = 8;

/// What to do when a round's sends over one edge direction exceed the
/// bandwidth budget.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum CapacityMode {
    /// Abort the run with [`SimError::CapacityExceeded`](crate::SimError).
    /// This is the faithful CONGEST semantics and the default: a protocol
    /// that oversends is *wrong*, not slow.
    #[default]
    Strict,
    /// Count words but deliver everything. Useful for ablations that
    /// deliberately break the model (e.g. measuring how many messages a
    /// naive variant *would* need).
    Unchecked,
}

/// Configuration for [`Network::run`](crate::Network::run).
#[derive(Clone, Debug)]
pub struct RunConfig {
    /// The `b` of `CONGEST(b log n)`: how many unit messages each edge
    /// direction carries per round. The standard CONGEST model is `b = 1`.
    pub bandwidth: u32,
    /// Words per unit message. One word is one `O(log n)`-bit quantity; the
    /// paper's model allows a message to carry "`O(1)` edge weights and/or
    /// identity numbers", so a unit message is a small constant number of
    /// words. The per-edge-direction budget per round is
    /// `bandwidth * words_per_unit` words.
    pub words_per_unit: u32,
    /// Enforcement policy for the bandwidth budget.
    pub capacity: CapacityMode,
    /// Hard cap on rounds; exceeding it aborts with
    /// [`SimError::MaxRoundsExceeded`](crate::SimError). Guards against
    /// non-terminating protocols in tests.
    pub max_rounds: u64,
    /// Number of executor shards (worker threads). `1` (the default) runs
    /// the whole network on the calling thread; `0` asks for one shard per
    /// available CPU. The shard count is a *performance* knob only: results
    /// — [`RunStats`](crate::RunStats) and final node states — are
    /// bit-identical for every value (see the executor docs on the per-port
    /// FIFO determinism contract).
    pub shards: u32,
    /// Whether the executor may honor
    /// [`NodeProgram::next_wake`](crate::NodeProgram::next_wake) hints and
    /// skip idle nodes/rounds.
    /// `false` steps every node in every round (legacy behavior); with
    /// *correct* hints the results are identical either way, which the
    /// determinism proptests exploit to cross-check the hint contract.
    pub wake_hints: bool,
}

impl RunConfig {
    /// Words available per edge direction per round.
    #[inline]
    pub fn capacity_words(&self) -> u64 {
        u64::from(self.bandwidth) * u64::from(self.words_per_unit)
    }

    /// Standard CONGEST (`b = 1`) with the default unit-message width.
    pub fn congest() -> Self {
        Self::default()
    }

    /// `CONGEST(b log n)` with the given `b`.
    ///
    /// # Panics
    ///
    /// Panics if `b == 0`.
    pub fn congest_b(b: u32) -> Self {
        assert!(b > 0, "bandwidth must be positive");
        Self { bandwidth: b, ..Self::default() }
    }
}

impl Default for RunConfig {
    fn default() -> Self {
        Self {
            bandwidth: 1,
            words_per_unit: UNIT_WORDS,
            capacity: CapacityMode::Strict,
            max_rounds: 10_000_000,
            shards: 1,
            wake_hints: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_words_scales_with_b() {
        assert_eq!(RunConfig::congest().capacity_words(), 8);
        assert_eq!(RunConfig::congest_b(4).capacity_words(), 32);
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_rejected() {
        let _ = RunConfig::congest_b(0);
    }
}
