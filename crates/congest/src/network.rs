//! The round-driven network executor.
//!
//! The executor advances the network in synchronous rounds over flat arena
//! state indexed by the topology's CSR port numbering: one `u64` word ring
//! per *directed edge* buffers in-flight messages in their wire encoding
//! (no `Msg` values are stored — sends [`Message::encode`] into the ring,
//! drains [`Message::decode`] back out), one stamped [`EdgeMeter`] per
//! directed edge meters bandwidth, and per-node stamps track mail,
//! termination, and stage-tag transitions incrementally. Per-round cost is
//! proportional to the nodes that act and the messages that move — never to
//! `n` itself.
//!
//! # Sharded execution
//!
//! [`RunConfig::shards`] `> 1` partitions nodes into contiguous id ranges,
//! one worker thread per extra shard. Each shard exclusively owns its nodes
//! and the rings of its *inbound* ports; cross-shard messages travel as
//! per-round *word blocks* over channels — length-framed encoded messages
//! that delivery routes by header alone and appends to the destination
//! rings without decoding. Because every ring has exactly one writer (one directed edge, one
//! sender) and a receiver drains its rings in ascending-neighbor order, each
//! inbox comes out exactly as the sequential executor builds it — messages
//! grouped per sender in FIFO blocks, senders in ascending id order — no
//! matter how the shard batches interleave. Results are therefore
//! bit-identical for every shard count; the dual-executor proptests in
//! `tests/` hold the engine to that contract. (After an *error* return the
//! node states of shards past the offending one may have advanced further
//! than under sequential execution; successful runs are always identical.)
//!
//! # Idle skipping
//!
//! [`NodeProgram::next_wake`] lets a program promise it will not act
//! spontaneously before a given round. The executor then steps a node only
//! when mail arrives or its wake round is due, and fast-forwards whole
//! rounds when the network is globally idle, attributing the skipped rounds
//! to the current stage census exactly as if they had been executed. The
//! default hint (`Some(0)`) reproduces the legacy step-every-round behavior.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::mpsc::{self, Receiver, Sender};

use crate::config::{CapacityMode, RunConfig};
use crate::error::SimError;
use crate::message::{Message, WireReader, WireWriter};
use crate::stats::{RunStats, TagStats};
use crate::topology::{NodeId, Port, PortId, Topology};

/// What a node is told at construction time: its identity and its local
/// ports (incident edges with weights). This is the *clean network model*:
/// neighbor identities are not included; protocols learn them by talking.
#[derive(Clone, Copy, Debug)]
pub struct NodeInfo<'a> {
    /// This node's identity.
    pub id: NodeId,
    /// This node's incident ports (neighbor field is for instrumentation
    /// only; see [`Port`]).
    pub ports: &'a [Port],
}

/// A per-node protocol state machine.
///
/// The simulator calls [`on_round`](NodeProgram::on_round) for every node in
/// every round, passing the messages that arrived at the start of the round.
/// Messages sent during a round are delivered at the start of the next round
/// (synchronous CONGEST semantics). A program that implements
/// [`next_wake`](NodeProgram::next_wake) may be *skipped* in rounds where it
/// promised to be a no-op; the observable behavior is identical either way.
pub trait NodeProgram {
    /// The protocol's message type.
    type Msg: Message;

    /// Executes one synchronous round: read [`RoundCtx::inbox`], update local
    /// state, and [`RoundCtx::send`] messages for next-round delivery.
    fn on_round(&mut self, ctx: &mut RoundCtx<'_, Self::Msg>);

    /// Local termination flag. The simulation halts when every node reports
    /// `true` *and* no messages are in flight. A node may be reawakened by a
    /// later message even after reporting done.
    fn is_done(&self) -> bool;

    /// Which protocol stage this node is currently in, as a short static
    /// tag (e.g. `"a"`, `"b"`, ...). The network attributes each executed
    /// round to the smallest non-empty tag reported across all nodes
    /// ([`RunStats::rounds_by_stage`]), so a round counts toward a stage
    /// until the *last* node has left it. The default (empty string)
    /// disables attribution for this node.
    fn stage_tag(&self) -> &'static str {
        ""
    }

    /// Wake hint: the earliest round strictly after `after` (the round just
    /// executed for this node) at which this node might act *spontaneously*
    /// — i.e. do anything other than nothing when its inbox is empty.
    ///
    /// Contract: if this returns `Some(w)` (with `w > after`), then calling
    /// [`on_round`](NodeProgram::on_round) with an empty inbox in any round
    /// `r` with `after < r < w` must leave the node's entire observable
    /// state unchanged and send nothing. `None` promises the node is purely
    /// message-driven until further notice. Arrival of a message always
    /// wakes a node regardless of the hint, and a hinted node may still be
    /// stepped *earlier* than its hint (a stale earlier hint is allowed to
    /// fire; by the same contract such a step is a no-op).
    ///
    /// The default, `Some(0)`, requests a step every round — the legacy
    /// behavior, always safe. Returning accurate hints is purely a
    /// performance optimization; the executors cross-check hinted and
    /// unhinted runs for bit-identical results.
    fn next_wake(&self, after: u64) -> Option<u64> {
        let _ = after;
        Some(0)
    }
}

/// Per-round execution context handed to [`NodeProgram::on_round`].
#[derive(Debug)]
pub struct RoundCtx<'a, M: Message> {
    round: u64,
    id: NodeId,
    ports: &'a [Port],
    inbox: &'a [(PortId, M)],
    outbox: &'a mut Vec<(PortId, M)>,
}

impl<'a, M: Message> RoundCtx<'a, M> {
    /// The current round number (0-based).
    #[inline]
    pub fn round(&self) -> u64 {
        self.round
    }

    /// This node's identity.
    #[inline]
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Number of incident ports (the node's degree).
    #[inline]
    pub fn degree(&self) -> usize {
        self.ports.len()
    }

    /// Weight of the edge behind port `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    #[inline]
    pub fn weight(&self, p: PortId) -> u64 {
        self.ports[p].weight
    }

    /// Messages that arrived this round, as `(port, message)` pairs in
    /// deterministic order: grouped per sending neighbor in contiguous FIFO
    /// blocks, neighbors in ascending node-id order (the order the
    /// sequential executor produces by stepping senders in id order).
    #[inline]
    pub fn inbox(&self) -> &[(PortId, M)] {
        self.inbox
    }

    /// Sends `msg` over port `p`, to be delivered next round. Bandwidth
    /// accounting happens at the network level.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    #[inline]
    pub fn send(&mut self, p: PortId, msg: M) {
        assert!(p < self.ports.len(), "send on nonexistent port {p}");
        self.outbox.push((p, msg));
    }
}

/// Messages crossing a shard boundary in one round, already encoded: a
/// flat word block of `[header, payload...]*` frames in sender-step
/// order. The header word holds the destination global directed port in
/// bits `0..32` and the payload length in words in bits `32..64`, so
/// delivery can route each frame without decoding it.
type WordBatch = Vec<u64>;

/// Builds one batch frame header (see [`WordBatch`]).
#[inline]
fn frame_header(dest_port: u32, len: usize) -> u64 {
    u64::from(dest_port) | ((len as u64) << 32)
}

/// Receiver-owned wire buffer for one inbound directed edge: encoded
/// message words appended in sender FIFO order, decoded back into
/// messages when the owning node drains its ports. `head` is the read
/// cursor during a drain; between rounds the ring is empty and `head`
/// is 0. No `Msg` values are ever stored — the ring *is* the wire.
#[derive(Default)]
struct WordRing {
    words: Vec<u64>,
    head: usize,
}

/// Executor knobs shared by every shard, resolved once per run.
#[derive(Clone, Copy)]
struct EngineCfg {
    capacity: u64,
    strict: bool,
    wake_hints: bool,
    /// Nodes per shard: `shard_of(v) = v / chunk`.
    chunk: usize,
    num_shards: usize,
}

/// What a shard reports to the coordinator after executing one round.
struct RoundSummary {
    round_messages: u64,
    done: u64,
    census: Vec<(&'static str, u64)>,
    next_due: Option<u64>,
    error: Option<SimError>,
}

/// Run-total counters a shard accumulates locally and surrenders at halt.
#[derive(Default)]
struct ShardTotals {
    messages: u64,
    words: u64,
    wire_words: u64,
    peak_edge_words: u64,
    by_tag: Vec<(&'static str, TagStats)>,
}

enum Decision {
    Round(u64),
    Halt,
}

/// Channel ends connecting one shard to every other shard: `to`/`from`
/// carry round word batches, `ret_*` recycle the emptied `Vec`s
/// backwards. Entry `s` talks to shard `s`; the self entry is `None`.
/// Batches are plain `u64` blocks, so the links are independent of the
/// protocol's message type.
struct Links {
    to: Vec<Option<Sender<WordBatch>>>,
    from: Vec<Option<Receiver<WordBatch>>>,
    ret_to: Vec<Option<Sender<WordBatch>>>,
    ret_from: Vec<Option<Receiver<WordBatch>>>,
}

impl Links {
    fn empty(num_shards: usize) -> Self {
        Self {
            to: (0..num_shards).map(|_| None).collect(),
            from: (0..num_shards).map(|_| None).collect(),
            ret_to: (0..num_shards).map(|_| None).collect(),
            ret_from: (0..num_shards).map(|_| None).collect(),
        }
    }
}

fn bump_census(census: &mut Vec<(&'static str, u64)>, tag: &'static str, up: bool) {
    match census.binary_search_by(|e| e.0.cmp(tag)) {
        Ok(i) => {
            if up {
                census[i].1 += 1;
            } else {
                census[i].1 -= 1;
            }
        }
        Err(i) => {
            debug_assert!(up, "decrement of an absent census tag");
            census.insert(i, (tag, 1));
        }
    }
}

fn bump_tag_totals(
    tags: &mut Vec<(&'static str, TagStats)>,
    tag: &'static str,
    words: u64,
    wire_words: u64,
) {
    match tags.binary_search_by(|e| e.0.cmp(tag)) {
        Ok(i) => {
            tags[i].1.messages += 1;
            tags[i].1.words += words;
            tags[i].1.wire_words += wire_words;
        }
        Err(i) => tags.insert(i, (tag, TagStats { messages: 1, words, wire_words })),
    }
}

/// The earliest non-empty stage tag any shard currently reports.
fn current_stage(censuses: &[Vec<(&'static str, u64)>]) -> Option<&'static str> {
    censuses.iter().flatten().filter(|e| e.1 > 0).map(|e| e.0).min()
}

/// One contiguous slice of the network: nodes `lo..lo + nodes.len()` plus
/// every per-port and per-node arena for that range.
struct Shard<'a, P: NodeProgram> {
    idx: usize,
    lo: usize,
    /// First global directed-port index owned by this shard.
    plo: usize,
    nodes: &'a mut [P],
    topo: &'a Topology,
    cfg: EngineCfg,
    /// Encoded-word FIFO ring per owned inbound directed port, indexed
    /// `g - plo`.
    rings: Vec<WordRing>,
    /// Bandwidth meter per owned outbound directed port.
    meters: Vec<EdgeMeter>,
    /// Per owned node: round stamp of the last mail delivery.
    mail: Vec<u64>,
    /// Nodes (global ids) with mail in the round being assembled.
    touched: Vec<NodeId>,
    actives: Vec<NodeId>,
    /// Wake heap, `(due round, node)` with lazy deletion: stale earlier
    /// entries pop as no-op steps (guaranteed harmless by the
    /// [`NodeProgram::next_wake`] contract). Only *far* wakes (beyond the
    /// next round) live here; the overwhelmingly common "step me again next
    /// round" hint takes the O(1) [`Self::due`] path instead, so a dense
    /// always-active workload never pays the heap's O(log n) per step.
    wake: BinaryHeap<Reverse<(u64, NodeId)>>,
    /// Nodes due at the next executed round, whatever its number (a wake
    /// for round + 1 stays valid across a fast-forward: firing at a later
    /// round is exactly the heap's `w <= round` pop rule).
    due: Vec<NodeId>,
    done: u64,
    prev_done: Vec<bool>,
    prev_tag: Vec<&'static str>,
    /// Non-empty stage tags with live node counts, sorted by tag.
    census: Vec<(&'static str, u64)>,
    totals: ShardTotals,
    inbox: Vec<(PortId, P::Msg)>,
    outbox: Vec<(PortId, P::Msg)>,
    /// Outgoing encoded batches per destination shard (self entry
    /// delivered locally).
    out: Vec<WordBatch>,
}

/// Per-round bandwidth accumulator for one outbound directed edge. The
/// stamp makes resets lazy: a slot is only zeroed when the edge first
/// sends in a round, so idle edges cost nothing.
#[derive(Clone, Copy)]
struct EdgeMeter {
    /// Round this meter was last charged in (`u64::MAX` = never).
    round: u64,
    /// Declared words charged to this edge direction during that round;
    /// the strict capacity check runs against this accumulator.
    charged: u64,
}

impl EdgeMeter {
    const IDLE: EdgeMeter = EdgeMeter { round: u64::MAX, charged: 0 };
}

impl<'a, P: NodeProgram> Shard<'a, P> {
    fn new(idx: usize, lo: usize, nodes: &'a mut [P], topo: &'a Topology, cfg: EngineCfg) -> Self {
        let count = nodes.len();
        let plo = topo.port_lo(lo);
        let phi = topo.port_lo(lo + count);
        let mut done = 0u64;
        let mut prev_done = Vec::with_capacity(nodes.len());
        let mut prev_tag = Vec::with_capacity(nodes.len());
        let mut census: Vec<(&'static str, u64)> = Vec::new();
        for node in nodes.iter() {
            let d = node.is_done();
            prev_done.push(d);
            done += u64::from(d);
            let t = node.stage_tag();
            prev_tag.push(t);
            if !t.is_empty() {
                bump_census(&mut census, t, true);
            }
        }
        Self {
            idx,
            lo,
            plo,
            nodes,
            topo,
            cfg,
            rings: (plo..phi).map(|_| WordRing::default()).collect(),
            meters: vec![EdgeMeter::IDLE; phi - plo],
            mail: vec![u64::MAX; count],
            touched: Vec::new(),
            actives: Vec::new(),
            wake: BinaryHeap::new(),
            // Every node gets an initial step at the first executed round,
            // like the legacy executor; its own hints take over from there.
            due: (lo..lo + count).collect(),
            done,
            prev_done,
            prev_tag,
            census,
            totals: ShardTotals::default(),
            inbox: Vec::new(),
            outbox: Vec::new(),
            out: (0..cfg.num_shards).map(|_| Vec::new()).collect(),
        }
    }

    /// Appends a batch of inbound encoded frames (for the round about to
    /// execute) to the destination rings, marking receivers as mailed.
    /// Frames are routed by header word alone — payloads are copied into
    /// the rings without decoding. The batch is emptied for recycling.
    fn deliver(&mut self, round: u64, batch: &mut WordBatch) {
        let mut i = 0;
        while i < batch.len() {
            let header = batch[i];
            let g = (header & 0xFFFF_FFFF) as usize;
            let len = (header >> 32) as usize;
            let v = self.topo.port_node(g);
            let ni = v - self.lo;
            if self.mail[ni] != round {
                self.mail[ni] = round;
                self.touched.push(v);
            }
            // dmst-analysis:allow(panic-hygiene) -- g >= plo by shard ownership; frame bounds produced by our own send path
            self.rings[g - self.plo].words.extend_from_slice(&batch[i + 1..i + 1 + len]);
            i += 1 + len;
        }
        batch.clear();
    }

    /// Executes one round over this shard's active set.
    fn execute(&mut self, round: u64) -> RoundSummary {
        self.actives.clear();
        self.actives.append(&mut self.touched);
        self.actives.append(&mut self.due);
        while let Some(&Reverse((w, v))) = self.wake.peek() {
            if w > round {
                break;
            }
            self.wake.pop();
            self.actives.push(v);
        }
        self.actives.sort_unstable();
        self.actives.dedup();

        let mut round_messages = 0u64;
        let mut error = None;

        'step: for i in 0..self.actives.len() {
            let v = self.actives[i];
            let ni = v - self.lo;
            let base = self.topo.port_lo(v);
            self.inbox.clear();
            if self.mail[ni] == round {
                for &p in self.topo.drain_order(v) {
                    // dmst-analysis:allow(panic-hygiene) -- port base of an owned node; in range by construction
                    let ring = &mut self.rings[base + p as usize - self.plo];
                    debug_assert_eq!(ring.head, 0, "ring left mid-drain");
                    while ring.head < ring.words.len() {
                        let used;
                        {
                            let mut r = WireReader::new(&ring.words[ring.head..]);
                            self.inbox.push((p as PortId, P::Msg::decode(&mut r)));
                            debug_assert!(r.consumed() >= 1, "decode consumed no words");
                            used = r.consumed().max(1);
                        }
                        ring.head += used;
                    }
                    ring.words.clear();
                    ring.head = 0;
                }
            }
            self.outbox.clear();
            let mut ctx = RoundCtx {
                round,
                id: v,
                ports: self.topo.ports(v),
                inbox: &self.inbox,
                outbox: &mut self.outbox,
            };
            self.nodes[ni].on_round(&mut ctx);

            for (p, msg) in self.outbox.drain(..) {
                let g = base + p;
                debug_assert!(
                    msg.words() >= 1,
                    "Message::words() returned 0 for tag {:?} (node {v}, round {round}); \
                     every message costs at least one word — see congest::Message::words",
                    msg.tag(),
                );
                let words = u64::from(msg.words().max(1));
                // dmst-analysis:allow(panic-hygiene) -- sender-side port of an owned node; in range by construction
                let slot = &mut self.meters[g - self.plo];
                if slot.round != round {
                    *slot = EdgeMeter { round, charged: 0 };
                }
                slot.charged += words;
                if self.cfg.strict && slot.charged > self.cfg.capacity {
                    error = Some(SimError::CapacityExceeded {
                        round,
                        from: v,
                        to: (self.topo.route(g) >> 32) as NodeId,
                        words: slot.charged,
                        capacity: self.cfg.capacity,
                    });
                    break 'step;
                }
                self.totals.peak_edge_words = self.totals.peak_edge_words.max(slot.charged);

                // Encode straight into the destination batch, behind a
                // placeholder header patched once the length is known.
                let dest = self.topo.peer(g);
                let dest_shard = self.topo.port_node(dest) / self.cfg.chunk;
                let batch = &mut self.out[dest_shard];
                let header = batch.len();
                batch.push(0);
                let mut wire = {
                    let mut w = WireWriter::new(batch);
                    msg.encode(&mut w);
                    w.len()
                };
                if wire == 0 {
                    // Mirror of the words() >= 1 clamp: a release-mode
                    // encoder that wrote nothing still ships one pad word,
                    // so the ring never desyncs.
                    batch.push(0);
                    wire = 1;
                }
                debug_assert_eq!(
                    wire as u64,
                    words,
                    "Message::encode wrote {wire} words but words() declared {words} \
                     for tag {:?} (node {v}, round {round}); the encoded length contract \
                     is exact — see congest::Message::words",
                    msg.tag(),
                );
                batch[header] = frame_header(dest as u32, wire);

                bump_tag_totals(&mut self.totals.by_tag, msg.tag(), words, wire as u64);
                self.totals.messages += 1;
                self.totals.words += words;
                self.totals.wire_words += wire as u64;
                round_messages += 1;
            }

            let node = &self.nodes[ni];
            let d = node.is_done();
            if d != self.prev_done[ni] {
                self.prev_done[ni] = d;
                if d {
                    self.done += 1;
                } else {
                    self.done -= 1;
                }
            }
            let t = node.stage_tag();
            if t != self.prev_tag[ni] {
                if !self.prev_tag[ni].is_empty() {
                    bump_census(&mut self.census, self.prev_tag[ni], false);
                }
                if !t.is_empty() {
                    bump_census(&mut self.census, t, true);
                }
                self.prev_tag[ni] = t;
            }
            let hint = if self.cfg.wake_hints { node.next_wake(round) } else { Some(round + 1) };
            if let Some(w) = hint {
                if w <= round + 1 {
                    self.due.push(v);
                } else {
                    self.wake.push(Reverse((w, v)));
                }
            }
        }

        RoundSummary {
            round_messages,
            done: self.done,
            census: self.census.clone(),
            next_due: if self.due.is_empty() {
                // Everything <= round was popped above, so the peek is the
                // true minimum over both wake structures.
                self.wake.peek().map(|&Reverse((w, _))| w)
            } else {
                Some(round + 1)
            },
            error,
        }
    }
}

/// One full round on one shard: deliver queued batches, execute, ship
/// outgoing batches. `primed` is false only before the shard's first
/// executed round (no peer has sent anything yet).
fn shard_round<P: NodeProgram>(
    shard: &mut Shard<'_, P>,
    links: &Links,
    round: u64,
    primed: bool,
) -> RoundSummary {
    let me = shard.idx;
    let mut own = std::mem::take(&mut shard.out[me]);
    shard.deliver(round, &mut own);
    shard.out[me] = own;
    if primed {
        for s in 0..links.from.len() {
            let Some(rx) = &links.from[s] else { continue };
            // dmst-analysis:allow(panic-hygiene) -- peer holds its sender until Halt; a closed channel is a bug
            let mut batch = rx.recv().expect("peer shard alive until halt");
            shard.deliver(round, &mut batch);
            if let Some(ret) = &links.ret_to[s] {
                let _ = ret.send(batch);
            }
        }
    }
    let summary = shard.execute(round);
    for s in 0..links.to.len() {
        let Some(tx) = &links.to[s] else { continue };
        let batch = std::mem::take(&mut shard.out[s]);
        // dmst-analysis:allow(panic-hygiene) -- receiver outlives every round of the scope; failure is a bug
        tx.send(batch).expect("peer shard alive until halt");
        if let Some(ret) = &links.ret_from[s] {
            if let Ok(recycled) = ret.try_recv() {
                shard.out[s] = recycled;
            }
        }
    }
    summary
}

fn worker_loop<P: NodeProgram>(
    mut shard: Shard<'_, P>,
    links: Links,
    decisions: Receiver<Decision>,
    summaries: Sender<RoundSummary>,
    totals: Sender<ShardTotals>,
) {
    let mut primed = false;
    while let Ok(Decision::Round(round)) = decisions.recv() {
        let summary = shard_round(&mut shard, &links, round, primed);
        primed = true;
        if summaries.send(summary).is_err() {
            return; // coordinator gone (panic unwinding elsewhere)
        }
    }
    let _ = totals.send(std::mem::take(&mut shard.totals));
}

/// A network of nodes executing a [`NodeProgram`] over a [`Topology`].
#[derive(Debug)]
pub struct Network<P: NodeProgram> {
    topo: Topology,
    nodes: Vec<P>,
}

impl<P: NodeProgram> Network<P> {
    /// Instantiates one program per node via `factory`, called in node-id
    /// order with that node's [`NodeInfo`].
    pub fn new<F>(topo: Topology, mut factory: F) -> Self
    where
        F: FnMut(NodeInfo<'_>) -> P,
    {
        let nodes = (0..topo.num_nodes())
            .map(|id| factory(NodeInfo { id, ports: topo.ports(id) }))
            .collect();
        Self { topo, nodes }
    }

    /// The topology this network runs on.
    #[inline]
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Read access to all node programs (e.g. to extract final states).
    #[inline]
    pub fn nodes(&self) -> &[P] {
        &self.nodes
    }

    /// Consumes the network, returning the node programs.
    pub fn into_nodes(self) -> Vec<P> {
        self.nodes
    }

    /// Runs rounds until quiescence (every node done, no messages in
    /// flight) or an error. See the module docs for the execution model;
    /// [`RunConfig::shards`] picks sequential vs. sharded execution with
    /// bit-identical results.
    ///
    /// # Errors
    ///
    /// * [`SimError::CapacityExceeded`] under [`CapacityMode::Strict`] when a
    ///   round oversubscribes an edge direction.
    /// * [`SimError::MaxRoundsExceeded`] when `config.max_rounds` is hit.
    pub fn run(&mut self, config: &RunConfig) -> Result<RunStats, SimError>
    where
        P: Send,
        P::Msg: Send,
    {
        let n = self.topo.num_nodes();
        if n == 0 {
            return Ok(RunStats::default());
        }
        let requested = match config.shards {
            0 => std::thread::available_parallelism().map_or(1, |p| p.get()),
            s => s as usize,
        };
        let chunk = n.div_ceil(requested.clamp(1, n));
        let num_shards = n.div_ceil(chunk);
        let cfg = EngineCfg {
            capacity: config.capacity_words(),
            strict: config.capacity == CapacityMode::Strict,
            wake_hints: config.wake_hints,
            chunk,
            num_shards,
        };

        let topo = &self.topo;
        let mut shards: Vec<Shard<'_, P>> = Vec::with_capacity(num_shards);
        {
            let mut rest: &mut [P] = &mut self.nodes;
            for s in 0..num_shards {
                let len = chunk.min(rest.len());
                let (head, tail) = rest.split_at_mut(len);
                rest = tail;
                shards.push(Shard::new(s, s * chunk, head, topo, cfg));
            }
        }

        // Cross-shard plumbing: batch + recycle channels per ordered pair,
        // decision/summary/totals channels per worker. With one shard the
        // links stay empty and no thread is spawned.
        let mut links: Vec<Links> = (0..num_shards).map(|_| Links::empty(num_shards)).collect();
        for a in 0..num_shards {
            for b in 0..num_shards {
                if a == b {
                    continue;
                }
                let (tx, rx) = mpsc::channel();
                links[a].to[b] = Some(tx);
                links[b].from[a] = Some(rx);
                let (rtx, rrx) = mpsc::channel();
                links[b].ret_to[a] = Some(rtx);
                links[a].ret_from[b] = Some(rrx);
            }
        }

        let mut done_total: u64 = shards.iter().map(|s| s.done).sum();
        let mut censuses: Vec<Vec<(&'static str, u64)>> =
            shards.iter().map(|s| s.census.clone()).collect();
        let mut next_dues: Vec<Option<u64>> = vec![Some(0); num_shards];
        let mut inflight: u64 = 0;
        let max_rounds = config.max_rounds;

        let mut shard_iter = shards.into_iter();
        // dmst-analysis:allow(panic-hygiene) -- num_shards >= 1 is asserted at partitioning
        let mut shard0 = shard_iter.next().expect("at least one shard");
        let mut links_iter = links.into_iter();
        // dmst-analysis:allow(panic-hygiene) -- same length as shards by construction
        let links0 = links_iter.next().expect("at least one shard");

        std::thread::scope(|scope| {
            let mut decision_txs = Vec::with_capacity(num_shards - 1);
            let mut summary_rxs = Vec::with_capacity(num_shards - 1);
            let mut totals_rxs = Vec::with_capacity(num_shards - 1);
            for (shard, link) in shard_iter.zip(links_iter) {
                let (dtx, drx) = mpsc::channel();
                let (stx, srx) = mpsc::channel();
                let (ttx, trx) = mpsc::channel();
                decision_txs.push(dtx);
                summary_rxs.push(srx);
                totals_rxs.push(trx);
                scope.spawn(move || worker_loop(shard, link, drx, stx, ttx));
            }

            let mut stats = RunStats::default();
            let mut round: u64 = 0;
            let mut primed = false;
            let outcome: Result<(), SimError> = loop {
                if inflight == 0 && done_total == n as u64 {
                    break Ok(());
                }
                if round >= max_rounds {
                    break Err(SimError::MaxRoundsExceeded {
                        max_rounds,
                        pending_nodes: (n as u64 - done_total) as usize,
                    });
                }
                if inflight == 0 {
                    // Globally idle: fast-forward to the earliest due wake
                    // (or the round cap), attributing the skipped rounds to
                    // the frozen stage census — nothing can transition while
                    // no node steps and no message is in flight.
                    let due = next_dues.iter().filter_map(|&d| d).min();
                    let target = due.unwrap_or(max_rounds).min(max_rounds);
                    if target > round {
                        if let Some(tag) = current_stage(&censuses) {
                            *stats.rounds_by_stage.entry(tag).or_insert(0) += target - round;
                        }
                        round = target;
                        continue;
                    }
                }

                for dtx in &decision_txs {
                    // dmst-analysis:allow(panic-hygiene) -- workers only exit after Halt; a dead worker is a bug
                    dtx.send(Decision::Round(round)).expect("worker alive");
                }
                let s0 = shard_round(&mut shard0, &links0, round, primed);
                primed = true;

                let mut round_messages = s0.round_messages;
                done_total = s0.done;
                next_dues[0] = s0.next_due;
                censuses[0] = s0.census;
                let mut error = s0.error;
                for (s, srx) in summary_rxs.iter().enumerate() {
                    // dmst-analysis:allow(panic-hygiene) -- worker sends one summary per Round decision
                    let summary = srx.recv().expect("worker alive");
                    round_messages += summary.round_messages;
                    done_total += summary.done;
                    // dmst-analysis:allow(panic-hygiene) -- slot s + 1 exists: next_dues holds num_shards entries
                    next_dues[s + 1] = summary.next_due;
                    // dmst-analysis:allow(panic-hygiene) -- slot s + 1 exists: censuses holds num_shards entries
                    censuses[s + 1] = summary.census;
                    if error.is_none() {
                        error = summary.error;
                    }
                }
                if let Some(e) = error {
                    break Err(e);
                }
                inflight = round_messages;
                stats.peak_round_messages = stats.peak_round_messages.max(round_messages);
                if let Some(tag) = current_stage(&censuses) {
                    *stats.rounds_by_stage.entry(tag).or_insert(0) += 1;
                }
                round += 1;
            };

            for dtx in &decision_txs {
                let _ = dtx.send(Decision::Halt);
            }
            let mut all_totals = vec![std::mem::take(&mut shard0.totals)];
            for trx in &totals_rxs {
                // dmst-analysis:allow(panic-hygiene) -- every worker sends its totals before exiting
                all_totals.push(trx.recv().expect("worker exits cleanly"));
            }
            outcome.map(|()| {
                for t in all_totals {
                    stats.messages += t.messages;
                    stats.words += t.words;
                    stats.wire_words += t.wire_words;
                    stats.peak_edge_words = stats.peak_edge_words.max(t.peak_edge_words);
                    for (tag, ts) in t.by_tag {
                        let entry = stats.by_tag.entry(tag).or_default();
                        entry.messages += ts.messages;
                        entry.words += ts.words;
                        entry.wire_words += ts.wire_words;
                    }
                }
                stats.rounds = round;
                stats
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CapacityMode, RunConfig};

    /// Counts rounds until it has seen `wait_for` messages, echoing each.
    struct Echo {
        to_send: u32,
        seen: u32,
        wait_for: u32,
    }

    impl NodeProgram for Echo {
        type Msg = u64;
        fn on_round(&mut self, ctx: &mut RoundCtx<'_, u64>) {
            for _ in 0..self.to_send {
                ctx.send(0, 42);
            }
            self.to_send = 0;
            self.seen += ctx.inbox().len() as u32;
        }
        fn is_done(&self) -> bool {
            self.seen >= self.wait_for
        }
    }

    fn pair() -> Topology {
        Topology::new(2, &[(0, 1, 1)]).unwrap()
    }

    #[test]
    fn delivers_next_round_and_counts() {
        let mut net = Network::new(pair(), |i| Echo {
            to_send: u32::from(i.id == 0),
            seen: 0,
            wait_for: u32::from(i.id == 1),
        });
        let stats = net.run(&RunConfig::congest()).unwrap();
        assert_eq!(stats.messages, 1);
        assert_eq!(stats.words, 1);
        assert_eq!(stats.wire_words, 1);
        // Round 0: node 0 sends. Round 1: node 1 receives; quiescent after.
        assert_eq!(stats.rounds, 2);
        assert_eq!(net.nodes()[1].seen, 1);
    }

    #[test]
    fn strict_capacity_rejects_oversend() {
        // b = 1 with 8 words/unit allows 8 one-word messages; send 9.
        let mut net = Network::new(pair(), |i| Echo {
            to_send: if i.id == 0 { 9 } else { 0 },
            seen: 0,
            wait_for: u32::from(i.id == 1),
        });
        let err = net.run(&RunConfig::congest()).unwrap_err();
        assert!(matches!(err, SimError::CapacityExceeded { round: 0, from: 0, to: 1, .. }));
    }

    #[test]
    fn unchecked_capacity_allows_oversend() {
        let mut net = Network::new(pair(), |i| Echo {
            to_send: if i.id == 0 { 9 } else { 0 },
            seen: 0,
            wait_for: if i.id == 1 { 9 } else { 0 },
        });
        let cfg = RunConfig { capacity: CapacityMode::Unchecked, ..RunConfig::congest() };
        let stats = net.run(&cfg).unwrap();
        assert_eq!(stats.messages, 9);
        assert_eq!(stats.peak_edge_words, 9);
    }

    #[test]
    fn higher_bandwidth_admits_more() {
        let mut net = Network::new(pair(), |i| Echo {
            to_send: if i.id == 0 { 9 } else { 0 },
            seen: 0,
            wait_for: if i.id == 1 { 9 } else { 0 },
        });
        let stats = net.run(&RunConfig::congest_b(2)).unwrap();
        assert_eq!(stats.messages, 9);
    }

    #[test]
    fn nonterminating_protocol_hits_round_cap() {
        struct Spin;
        impl NodeProgram for Spin {
            type Msg = ();
            fn on_round(&mut self, _: &mut RoundCtx<'_, ()>) {}
            fn is_done(&self) -> bool {
                false
            }
        }
        let mut net = Network::new(pair(), |_| Spin);
        let cfg = RunConfig { max_rounds: 10, ..RunConfig::congest() };
        assert!(matches!(
            net.run(&cfg),
            Err(SimError::MaxRoundsExceeded { max_rounds: 10, pending_nodes: 2 })
        ));
    }

    #[test]
    fn sleeping_nonterminating_protocol_hits_round_cap() {
        /// Never done, never acts: promises a wake far past the cap.
        struct DeepSleep;
        impl NodeProgram for DeepSleep {
            type Msg = ();
            fn on_round(&mut self, _: &mut RoundCtx<'_, ()>) {}
            fn is_done(&self) -> bool {
                false
            }
            fn next_wake(&self, _: u64) -> Option<u64> {
                Some(1_000_000)
            }
        }
        let mut net = Network::new(pair(), |_| DeepSleep);
        let cfg = RunConfig { max_rounds: 10, ..RunConfig::congest() };
        // The fast-forward must stop at the cap, not sail past it.
        assert!(matches!(
            net.run(&cfg),
            Err(SimError::MaxRoundsExceeded { max_rounds: 10, pending_nodes: 2 })
        ));
    }

    #[test]
    fn immediate_quiescence_is_zero_rounds() {
        struct Done;
        impl NodeProgram for Done {
            type Msg = ();
            fn on_round(&mut self, _: &mut RoundCtx<'_, ()>) {}
            fn is_done(&self) -> bool {
                true
            }
        }
        let mut net = Network::new(pair(), |_| Done);
        let stats = net.run(&RunConfig::congest()).unwrap();
        assert_eq!(stats.rounds, 0);
        assert_eq!(stats.messages, 0);
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let topo = Topology::new(4, &[(0, 1, 1), (1, 2, 2), (2, 3, 3), (3, 0, 4)]).unwrap();
            let mut net = Network::new(topo, |i| Echo {
                to_send: if i.id == 0 { 2 } else { 0 },
                seen: 0,
                wait_for: u32::from(i.id == 1) * 2,
            });
            net.run(&RunConfig::congest()).unwrap()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn messages_arrive_with_correct_reverse_port() {
        /// Node 1 records the port a message arrives on.
        struct PortCheck {
            got: Option<PortId>,
            fire: bool,
        }
        impl NodeProgram for PortCheck {
            type Msg = ();
            fn on_round(&mut self, ctx: &mut RoundCtx<'_, ()>) {
                if self.fire {
                    self.fire = false;
                    ctx.send(0, ());
                }
                if let Some(&(p, _)) = ctx.inbox().first() {
                    self.got = Some(p);
                }
            }
            fn is_done(&self) -> bool {
                !self.fire
            }
        }
        // Node 2's ports: port 0 -> 0 (edge 1), port 1 -> 1 (edge 2).
        let topo = Topology::new(3, &[(0, 1, 1), (0, 2, 1), (1, 2, 1)]).unwrap();
        let mut net = Network::new(topo, |i| PortCheck { got: None, fire: i.id == 1 });
        // Node 1 sends on its port 0, which is edge (0,1) -> node 0 hears on
        // its own port 0.
        net.run(&RunConfig::congest()).unwrap();
        assert_eq!(net.nodes()[0].got, Some(0));
    }

    /// Sleeps (accurate hint) until `fire_at`, acts once, then is done.
    struct Napper {
        fire_at: u64,
        fired: bool,
    }
    impl NodeProgram for Napper {
        type Msg = ();
        fn on_round(&mut self, ctx: &mut RoundCtx<'_, ()>) {
            if ctx.round() == self.fire_at {
                self.fired = true;
            }
        }
        fn is_done(&self) -> bool {
            self.fired
        }
        fn stage_tag(&self) -> &'static str {
            "z"
        }
        fn next_wake(&self, _: u64) -> Option<u64> {
            if self.fired {
                None
            } else {
                Some(self.fire_at)
            }
        }
    }

    #[test]
    fn fast_forward_skips_idle_rounds_and_attributes_them() {
        let mut net = Network::new(pair(), |_| Napper { fire_at: 5, fired: false });
        let stats = net.run(&RunConfig::congest()).unwrap();
        // Rounds 1-4 are skipped wholesale but still counted + attributed.
        assert_eq!(stats.rounds, 6);
        assert_eq!(stats.rounds_in_stage("z"), 6);
        assert_eq!(stats.messages, 0);
        assert!(net.nodes().iter().all(|n| n.fired));
    }

    #[test]
    fn wake_hints_do_not_change_results() {
        let run = |hints: bool, shards: u32| {
            let mut net = Network::new(pair(), |_| Napper { fire_at: 9, fired: false });
            let cfg = RunConfig { wake_hints: hints, shards, ..RunConfig::congest() };
            net.run(&cfg).unwrap()
        };
        let baseline = run(false, 1);
        assert_eq!(baseline, run(true, 1));
        assert_eq!(baseline, run(true, 2));
        assert_eq!(baseline, run(false, 2));
    }

    #[test]
    fn sharded_run_matches_sequential() {
        let run = |shards: u32| {
            let topo = Topology::new(
                5,
                &[(0, 1, 1), (1, 2, 2), (2, 3, 3), (3, 4, 4), (4, 0, 5), (1, 3, 6)],
            )
            .unwrap();
            let mut net = Network::new(topo, |i| Echo {
                to_send: if i.id == 0 { 3 } else { 0 },
                seen: 0,
                wait_for: u32::from(i.id == 1) * 3,
            });
            let stats = net.run(&RunConfig { shards, ..RunConfig::congest() }).unwrap();
            let seen: Vec<u32> = net.nodes().iter().map(|n| n.seen).collect();
            (stats, seen)
        };
        let seq = run(1);
        for s in [2, 3, 4, 5, 8] {
            assert_eq!(seq, run(s), "shards = {s} diverged");
        }
    }
}
