//! The round-driven network executor.

use crate::config::{CapacityMode, RunConfig};
use crate::error::SimError;
use crate::message::Message;
use crate::stats::{RunStats, TagStats};
use crate::topology::{NodeId, Port, PortId, Topology};

/// What a node is told at construction time: its identity and its local
/// ports (incident edges with weights). This is the *clean network model*:
/// neighbor identities are not included; protocols learn them by talking.
#[derive(Clone, Copy, Debug)]
pub struct NodeInfo<'a> {
    /// This node's identity.
    pub id: NodeId,
    /// This node's incident ports (neighbor field is for instrumentation
    /// only; see [`Port`]).
    pub ports: &'a [Port],
}

/// A per-node protocol state machine.
///
/// The simulator calls [`on_round`](NodeProgram::on_round) for every node in
/// every round, passing the messages that arrived at the start of the round.
/// Messages sent during a round are delivered at the start of the next round
/// (synchronous CONGEST semantics).
pub trait NodeProgram {
    /// The protocol's message type.
    type Msg: Message;

    /// Executes one synchronous round: read [`RoundCtx::inbox`], update local
    /// state, and [`RoundCtx::send`] messages for next-round delivery.
    fn on_round(&mut self, ctx: &mut RoundCtx<'_, Self::Msg>);

    /// Local termination flag. The simulation halts when every node reports
    /// `true` *and* no messages are in flight. A node may be reawakened by a
    /// later message even after reporting done.
    fn is_done(&self) -> bool;

    /// Which protocol stage this node is currently in, as a short static
    /// tag (e.g. `"a"`, `"b"`, ...). The network attributes each executed
    /// round to the smallest non-empty tag reported across all nodes
    /// ([`RunStats::rounds_by_stage`]), so a round counts toward a stage
    /// until the *last* node has left it. The default (empty string)
    /// disables attribution for this node.
    fn stage_tag(&self) -> &'static str {
        ""
    }
}

/// Per-round execution context handed to [`NodeProgram::on_round`].
#[derive(Debug)]
pub struct RoundCtx<'a, M: Message> {
    round: u64,
    id: NodeId,
    ports: &'a [Port],
    inbox: &'a [(PortId, M)],
    outbox: &'a mut Vec<(PortId, M)>,
}

impl<'a, M: Message> RoundCtx<'a, M> {
    /// The current round number (0-based).
    #[inline]
    pub fn round(&self) -> u64 {
        self.round
    }

    /// This node's identity.
    #[inline]
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Number of incident ports (the node's degree).
    #[inline]
    pub fn degree(&self) -> usize {
        self.ports.len()
    }

    /// Weight of the edge behind port `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    #[inline]
    pub fn weight(&self, p: PortId) -> u64 {
        self.ports[p].weight
    }

    /// Messages that arrived this round, as `(port, message)` pairs in
    /// deterministic order (by sender processing order of the previous
    /// round).
    #[inline]
    pub fn inbox(&self) -> &[(PortId, M)] {
        self.inbox
    }

    /// Sends `msg` over port `p`, to be delivered next round. Bandwidth
    /// accounting happens at the network level.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    #[inline]
    pub fn send(&mut self, p: PortId, msg: M) {
        assert!(p < self.ports.len(), "send on nonexistent port {p}");
        self.outbox.push((p, msg));
    }
}

/// A network of nodes executing a [`NodeProgram`] over a [`Topology`].
#[derive(Debug)]
pub struct Network<P: NodeProgram> {
    topo: Topology,
    nodes: Vec<P>,
}

impl<P: NodeProgram> Network<P> {
    /// Instantiates one program per node via `factory`, called in node-id
    /// order with that node's [`NodeInfo`].
    pub fn new<F>(topo: Topology, mut factory: F) -> Self
    where
        F: FnMut(NodeInfo<'_>) -> P,
    {
        let nodes = (0..topo.num_nodes())
            .map(|id| factory(NodeInfo { id, ports: topo.ports(id) }))
            .collect();
        Self { topo, nodes }
    }

    /// The topology this network runs on.
    #[inline]
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Read access to all node programs (e.g. to extract final states).
    #[inline]
    pub fn nodes(&self) -> &[P] {
        &self.nodes
    }

    /// Consumes the network, returning the node programs.
    pub fn into_nodes(self) -> Vec<P> {
        self.nodes
    }

    /// Runs rounds until quiescence (every node done, no messages in
    /// flight) or an error.
    ///
    /// # Errors
    ///
    /// * [`SimError::CapacityExceeded`] under [`CapacityMode::Strict`] when a
    ///   round oversubscribes an edge direction.
    /// * [`SimError::MaxRoundsExceeded`] when `config.max_rounds` is hit.
    pub fn run(&mut self, config: &RunConfig) -> Result<RunStats, SimError> {
        let n = self.topo.num_nodes();
        let capacity = config.capacity_words();
        let mut stats = RunStats::default();

        // Double-buffered inboxes; `touched` lists nodes whose next-round
        // inbox is non-empty and `delivered` those whose current inbox is,
        // so per-round bookkeeping stays proportional to traffic.
        let mut inboxes: Vec<Vec<(PortId, P::Msg)>> = vec![Vec::new(); n];
        let mut next_inboxes: Vec<Vec<(PortId, P::Msg)>> = vec![Vec::new(); n];
        let mut touched: Vec<NodeId> = Vec::new();
        let mut delivered: Vec<NodeId> = Vec::new();
        let mut inflight: u64 = 0;

        // Per directed edge (2 per undirected edge): words sent in the round
        // stamped alongside, so no per-round reset is needed.
        let mut edge_words: Vec<(u64, u64)> = vec![(u64::MAX, 0); 2 * self.topo.num_edges()];

        let mut outbox: Vec<(PortId, P::Msg)> = Vec::new();
        let mut round: u64 = 0;

        loop {
            if inflight == 0 && self.nodes.iter().all(|p| p.is_done()) {
                stats.rounds = round;
                return Ok(stats);
            }
            if round >= config.max_rounds {
                return Err(SimError::MaxRoundsExceeded {
                    max_rounds: config.max_rounds,
                    pending_nodes: self.nodes.iter().filter(|p| !p.is_done()).count(),
                });
            }

            let mut round_messages: u64 = 0;
            inflight = 0;
            #[allow(clippy::needless_range_loop)] // v indexes nodes, ports, and inboxes alike
            for v in 0..n {
                outbox.clear();
                let mut ctx = RoundCtx {
                    round,
                    id: v,
                    ports: self.topo.ports(v),
                    inbox: &inboxes[v],
                    outbox: &mut outbox,
                };
                self.nodes[v].on_round(&mut ctx);

                for (p, msg) in outbox.drain(..) {
                    let port = self.topo.ports(v)[p];
                    let words = u64::from(msg.words().max(1));

                    // Directed-edge bandwidth accounting.
                    let dir = usize::from(self.topo.edges()[port.edge].0 != v);
                    let slot = &mut edge_words[2 * port.edge + dir];
                    if slot.0 != round {
                        *slot = (round, 0);
                    }
                    slot.1 += words;
                    if slot.1 > capacity && config.capacity == CapacityMode::Strict {
                        return Err(SimError::CapacityExceeded {
                            round,
                            from: v,
                            to: port.neighbor,
                            words: slot.1,
                            capacity,
                        });
                    }
                    stats.peak_edge_words = stats.peak_edge_words.max(slot.1);

                    let entry = stats.by_tag.entry(msg.tag()).or_insert_with(TagStats::default);
                    entry.messages += 1;
                    entry.words += words;
                    stats.messages += 1;
                    stats.words += words;
                    round_messages += 1;
                    inflight += 1;

                    let back = self.topo.reverse_port(v, p);
                    if next_inboxes[port.neighbor].is_empty() {
                        touched.push(port.neighbor);
                    }
                    next_inboxes[port.neighbor].push((back, msg));
                }
            }

            stats.peak_round_messages = stats.peak_round_messages.max(round_messages);

            // Attribute the round just executed to the earliest stage any
            // node still reports (post-round sampling: a node that crossed
            // a stage boundary *during* this round counts it in the new
            // stage, matching last-to-cross milestone semantics).
            let mut stage: Option<&'static str> = None;
            for node in &self.nodes {
                let t = node.stage_tag();
                if !t.is_empty() && stage.is_none_or(|s| t < s) {
                    stage = Some(t);
                }
            }
            if let Some(t) = stage {
                *stats.rounds_by_stage.entry(t).or_insert(0) += 1;
            }

            // Consume this round's inboxes, then promote the messages just
            // sent to become next round's input.
            for &v in &delivered {
                inboxes[v].clear();
            }
            delivered.clear();
            for &v in &touched {
                std::mem::swap(&mut inboxes[v], &mut next_inboxes[v]);
                delivered.push(v);
            }
            touched.clear();

            round += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CapacityMode, RunConfig};

    /// Counts rounds until it has seen `wait_for` messages, echoing each.
    struct Echo {
        to_send: u32,
        seen: u32,
        wait_for: u32,
    }

    impl NodeProgram for Echo {
        type Msg = u64;
        fn on_round(&mut self, ctx: &mut RoundCtx<'_, u64>) {
            for _ in 0..self.to_send {
                ctx.send(0, 42);
            }
            self.to_send = 0;
            self.seen += ctx.inbox().len() as u32;
        }
        fn is_done(&self) -> bool {
            self.seen >= self.wait_for
        }
    }

    fn pair() -> Topology {
        Topology::new(2, &[(0, 1, 1)]).unwrap()
    }

    #[test]
    fn delivers_next_round_and_counts() {
        let mut net = Network::new(pair(), |i| Echo {
            to_send: u32::from(i.id == 0),
            seen: 0,
            wait_for: u32::from(i.id == 1),
        });
        let stats = net.run(&RunConfig::congest()).unwrap();
        assert_eq!(stats.messages, 1);
        assert_eq!(stats.words, 1);
        // Round 0: node 0 sends. Round 1: node 1 receives; quiescent after.
        assert_eq!(stats.rounds, 2);
        assert_eq!(net.nodes()[1].seen, 1);
    }

    #[test]
    fn strict_capacity_rejects_oversend() {
        // b = 1 with 8 words/unit allows 8 one-word messages; send 9.
        let mut net = Network::new(pair(), |i| Echo {
            to_send: if i.id == 0 { 9 } else { 0 },
            seen: 0,
            wait_for: u32::from(i.id == 1),
        });
        let err = net.run(&RunConfig::congest()).unwrap_err();
        assert!(matches!(err, SimError::CapacityExceeded { round: 0, from: 0, to: 1, .. }));
    }

    #[test]
    fn unchecked_capacity_allows_oversend() {
        let mut net = Network::new(pair(), |i| Echo {
            to_send: if i.id == 0 { 9 } else { 0 },
            seen: 0,
            wait_for: if i.id == 1 { 9 } else { 0 },
        });
        let cfg = RunConfig { capacity: CapacityMode::Unchecked, ..RunConfig::congest() };
        let stats = net.run(&cfg).unwrap();
        assert_eq!(stats.messages, 9);
        assert_eq!(stats.peak_edge_words, 9);
    }

    #[test]
    fn higher_bandwidth_admits_more() {
        let mut net = Network::new(pair(), |i| Echo {
            to_send: if i.id == 0 { 9 } else { 0 },
            seen: 0,
            wait_for: if i.id == 1 { 9 } else { 0 },
        });
        let stats = net.run(&RunConfig::congest_b(2)).unwrap();
        assert_eq!(stats.messages, 9);
    }

    #[test]
    fn nonterminating_protocol_hits_round_cap() {
        struct Spin;
        impl NodeProgram for Spin {
            type Msg = ();
            fn on_round(&mut self, _: &mut RoundCtx<'_, ()>) {}
            fn is_done(&self) -> bool {
                false
            }
        }
        let mut net = Network::new(pair(), |_| Spin);
        let cfg = RunConfig { max_rounds: 10, ..RunConfig::congest() };
        assert!(matches!(
            net.run(&cfg),
            Err(SimError::MaxRoundsExceeded { max_rounds: 10, pending_nodes: 2 })
        ));
    }

    #[test]
    fn immediate_quiescence_is_zero_rounds() {
        struct Done;
        impl NodeProgram for Done {
            type Msg = ();
            fn on_round(&mut self, _: &mut RoundCtx<'_, ()>) {}
            fn is_done(&self) -> bool {
                true
            }
        }
        let mut net = Network::new(pair(), |_| Done);
        let stats = net.run(&RunConfig::congest()).unwrap();
        assert_eq!(stats.rounds, 0);
        assert_eq!(stats.messages, 0);
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let topo = Topology::new(4, &[(0, 1, 1), (1, 2, 2), (2, 3, 3), (3, 0, 4)]).unwrap();
            let mut net = Network::new(topo, |i| Echo {
                to_send: if i.id == 0 { 2 } else { 0 },
                seen: 0,
                wait_for: u32::from(i.id == 1) * 2,
            });
            net.run(&RunConfig::congest()).unwrap()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn messages_arrive_with_correct_reverse_port() {
        /// Node 1 records the port a message arrives on.
        struct PortCheck {
            got: Option<PortId>,
            fire: bool,
        }
        impl NodeProgram for PortCheck {
            type Msg = ();
            fn on_round(&mut self, ctx: &mut RoundCtx<'_, ()>) {
                if self.fire {
                    self.fire = false;
                    ctx.send(0, ());
                }
                if let Some(&(p, _)) = ctx.inbox().first() {
                    self.got = Some(p);
                }
            }
            fn is_done(&self) -> bool {
                !self.fire
            }
        }
        // Node 2's ports: port 0 -> 0 (edge 1), port 1 -> 1 (edge 2).
        let topo = Topology::new(3, &[(0, 1, 1), (0, 2, 1), (1, 2, 1)]).unwrap();
        let mut net = Network::new(topo, |i| PortCheck { got: None, fire: i.id == 1 });
        // Node 1 sends on its port 0, which is edge (0,1) -> node 0 hears on
        // its own port 0.
        net.run(&RunConfig::congest()).unwrap();
        assert_eq!(net.nodes()[0].got, Some(0));
    }
}
