//! The [`Message`] trait: what node programs exchange.

/// A message exchanged between neighboring nodes.
///
/// Implementors declare their size in *words* — one word is one
/// `O(log n)`-bit quantity (a vertex identity, an edge weight, a small
/// counter). The simulator charges `words()` against the per-edge,
/// per-direction, per-round bandwidth budget (see
/// [`RunConfig`](crate::RunConfig)), and aggregates statistics per
/// [`tag`](Message::tag).
///
/// ```
/// use congest_sim::Message;
///
/// #[derive(Clone, Debug)]
/// enum Proto {
///     Ping,
///     Report { weight: u64, endpoint: usize },
/// }
///
/// impl Message for Proto {
///     fn words(&self) -> u32 {
///         match self {
///             Proto::Ping => 1,
///             Proto::Report { .. } => 2,
///         }
///     }
///     fn tag(&self) -> &'static str {
///         match self {
///             Proto::Ping => "ping",
///             Proto::Report { .. } => "report",
///         }
///     }
/// }
/// assert_eq!(Proto::Ping.words(), 1);
/// ```
pub trait Message: Clone {
    /// Size of this message in words (`O(log n)`-bit units).
    ///
    /// # Contract: `words() >= 1`
    ///
    /// Every message occupies the channel, so its cost is at least one word;
    /// an implementation returning 0 is under-declaring its bandwidth use
    /// (a protocol bug that would let the capacity check pass vacuously).
    /// The simulator `debug_assert!`s this contract at every send — debug
    /// builds (the default test tier) panic on a 0-word message. Release
    /// builds still clamp the charge to 1 word so accounting can never be
    /// dodged, but do not pay for the check on the hot path.
    fn words(&self) -> u32 {
        1
    }

    /// A short static label used to aggregate statistics by message kind
    /// (e.g. `"bfs"`, `"mwoe"`). Purely observational.
    fn tag(&self) -> &'static str {
        "msg"
    }
}

impl Message for () {}
impl Message for u64 {}
impl Message for (u64, u64) {
    fn words(&self) -> u32 {
        2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_words_and_tag() {
        assert_eq!(().words(), 1);
        assert_eq!(().tag(), "msg");
        assert_eq!((3u64, 4u64).words(), 2);
    }
}
