//! The [`Message`] trait: what node programs exchange — and the
//! word-level wire format they travel in.
//!
//! Since the wire-format refactor the simulator does not move `Msg` enum
//! values through its rings at all: every send is [`Message::encode`]d
//! into `u64` words on the receiver's per-edge ring, and every drain
//! [`Message::decode`]s them back. `words()` is therefore not an
//! *estimate* of a message's size — it is the physical length of its
//! encoding, and the executor `debug_assert!`s the two agree on every
//! send.

/// Append-only writer for a message's wire encoding.
///
/// The conventional layout is a *tag word* followed by zero or more full
/// payload words:
///
/// ```text
/// word 0:  [63        32][31    16][15     8][7      0]
///          [packed u32  ][reserved][flags   ][tag disc]
/// word 1+: full 64-bit payload words (weights, second ids, ...)
/// ```
///
/// * [`tag`](WireWriter::tag) starts the message and writes the
///   discriminant into bits `0..8`.
/// * [`flag`](WireWriter::flag) sets a boolean in bits `8..16` of the tag
///   word (e.g. `Option` presence).
/// * [`pack`](WireWriter::pack) stores one value `< 2^32` in bits
///   `32..64` of the tag word. Every quantity bounded by the vertex count
///   fits ([`Topology`](crate::Topology) caps `n` at `u32::MAX`); only
///   full-range edge weights need whole words.
/// * [`word`](WireWriter::word) appends a full payload word.
///
/// Simple messages (unit tokens, raw integers) may skip `tag()` and
/// write bare words; the layout is the implementor's to define, as long
/// as `decode(encode(m)) == m` and the encoded length equals
/// [`Message::words`].
pub struct WireWriter<'a> {
    out: &'a mut Vec<u64>,
    base: usize,
    head: Option<usize>,
}

impl<'a> WireWriter<'a> {
    /// Starts an encoding that appends to `out` (which may already hold
    /// earlier messages; [`len`](WireWriter::len) counts only this one).
    pub fn new(out: &'a mut Vec<u64>) -> Self {
        let base = out.len();
        WireWriter { out, base, head: None }
    }

    /// Writes the tag word with discriminant `disc` in bits `0..8`.
    /// Call at most once, before any `flag`/`pack`.
    pub fn tag(&mut self, disc: u8) {
        debug_assert!(self.head.is_none(), "WireWriter::tag called twice");
        self.head = Some(self.out.len());
        self.out.push(disc as u64);
    }

    /// Sets flag `bit` (0..8) in the tag word when `v` is true.
    pub fn flag(&mut self, bit: u8, v: bool) {
        debug_assert!(bit < 8, "WireWriter::flag bit out of range");
        let head = self.head.expect("WireWriter::flag before tag");
        if v {
            self.out[head] |= 1u64 << (8 + bit);
        }
    }

    /// Packs one value `<= u32::MAX` into bits `32..64` of the tag word.
    /// Call at most once per message.
    pub fn pack(&mut self, v: u64) {
        debug_assert!(v <= u32::MAX as u64, "WireWriter::pack value {v} exceeds 32 bits");
        let head = self.head.expect("WireWriter::pack before tag");
        debug_assert_eq!(self.out[head] >> 32, 0, "WireWriter::pack called twice");
        self.out[head] |= v << 32;
    }

    /// Appends a full 64-bit payload word.
    pub fn word(&mut self, v: u64) {
        self.out.push(v);
    }

    /// Number of words written by this encoding so far.
    pub fn len(&self) -> usize {
        self.out.len() - self.base
    }

    /// True if nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Sequential reader over a message's wire encoding; the mirror of
/// [`WireWriter`].
///
/// Call [`tag`](WireReader::tag) first when the encoding starts with a
/// tag word; [`flag`](WireReader::flag) and [`packed`](WireReader::packed)
/// then read the remembered tag word, and [`word`](WireReader::word)
/// yields subsequent payload words.
pub struct WireReader<'a> {
    words: &'a [u64],
    pos: usize,
    head: u64,
}

impl<'a> WireReader<'a> {
    /// Starts reading at the beginning of `words` (which may extend past
    /// this message; decode consumes exactly the encoded length).
    pub fn new(words: &'a [u64]) -> Self {
        WireReader { words, pos: 0, head: 0 }
    }

    /// Reads the tag word, remembers it for `flag`/`packed`, and returns
    /// the discriminant in bits `0..8`.
    pub fn tag(&mut self) -> u8 {
        self.head = self.word();
        (self.head & 0xFF) as u8
    }

    /// Reads flag `bit` (0..8) of the last tag word.
    pub fn flag(&self, bit: u8) -> bool {
        debug_assert!(bit < 8, "WireReader::flag bit out of range");
        (self.head >> (8 + bit)) & 1 == 1
    }

    /// Reads the packed value from bits `32..64` of the last tag word.
    pub fn packed(&self) -> u64 {
        self.head >> 32
    }

    /// Reads the next full payload word.
    pub fn word(&mut self) -> u64 {
        let v = self.words[self.pos];
        self.pos += 1;
        v
    }

    /// Number of words consumed so far.
    pub fn consumed(&self) -> usize {
        self.pos
    }
}

/// A message exchanged between neighboring nodes.
///
/// Implementors declare their size in *words* — one word is one
/// `O(log n)`-bit quantity (a vertex identity, an edge weight, a small
/// counter) — and define the matching wire encoding. The simulator
/// charges `words()` against the per-edge, per-direction, per-round
/// bandwidth budget (see [`RunConfig`](crate::RunConfig)), ships the
/// [`encode`](Message::encode)d words through its rings, and aggregates
/// statistics per [`tag`](Message::tag).
///
/// ```
/// use congest_sim::{Message, WireReader, WireWriter};
///
/// #[derive(Clone, Debug, PartialEq)]
/// enum Proto {
///     Ping,
///     Report { weight: u64, endpoint: usize },
/// }
///
/// impl Message for Proto {
///     fn words(&self) -> u32 {
///         match self {
///             Proto::Ping => 1,
///             Proto::Report { .. } => 2,
///         }
///     }
///     fn tag(&self) -> &'static str {
///         match self {
///             Proto::Ping => "ping",
///             Proto::Report { .. } => "report",
///         }
///     }
///     fn encode(&self, w: &mut WireWriter<'_>) {
///         match self {
///             Proto::Ping => w.tag(0),
///             Proto::Report { weight, endpoint } => {
///                 w.tag(1);
///                 w.pack(*endpoint as u64); // endpoint < n <= u32::MAX
///                 w.word(*weight); // weights need the full 64 bits
///             }
///         }
///     }
///     fn decode(r: &mut WireReader<'_>) -> Self {
///         match r.tag() {
///             0 => Proto::Ping,
///             1 => {
///                 let endpoint = r.packed() as usize;
///                 Proto::Report { weight: r.word(), endpoint }
///             }
///             other => unreachable!("unknown Proto tag {other}"),
///         }
///     }
/// }
///
/// let m = Proto::Report { weight: 1 << 40, endpoint: 7 };
/// let mut buf = Vec::new();
/// m.encode(&mut WireWriter::new(&mut buf));
/// assert_eq!(buf.len(), m.words() as usize);
/// assert_eq!(Proto::decode(&mut WireReader::new(&buf)), m);
/// ```
pub trait Message: Clone {
    /// Size of this message in words (`O(log n)`-bit units).
    ///
    /// # Contract: `words() >= 1`
    ///
    /// Every message occupies the channel, so its cost is at least one word;
    /// an implementation returning 0 is under-declaring its bandwidth use
    /// (a protocol bug that would let the capacity check pass vacuously).
    /// The simulator `debug_assert!`s this contract at every send — debug
    /// builds (the default test tier) panic on a 0-word message. Release
    /// builds still clamp the charge to 1 word so accounting can never be
    /// dodged, but do not pay for the check on the hot path.
    ///
    /// # Contract: `words()` is the encoded length
    ///
    /// [`encode`](Message::encode) must write exactly `words()` words,
    /// and [`decode`](Message::decode) must consume exactly that many —
    /// the rings carry no per-message framing, so the encoding is
    /// self-delimiting by construction. The executor `debug_assert!`s
    /// the send-side half on every message.
    fn words(&self) -> u32 {
        1
    }

    /// A short static label used to aggregate statistics by message kind
    /// (e.g. `"bfs"`, `"mwoe"`). Purely observational.
    fn tag(&self) -> &'static str {
        "msg"
    }

    /// Writes this message's wire representation: exactly
    /// [`words()`](Message::words) `u64` words appended to `out`.
    fn encode(&self, out: &mut WireWriter<'_>);

    /// Reconstructs a message from its wire representation, consuming
    /// exactly the words [`encode`](Message::encode) wrote.
    fn decode(r: &mut WireReader<'_>) -> Self;
}

impl Message for () {
    fn encode(&self, out: &mut WireWriter<'_>) {
        out.word(0);
    }
    fn decode(r: &mut WireReader<'_>) -> Self {
        r.word();
    }
}

impl Message for u64 {
    fn encode(&self, out: &mut WireWriter<'_>) {
        out.word(*self);
    }
    fn decode(r: &mut WireReader<'_>) -> Self {
        r.word()
    }
}

impl Message for (u64, u64) {
    fn words(&self) -> u32 {
        2
    }
    fn encode(&self, out: &mut WireWriter<'_>) {
        out.word(self.0);
        out.word(self.1);
    }
    fn decode(r: &mut WireReader<'_>) -> Self {
        (r.word(), r.word())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_words_and_tag() {
        assert_eq!(().words(), 1);
        assert_eq!(().tag(), "msg");
        assert_eq!((3u64, 4u64).words(), 2);
    }

    #[test]
    fn builtin_impls_roundtrip_at_declared_length() {
        let mut buf = Vec::new();
        ().encode(&mut WireWriter::new(&mut buf));
        assert_eq!(buf.len(), 1);
        <()>::decode(&mut WireReader::new(&buf));

        let mut buf = Vec::new();
        0xDEAD_BEEF_0BAD_F00Du64.encode(&mut WireWriter::new(&mut buf));
        assert_eq!(buf.len(), 1);
        assert_eq!(u64::decode(&mut WireReader::new(&buf)), 0xDEAD_BEEF_0BAD_F00D);

        let pair = (u64::MAX, 17u64);
        let mut buf = Vec::new();
        pair.encode(&mut WireWriter::new(&mut buf));
        assert_eq!(buf.len(), 2);
        assert_eq!(<(u64, u64)>::decode(&mut WireReader::new(&buf)), pair);
    }

    #[test]
    fn tag_word_packs_disc_flags_and_u32() {
        let mut buf = Vec::new();
        let mut w = WireWriter::new(&mut buf);
        w.tag(13);
        w.flag(0, true);
        w.flag(1, false);
        w.flag(2, true);
        w.pack(0xFFFF_FFFF);
        w.word(42);
        assert_eq!(w.len(), 2);

        let mut r = WireReader::new(&buf);
        assert_eq!(r.tag(), 13);
        assert!(r.flag(0));
        assert!(!r.flag(1));
        assert!(r.flag(2));
        assert_eq!(r.packed(), 0xFFFF_FFFF);
        assert_eq!(r.word(), 42);
        assert_eq!(r.consumed(), 2);
    }

    #[test]
    fn writer_appends_after_existing_words() {
        let mut buf = vec![7, 8, 9];
        let mut w = WireWriter::new(&mut buf);
        assert!(w.is_empty());
        w.tag(1);
        w.word(2);
        assert_eq!(w.len(), 2);
        assert_eq!(buf, vec![7, 8, 9, 1, 2]);
    }
}
