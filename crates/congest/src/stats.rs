//! Run statistics: the quantities the paper's theorems bound.

use std::collections::BTreeMap;

/// Message/word counts for one message tag.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TagStats {
    /// Number of messages with this tag.
    pub messages: u64,
    /// Total *declared* words across those messages
    /// ([`Message::words`](crate::Message::words), clamped to `>= 1`).
    pub words: u64,
    /// Total *encoded* words physically shipped through the rings for
    /// those messages. Equal to `words` whenever every implementor
    /// honors the encode-length contract (debug builds assert it); a
    /// divergence in release builds is the drift detector.
    pub wire_words: u64,
}

/// Aggregate statistics of one simulation run.
///
/// `rounds` and `messages` are the two quantities Elkin's theorems bound
/// (`O((D + sqrt(n)) log n)` and `O(m log n + n log n log* n)` respectively
/// for the main algorithm); the rest is diagnostic detail.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Number of synchronous rounds until global quiescence (all nodes done
    /// and no messages in flight).
    pub rounds: u64,
    /// Total messages delivered over the whole run.
    pub messages: u64,
    /// Total declared words across all messages (`Message::words()`,
    /// clamped to `>= 1` — the quantity the capacity budget charges).
    pub words: u64,
    /// Total encoded words physically shipped on the wire. The byte-
    /// accurate counterpart of `words`: equal to it as long as every
    /// `encode` honors the length contract.
    pub wire_words: u64,
    /// Largest number of messages delivered in any single round.
    pub peak_round_messages: u64,
    /// Largest number of words sent over a single edge direction in a single
    /// round (never exceeds the budget under strict capacity).
    pub peak_edge_words: u64,
    /// Per-tag breakdown, ordered by tag for stable output.
    pub by_tag: BTreeMap<&'static str, TagStats>,
    /// Rounds attributed to each protocol stage, as reported by
    /// [`NodeProgram::stage_tag`](crate::NodeProgram::stage_tag): a round
    /// counts toward the *earliest* (smallest, by string order) non-empty
    /// tag any node reports after executing it, so laggards hold the round
    /// in the earlier stage. Empty when no node reports tags. When every
    /// node reports a tag in every round, the counts partition `rounds`
    /// exactly.
    pub rounds_by_stage: BTreeMap<&'static str, u64>,
}

impl RunStats {
    /// Messages carrying the given tag (0 if the tag never appeared).
    pub fn messages_with_tag(&self, tag: &str) -> u64 {
        self.by_tag.get(tag).map_or(0, |t| t.messages)
    }

    /// Encoded wire words carried by the given tag (0 if it never appeared).
    pub fn wire_words_with_tag(&self, tag: &str) -> u64 {
        self.by_tag.get(tag).map_or(0, |t| t.wire_words)
    }

    /// Rounds attributed to the given stage tag (0 if it never appeared).
    pub fn rounds_in_stage(&self, tag: &str) -> u64 {
        self.rounds_by_stage.get(tag).copied().unwrap_or(0)
    }

    /// Renders the per-tag breakdown as an aligned table, one tag per line.
    pub fn tag_table(&self) -> String {
        let mut out = String::new();
        for (tag, t) in &self.by_tag {
            out.push_str(&format!(
                "{tag:<24} {:>12} msgs {:>14} words {:>14} wire\n",
                t.messages, t.words, t.wire_words
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tag_accessors() {
        let mut s = RunStats::default();
        s.by_tag.insert("bfs", TagStats { messages: 7, words: 7, wire_words: 7 });
        assert_eq!(s.messages_with_tag("bfs"), 7);
        assert_eq!(s.messages_with_tag("nope"), 0);
        assert_eq!(s.wire_words_with_tag("bfs"), 7);
        assert_eq!(s.wire_words_with_tag("nope"), 0);
        assert!(s.tag_table().contains("bfs"));
        s.rounds_by_stage.insert("a", 12);
        assert_eq!(s.rounds_in_stage("a"), 12);
        assert_eq!(s.rounds_in_stage("z"), 0);
    }
}
