//! Static communication topology: the weighted graph the nodes live on.
//!
//! Internally the adjacency is a flat CSR arena (one `Vec<Port>` plus an
//! offset table) so the executor's hot loop walks contiguous memory, and
//! every *directed* port carries a precomputed, word-packed route header
//! (destination node and destination-local port in one `u64`) so message
//! delivery needs no lookups beyond a single indexed load.

use crate::error::SimError;

/// Identifier of a node (vertex) in the network, `0..n`.
pub type NodeId = usize;

/// Identifier of an undirected edge, `0..m`, in input order.
pub type EdgeId = usize;

/// Local port index at a node: position in that node's adjacency list.
///
/// Node programs address neighbors exclusively through ports; a node does not
/// a-priori know the identity of the neighbor behind a port (the *clean
/// network model* of the paper: initially a vertex knows only its own
/// identity and the weights of its incident edges).
pub type PortId = usize;

/// One entry of a node's adjacency list.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Port {
    /// The node on the other side of this port. Exposed for *instrumentation
    /// and assembly* (the runner reading final states); faithful protocols
    /// learn neighbor identities by exchanging messages.
    pub neighbor: NodeId,
    /// Undirected edge identifier shared by both endpoints.
    pub edge: EdgeId,
    /// Weight of the incident edge (known locally, as in the weighted
    /// CONGEST model).
    pub weight: u64,
}

/// An immutable, validated communication graph.
///
/// Construction rejects self-loops, parallel edges, and out-of-range
/// endpoints; connectivity is *not* required (some protocols are exercised on
/// forests), but [`Topology::is_connected`] is provided for callers that need
/// the check.
///
/// Each undirected edge contributes one *directed port* per endpoint. A
/// directed port is identified globally by `port_start(v) + p` for node `v`'s
/// local port `p`; global port ids are node-contiguous, which is what lets
/// the sharded executor hand each shard an exclusive, contiguous slice of
/// every per-port table.
#[derive(Clone, Debug)]
pub struct Topology {
    n: usize,
    edges: Vec<(NodeId, NodeId, u64)>,
    /// CSR offsets: node `v`'s ports live at `port_start[v]..port_start[v+1]`
    /// in every flat per-port table below.
    port_start: Vec<u32>,
    /// Flat adjacency arena, `2m` entries.
    ports: Vec<Port>,
    /// Word-packed route header per global directed port `g`:
    /// `(destination node) << 32 | (destination-local reverse port)`. The
    /// executor reads the high half to route a message and the low half to
    /// stamp the receiver-side port it arrives on.
    route: Vec<u64>,
    /// Global index of the reverse directed port (`peer[g]` is the port at
    /// the other endpoint of the same edge).
    peer: Vec<u32>,
    /// Owning node of each global directed port (inverse of `port_start`).
    port_node: Vec<u32>,
    /// Per node (same CSR offsets): the node's *local* port ids sorted by
    /// neighbor id. Draining inbound ring buffers in this order reproduces
    /// the sequential executor's inbox order (senders step in id order, and
    /// each sender's messages to one receiver travel one edge in FIFO
    /// order), which is the determinism contract of the sharded executor.
    drain: Vec<u32>,
}

impl Topology {
    /// Builds a topology on `n` nodes from an undirected weighted edge list.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidTopology`] on self-loops, duplicate edges
    /// (in either orientation), endpoints `>= n`, or sizes exceeding the
    /// packed-header range (`n` or `2m` beyond `u32`).
    pub fn new(n: usize, edges: &[(NodeId, NodeId, u64)]) -> Result<Self, SimError> {
        if n as u64 > u64::from(u32::MAX) || 2 * edges.len() as u64 > u64::from(u32::MAX) {
            return Err(SimError::InvalidTopology(format!(
                "topology too large for packed routing ({n} nodes, {} edges)",
                edges.len()
            )));
        }
        let mut degree = vec![0u32; n];
        // dmst-analysis:allow(hash-order) -- membership-only duplicate check, never iterated
        let mut seen = std::collections::HashSet::with_capacity(edges.len());
        for (eid, &(u, v, _)) in edges.iter().enumerate() {
            if u >= n || v >= n {
                return Err(SimError::InvalidTopology(format!(
                    "edge {eid} = ({u}, {v}) has an endpoint out of range (n = {n})"
                )));
            }
            if u == v {
                return Err(SimError::InvalidTopology(format!(
                    "edge {eid} = ({u}, {v}) is a self-loop"
                )));
            }
            let key = (u.min(v), u.max(v));
            if !seen.insert(key) {
                return Err(SimError::InvalidTopology(format!(
                    "edge {eid} = ({u}, {v}) duplicates an earlier edge"
                )));
            }
            degree[u] += 1;
            degree[v] += 1;
        }

        // CSR offsets, then a single O(m) fill pass using per-node cursors.
        // Ports keep the edge-input insertion order the nested-Vec layout
        // had, so local port numbering is unchanged for every protocol.
        let mut port_start = Vec::with_capacity(n + 1);
        let mut acc = 0u32;
        port_start.push(0);
        for &d in &degree {
            acc += d;
            port_start.push(acc);
        }
        let total = acc as usize;
        let dummy = Port { neighbor: 0, edge: 0, weight: 0 };
        let mut ports = vec![dummy; total];
        let mut route = vec![0u64; total];
        let mut peer = vec![0u32; total];
        let mut port_node = vec![0u32; total];
        let mut cursor: Vec<u32> = port_start[..n].to_vec();
        for (eid, &(u, v, w)) in edges.iter().enumerate() {
            let gu = cursor[u];
            cursor[u] += 1;
            let gv = cursor[v];
            cursor[v] += 1;
            ports[gu as usize] = Port { neighbor: v, edge: eid, weight: w };
            ports[gv as usize] = Port { neighbor: u, edge: eid, weight: w };
            let pu = u64::from(gu - port_start[u]);
            let pv = u64::from(gv - port_start[v]);
            route[gu as usize] = (v as u64) << 32 | pv;
            route[gv as usize] = (u as u64) << 32 | pu;
            peer[gu as usize] = gv;
            peer[gv as usize] = gu;
        }
        for v in 0..n {
            for g in port_start[v]..port_start[v + 1] {
                port_node[g as usize] = v as u32;
            }
        }
        let mut drain = vec![0u32; total];
        for v in 0..n {
            let lo = port_start[v] as usize;
            let hi = port_start[v + 1] as usize;
            let d = &mut drain[lo..hi];
            for (p, slot) in d.iter_mut().enumerate() {
                *slot = p as u32;
            }
            d.sort_unstable_by_key(|&p| ports[lo + p as usize].neighbor);
        }

        Ok(Self { n, edges: edges.to_vec(), port_start, ports, route, peer, port_node, drain })
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Number of undirected edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The adjacency list (ports) of node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= n`.
    #[inline]
    pub fn ports(&self, v: NodeId) -> &[Port] {
        &self.ports[self.port_range(v)]
    }

    /// Degree of node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= n`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        (self.port_start[v + 1] - self.port_start[v]) as usize
    }

    /// The original edge list `(u, v, w)` in input order.
    #[inline]
    pub fn edges(&self) -> &[(NodeId, NodeId, u64)] {
        &self.edges
    }

    /// First global directed-port index of node `v` (CSR offset).
    #[inline]
    pub(crate) fn port_lo(&self, v: NodeId) -> usize {
        self.port_start[v] as usize
    }

    /// Global directed-port range of node `v`.
    #[inline]
    pub(crate) fn port_range(&self, v: NodeId) -> std::ops::Range<usize> {
        self.port_start[v] as usize..self.port_start[v + 1] as usize
    }

    /// The packed route header of global port `g`:
    /// `dest_node << 32 | dest_local_port`.
    #[inline]
    pub(crate) fn route(&self, g: usize) -> u64 {
        self.route[g]
    }

    /// Global index of the reverse directed port of `g`.
    #[inline]
    pub(crate) fn peer(&self, g: usize) -> usize {
        self.peer[g] as usize
    }

    /// Owning node of global port `g`.
    #[inline]
    pub(crate) fn port_node(&self, g: usize) -> NodeId {
        self.port_node[g] as usize
    }

    /// Node `v`'s local port ids sorted by neighbor id (inbound drain
    /// order; see the field docs).
    #[inline]
    pub(crate) fn drain_order(&self, v: NodeId) -> &[u32] {
        &self.drain[self.port_range(v)]
    }

    /// The port at `ports(v)[p].neighbor` leading back to `v`.
    #[cfg(test)]
    pub(crate) fn reverse_port(&self, v: NodeId, p: PortId) -> PortId {
        (self.route[self.port_start[v] as usize + p] & 0xFFFF_FFFF) as PortId
    }

    /// Whether the graph is connected (every pair of nodes joined by a path).
    /// An empty graph and a single-node graph are connected.
    pub fn is_connected(&self) -> bool {
        if self.n <= 1 {
            return true;
        }
        let mut seen = vec![false; self.n];
        let mut stack = vec![0];
        seen[0] = true;
        let mut count = 1;
        while let Some(v) = stack.pop() {
            for port in self.ports(v) {
                if !seen[port.neighbor] {
                    seen[port.neighbor] = true;
                    count += 1;
                    stack.push(port.neighbor);
                }
            }
        }
        count == self.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_ports_and_reverse() {
        let t = Topology::new(3, &[(0, 1, 5), (1, 2, 7)]).unwrap();
        assert_eq!(t.num_nodes(), 3);
        assert_eq!(t.num_edges(), 2);
        assert_eq!(t.degree(1), 2);
        assert_eq!(t.ports(0)[0], Port { neighbor: 1, edge: 0, weight: 5 });
        // reverse port round-trips
        for v in 0..3 {
            for (p, port) in t.ports(v).iter().enumerate() {
                let back = t.reverse_port(v, p);
                assert_eq!(t.ports(port.neighbor)[back].neighbor, v);
                assert_eq!(t.ports(port.neighbor)[back].edge, port.edge);
            }
        }
    }

    #[test]
    fn packed_routes_and_peers_agree_with_ports() {
        let t = Topology::new(4, &[(0, 1, 1), (1, 2, 2), (2, 3, 3), (3, 0, 4), (0, 2, 5)]).unwrap();
        for v in 0..4 {
            for (p, port) in t.ports(v).iter().enumerate() {
                let g = t.port_lo(v) + p;
                assert_eq!(t.port_node(g), v);
                let header = t.route(g);
                assert_eq!((header >> 32) as usize, port.neighbor);
                assert_eq!((header & 0xFFFF_FFFF) as usize, t.reverse_port(v, p));
                // The peer port lives at the neighbor and routes back here.
                let peer = t.peer(g);
                assert_eq!(t.port_node(peer), port.neighbor);
                assert_eq!(t.peer(peer), g);
                assert_eq!(peer, t.port_lo(port.neighbor) + t.reverse_port(v, p));
            }
        }
    }

    #[test]
    fn drain_order_sorts_ports_by_neighbor() {
        // Node 3's adjacency is built in edge-input order (2, 0, 1); the
        // drain order must visit neighbors ascending (0, 1, 2).
        let t = Topology::new(4, &[(3, 2, 1), (3, 0, 1), (3, 1, 1)]).unwrap();
        let nbrs: Vec<usize> =
            t.drain_order(3).iter().map(|&p| t.ports(3)[p as usize].neighbor).collect();
        assert_eq!(nbrs, vec![0, 1, 2]);
    }

    #[test]
    fn rejects_self_loop() {
        assert!(matches!(Topology::new(2, &[(1, 1, 1)]), Err(SimError::InvalidTopology(_))));
    }

    #[test]
    fn rejects_duplicate_edge_either_orientation() {
        assert!(Topology::new(2, &[(0, 1, 1), (1, 0, 2)]).is_err());
        assert!(Topology::new(2, &[(0, 1, 1), (0, 1, 2)]).is_err());
    }

    #[test]
    fn rejects_out_of_range() {
        assert!(Topology::new(2, &[(0, 2, 1)]).is_err());
    }

    #[test]
    fn connectivity() {
        assert!(Topology::new(1, &[]).unwrap().is_connected());
        assert!(Topology::new(3, &[(0, 1, 1), (1, 2, 1)]).unwrap().is_connected());
        assert!(!Topology::new(3, &[(0, 1, 1)]).unwrap().is_connected());
        assert!(!Topology::new(2, &[]).unwrap().is_connected());
    }
}
