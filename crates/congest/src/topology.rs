//! Static communication topology: the weighted graph the nodes live on.

use crate::error::SimError;

/// Identifier of a node (vertex) in the network, `0..n`.
pub type NodeId = usize;

/// Identifier of an undirected edge, `0..m`, in input order.
pub type EdgeId = usize;

/// Local port index at a node: position in that node's adjacency list.
///
/// Node programs address neighbors exclusively through ports; a node does not
/// a-priori know the identity of the neighbor behind a port (the *clean
/// network model* of the paper: initially a vertex knows only its own
/// identity and the weights of its incident edges).
pub type PortId = usize;

/// One entry of a node's adjacency list.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Port {
    /// The node on the other side of this port. Exposed for *instrumentation
    /// and assembly* (the runner reading final states); faithful protocols
    /// learn neighbor identities by exchanging messages.
    pub neighbor: NodeId,
    /// Undirected edge identifier shared by both endpoints.
    pub edge: EdgeId,
    /// Weight of the incident edge (known locally, as in the weighted
    /// CONGEST model).
    pub weight: u64,
}

/// An immutable, validated communication graph.
///
/// Construction rejects self-loops, parallel edges, and out-of-range
/// endpoints; connectivity is *not* required (some protocols are exercised on
/// forests), but [`Topology::is_connected`] is provided for callers that need
/// the check.
#[derive(Clone, Debug)]
pub struct Topology {
    n: usize,
    edges: Vec<(NodeId, NodeId, u64)>,
    ports: Vec<Vec<Port>>,
    /// `reverse[v][p]` = the port index at `ports[v][p].neighbor` that leads
    /// back to `v` over the same edge. Precomputed so message delivery is
    /// O(1) per message.
    reverse: Vec<Vec<PortId>>,
}

impl Topology {
    /// Builds a topology on `n` nodes from an undirected weighted edge list.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidTopology`] on self-loops, duplicate edges
    /// (in either orientation), or endpoints `>= n`.
    pub fn new(n: usize, edges: &[(NodeId, NodeId, u64)]) -> Result<Self, SimError> {
        let mut ports: Vec<Vec<Port>> = vec![Vec::new(); n];
        let mut seen = std::collections::HashSet::with_capacity(edges.len());
        for (eid, &(u, v, w)) in edges.iter().enumerate() {
            if u >= n || v >= n {
                return Err(SimError::InvalidTopology(format!(
                    "edge {eid} = ({u}, {v}) has an endpoint out of range (n = {n})"
                )));
            }
            if u == v {
                return Err(SimError::InvalidTopology(format!(
                    "edge {eid} = ({u}, {v}) is a self-loop"
                )));
            }
            let key = (u.min(v), u.max(v));
            if !seen.insert(key) {
                return Err(SimError::InvalidTopology(format!(
                    "edge {eid} = ({u}, {v}) duplicates an earlier edge"
                )));
            }
            ports[u].push(Port { neighbor: v, edge: eid, weight: w });
            ports[v].push(Port { neighbor: u, edge: eid, weight: w });
        }
        // reverse[v][p]: find the port at the neighbor with the same edge id.
        let mut reverse: Vec<Vec<PortId>> = Vec::with_capacity(n);
        for v in 0..n {
            let mut rv = Vec::with_capacity(ports[v].len());
            for port in &ports[v] {
                let back = ports[port.neighbor]
                    .iter()
                    .position(|q| q.edge == port.edge)
                    .expect("edge stored at both endpoints");
                rv.push(back);
            }
            reverse.push(rv);
        }
        Ok(Self { n, edges: edges.to_vec(), ports, reverse })
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Number of undirected edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The adjacency list (ports) of node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= n`.
    #[inline]
    pub fn ports(&self, v: NodeId) -> &[Port] {
        &self.ports[v]
    }

    /// Degree of node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= n`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        self.ports[v].len()
    }

    /// The original edge list `(u, v, w)` in input order.
    #[inline]
    pub fn edges(&self) -> &[(NodeId, NodeId, u64)] {
        &self.edges
    }

    /// The port at `ports(v)[p].neighbor` leading back to `v`.
    #[inline]
    pub(crate) fn reverse_port(&self, v: NodeId, p: PortId) -> PortId {
        self.reverse[v][p]
    }

    /// Whether the graph is connected (every pair of nodes joined by a path).
    /// An empty graph and a single-node graph are connected.
    pub fn is_connected(&self) -> bool {
        if self.n <= 1 {
            return true;
        }
        let mut seen = vec![false; self.n];
        let mut stack = vec![0];
        seen[0] = true;
        let mut count = 1;
        while let Some(v) = stack.pop() {
            for port in &self.ports[v] {
                if !seen[port.neighbor] {
                    seen[port.neighbor] = true;
                    count += 1;
                    stack.push(port.neighbor);
                }
            }
        }
        count == self.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_ports_and_reverse() {
        let t = Topology::new(3, &[(0, 1, 5), (1, 2, 7)]).unwrap();
        assert_eq!(t.num_nodes(), 3);
        assert_eq!(t.num_edges(), 2);
        assert_eq!(t.degree(1), 2);
        assert_eq!(t.ports(0)[0], Port { neighbor: 1, edge: 0, weight: 5 });
        // reverse port round-trips
        for v in 0..3 {
            for (p, port) in t.ports(v).iter().enumerate() {
                let back = t.reverse_port(v, p);
                assert_eq!(t.ports(port.neighbor)[back].neighbor, v);
                assert_eq!(t.ports(port.neighbor)[back].edge, port.edge);
            }
        }
    }

    #[test]
    fn rejects_self_loop() {
        assert!(matches!(Topology::new(2, &[(1, 1, 1)]), Err(SimError::InvalidTopology(_))));
    }

    #[test]
    fn rejects_duplicate_edge_either_orientation() {
        assert!(Topology::new(2, &[(0, 1, 1), (1, 0, 2)]).is_err());
        assert!(Topology::new(2, &[(0, 1, 1), (0, 1, 2)]).is_err());
    }

    #[test]
    fn rejects_out_of_range() {
        assert!(Topology::new(2, &[(0, 2, 1)]).is_err());
    }

    #[test]
    fn connectivity() {
        assert!(Topology::new(1, &[]).unwrap().is_connected());
        assert!(Topology::new(3, &[(0, 1, 1), (1, 2, 1)]).unwrap().is_connected());
        assert!(!Topology::new(3, &[(0, 1, 1)]).unwrap().is_connected());
        assert!(!Topology::new(2, &[]).unwrap().is_connected());
    }
}
