//! Dual-executor determinism: the sharded, idle-skipping executor must be
//! bit-identical to the legacy sequential one — same [`RunStats`], same
//! final node states, same errors — on every topology family.
//!
//! The workload is a staggered gossip with wake hints, so these tests
//! exercise the whole hot path at once: per-port FIFO merge order across
//! shard boundaries, the wake heap, fast-forward, and the incremental
//! done/stage censuses.

use std::collections::HashSet;

use congest_sim::{
    CapacityMode, Message, Network, NodeInfo, NodeProgram, RoundCtx, RunConfig, RunStats, SimError,
    Topology,
};
use proptest::prelude::*;

/// Gossip token carrying its origin and hop count. Word size and tag vary
/// with the origin so the per-tag tables and word accounting are exercised.
#[derive(Clone, Debug)]
struct Token {
    origin: u64,
    hops: u32,
}
impl Message for Token {
    fn words(&self) -> u32 {
        1 + (self.origin % 3) as u32
    }
    fn tag(&self) -> &'static str {
        if self.origin.is_multiple_of(2) {
            "even"
        } else {
            "odd"
        }
    }
    // A deliberately variable-width encoding: origin and hops share word 0
    // (origins here are node ids, far below 2^32), and `origin % 3` zero
    // pad words make the physical length match `words()` exactly.
    fn encode(&self, out: &mut congest_sim::WireWriter<'_>) {
        debug_assert!(self.origin < u64::from(u32::MAX));
        out.word(self.origin | (u64::from(self.hops) << 32));
        for _ in 0..self.origin % 3 {
            out.word(0);
        }
    }
    fn decode(r: &mut congest_sim::WireReader<'_>) -> Self {
        let w0 = r.word();
        let origin = w0 & 0xFFFF_FFFF;
        for _ in 0..origin % 3 {
            r.word();
        }
        Token { origin, hops: (w0 >> 32) as u32 }
    }
}

/// Staggered gossip: node `v` sleeps until round `3 * (v mod 5)` (a wake
/// hint), then floods its own token; every *new* origin heard is re-flooded
/// once. The log records `(round, port, origin, hops)` for every delivery,
/// so any divergence in timing, order, or content between executors shows
/// up in the final state comparison.
struct Gossip {
    id: u64,
    fire_at: u64,
    fired: bool,
    seen: HashSet<u64>,
    log: Vec<(u64, usize, u64, u32)>,
}

impl NodeProgram for Gossip {
    type Msg = Token;

    fn on_round(&mut self, ctx: &mut RoundCtx<'_, Token>) {
        let round = ctx.round();
        let inbox: Vec<(usize, Token)> = ctx.inbox().to_vec();
        for (port, t) in inbox {
            self.log.push((round, port, t.origin, t.hops));
            if self.seen.insert(t.origin) {
                for p in 0..ctx.degree() {
                    ctx.send(p, Token { origin: t.origin, hops: t.hops + 1 });
                }
            }
        }
        if !self.fired && round >= self.fire_at {
            self.fired = true;
            self.seen.insert(self.id);
            for p in 0..ctx.degree() {
                ctx.send(p, Token { origin: self.id, hops: 0 });
            }
        }
    }

    fn is_done(&self) -> bool {
        self.fired
    }

    fn stage_tag(&self) -> &'static str {
        if self.fired {
            "live"
        } else {
            "idle"
        }
    }

    fn next_wake(&self, after: u64) -> Option<u64> {
        if self.fired {
            None // everything after ignition is message-driven
        } else {
            Some(self.fire_at.max(after + 1))
        }
    }
}

/// Snapshot of one node's externally observable state.
type NodeState = (bool, Vec<u64>, Vec<(u64, usize, u64, u32)>);

fn run_gossip(
    n: usize,
    edges: &[(usize, usize, u64)],
    shards: u32,
    wake_hints: bool,
) -> (RunStats, Vec<NodeState>) {
    let topo = Topology::new(n, edges).unwrap();
    let mut net = Network::new(topo, |i: NodeInfo<'_>| Gossip {
        id: i.id as u64,
        fire_at: 3 * (i.id as u64 % 5),
        fired: false,
        seen: HashSet::new(),
        log: Vec::new(),
    });
    // Unchecked capacity: dense nodes legitimately echo several origins in
    // one round. (Strict-mode error determinism has its own test below.)
    let cfg =
        RunConfig { capacity: CapacityMode::Unchecked, shards, wake_hints, ..RunConfig::congest() };
    let stats = net.run(&cfg).unwrap();
    let states = net
        .nodes()
        .iter()
        .map(|g| {
            let mut seen: Vec<u64> = g.seen.iter().copied().collect();
            seen.sort_unstable();
            (g.fired, seen, g.log.clone())
        })
        .collect();
    (stats, states)
}

/// Executor matrix checked against the legacy baseline (1 shard, no hints).
const MATRIX: [(u32, bool); 5] = [(1, true), (2, true), (3, true), (8, true), (2, false)];

fn assert_all_executors_agree(n: usize, edges: &[(usize, usize, u64)], label: &str) {
    let baseline = run_gossip(n, edges, 1, false);
    for (shards, hints) in MATRIX {
        let got = run_gossip(n, edges, shards, hints);
        assert_eq!(
            got, baseline,
            "{label}: shards={shards} hints={hints} diverged from the sequential executor"
        );
    }
}

fn path(n: usize) -> Vec<(usize, usize, u64)> {
    (0..n - 1).map(|i| (i, i + 1, 1 + (i as u64 % 7))).collect()
}

fn cycle(n: usize) -> Vec<(usize, usize, u64)> {
    (0..n).map(|i| (i, (i + 1) % n, 1 + (i as u64 % 7))).collect()
}

fn star(n: usize) -> Vec<(usize, usize, u64)> {
    (1..n).map(|i| (0, i, i as u64)).collect()
}

fn clique(n: usize) -> Vec<(usize, usize, u64)> {
    let mut e = Vec::new();
    for a in 0..n {
        for b in a + 1..n {
            e.push((a, b, (a * n + b) as u64));
        }
    }
    e
}

fn grid(w: usize, h: usize) -> Vec<(usize, usize, u64)> {
    let mut e = Vec::new();
    for y in 0..h {
        for x in 0..w {
            let v = y * w + x;
            if x + 1 < w {
                e.push((v, v + 1, (v % 9 + 1) as u64));
            }
            if y + 1 < h {
                e.push((v, v + w, (v % 5 + 1) as u64));
            }
        }
    }
    e
}

/// Two cliques joined by a long path: shard boundaries fall inside dense
/// *and* sparse regions at once.
fn barbell(k: usize, bridge: usize) -> (usize, Vec<(usize, usize, u64)>) {
    let n = 2 * k + bridge;
    let mut e = clique(k);
    for (a, b, w) in clique(k) {
        e.push((a + k + bridge, b + k + bridge, w + 100));
    }
    let mut prev = k - 1;
    for i in 0..bridge {
        e.push((prev, k + i, 7));
        prev = k + i;
    }
    e.push((prev, k + bridge, 7));
    (n, e)
}

#[test]
fn every_topology_family_is_executor_invariant() {
    assert_all_executors_agree(13, &path(13), "path-13");
    assert_all_executors_agree(12, &cycle(12), "cycle-12");
    assert_all_executors_agree(14, &star(14), "star-14");
    assert_all_executors_agree(9, &clique(9), "clique-9");
    assert_all_executors_agree(20, &grid(5, 4), "grid-5x4");
    let (n, e) = barbell(6, 5);
    assert_all_executors_agree(n, &e, "barbell-6+5+6");
    // Disconnected: two independent components must still quiesce in step.
    let mut e = path(5);
    e.extend(cycle(4).into_iter().map(|(a, b, w)| (a + 5, b + 5, w)));
    assert_all_executors_agree(9, &e, "disconnected path+cycle");
    // Edgeless: every node is a degree-0 island.
    assert_all_executors_agree(6, &[], "edgeless-6");
}

/// Over-capacity sends must fail with the *same* error on every executor:
/// the first violation in (round, node id) order wins, regardless of which
/// shard trips it.
struct Blaster {
    burst: u32,
    at: u64,
    done: bool,
}
impl NodeProgram for Blaster {
    type Msg = Token;
    fn on_round(&mut self, ctx: &mut RoundCtx<'_, Token>) {
        if !self.done && ctx.round() == self.at && ctx.degree() > 0 {
            self.done = true;
            for i in 0..self.burst {
                ctx.send(0, Token { origin: u64::from(i) * 2, hops: 0 });
            }
        }
    }
    fn is_done(&self) -> bool {
        self.done
    }
    fn next_wake(&self, _after: u64) -> Option<u64> {
        if self.done {
            None
        } else {
            Some(self.at)
        }
    }
}

#[test]
fn strict_capacity_errors_are_executor_invariant() {
    // Nodes 2, 3 and 5 all blow the 8-word budget in round 4; node 2 must
    // be reported by every executor.
    let edges: Vec<(usize, usize, u64)> = (0..7).map(|i| (i, (i + 1) % 8, 1)).collect();
    let run = |shards: u32, hints: bool| {
        let topo = Topology::new(8, &edges).unwrap();
        let mut net = Network::new(topo, |i: NodeInfo<'_>| Blaster {
            burst: if [2, 3, 5].contains(&i.id) { 9 } else { 1 },
            at: 4,
            done: false,
        });
        let cfg = RunConfig { shards, wake_hints: hints, ..RunConfig::congest() };
        net.run(&cfg).unwrap_err()
    };
    let baseline = run(1, false);
    assert!(
        matches!(baseline, SimError::CapacityExceeded { round: 4, from: 2, .. }),
        "unexpected baseline error: {baseline:?}"
    );
    for (shards, hints) in MATRIX {
        assert_eq!(run(shards, hints), baseline, "shards={shards} hints={hints}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Random multi-component topologies: all executor configurations
    /// produce bit-identical statistics and node states.
    #[test]
    fn random_topologies_are_executor_invariant(
        n in 2usize..24,
        pairs in proptest::collection::vec((0usize..24, 0usize..24, 1u64..100), 0..60),
    ) {
        let mut seen = HashSet::new();
        let mut edges = Vec::new();
        for (a, b, w) in pairs {
            let (a, b) = (a % n, b % n);
            if a != b && seen.insert((a.min(b), a.max(b))) {
                edges.push((a, b, w));
            }
        }
        let baseline = run_gossip(n, &edges, 1, false);
        for (shards, hints) in MATRIX {
            let got = run_gossip(n, &edges, shards, hints);
            prop_assert_eq!(
                &got, &baseline,
                "n={} m={} shards={} hints={}", n, edges.len(), shards, hints
            );
        }
    }
}
