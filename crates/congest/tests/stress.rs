//! Simulator stress and property tests: ordering, accounting, determinism.

use congest_sim::{
    CapacityMode, Message, Network, NodeInfo, NodeProgram, PortId, RoundCtx, RunConfig, Topology,
};
use proptest::prelude::*;

/// Message carrying a sequence number, for FIFO checks.
#[derive(Clone, Debug)]
struct Seq(u32);
impl Message for Seq {
    fn encode(&self, out: &mut congest_sim::WireWriter<'_>) {
        out.word(u64::from(self.0));
    }
    fn decode(r: &mut congest_sim::WireReader<'_>) -> Self {
        Seq(r.word() as u32)
    }
}

/// Node 0 sends `count` numbered messages over several rounds; node 1
/// checks they arrive in order.
struct FifoCheck {
    sender: bool,
    next: u32,
    count: u32,
    got: Vec<u32>,
}

impl NodeProgram for FifoCheck {
    type Msg = Seq;
    fn on_round(&mut self, ctx: &mut RoundCtx<'_, Seq>) {
        if self.sender {
            // Up to 3 per round (within an 8-word budget).
            for _ in 0..3 {
                if self.next < self.count {
                    ctx.send(0, Seq(self.next));
                    self.next += 1;
                }
            }
        }
        for (_, Seq(v)) in ctx.inbox() {
            self.got.push(*v);
        }
    }
    fn is_done(&self) -> bool {
        if self.sender {
            self.next >= self.count
        } else {
            self.got.len() as u32 >= self.count
        }
    }
}

#[test]
fn per_edge_fifo_order_is_preserved() {
    let topo = Topology::new(2, &[(0, 1, 1)]).unwrap();
    let mut net = Network::new(topo, |i: NodeInfo<'_>| FifoCheck {
        sender: i.id == 0,
        next: 0,
        count: 50,
        got: Vec::new(),
    });
    net.run(&RunConfig::congest()).unwrap();
    let got = &net.nodes()[1].got;
    assert_eq!(*got, (0..50).collect::<Vec<_>>(), "messages must arrive in send order");
}

/// Every node floods a token once; used for accounting checks.
struct FloodOnce {
    fired: bool,
}
impl NodeProgram for FloodOnce {
    type Msg = Seq;
    fn on_round(&mut self, ctx: &mut RoundCtx<'_, Seq>) {
        if !self.fired {
            self.fired = true;
            for p in 0..ctx.degree() {
                ctx.send(p, Seq(0));
            }
        }
    }
    fn is_done(&self) -> bool {
        self.fired
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// Message accounting is exact: an all-at-round-0 flood sends exactly
    /// 2m messages (one per edge direction), independent of topology.
    #[test]
    fn accounting_exact_on_random_topologies(
        n in 2usize..20,
        pairs in proptest::collection::vec((0usize..20, 0usize..20), 1..40),
    ) {
        let mut seen = std::collections::HashSet::new();
        let mut edges = Vec::new();
        for (a, b) in pairs {
            let (a, b) = (a % n, b % n);
            if a != b && seen.insert((a.min(b), a.max(b))) {
                edges.push((a, b, 1u64));
            }
        }
        prop_assume!(!edges.is_empty());
        let topo = Topology::new(n, &edges).unwrap();
        let mut net = Network::new(topo, |_| FloodOnce { fired: false });
        let stats = net.run(&RunConfig::congest()).unwrap();
        prop_assert_eq!(stats.messages, 2 * edges.len() as u64);
        prop_assert_eq!(stats.words, 2 * edges.len() as u64);
        prop_assert!(stats.peak_edge_words <= 8);
        // Deterministic repeat.
        let topo2 = Topology::new(n, &edges).unwrap();
        let mut net2 = Network::new(topo2, |_| FloodOnce { fired: false });
        prop_assert_eq!(stats, net2.run(&RunConfig::congest()).unwrap());
    }
}

/// A deliberately bursty sender, to compare Strict vs Unchecked.
struct Burst {
    port: Option<PortId>,
    n: u32,
    done: bool,
}
impl NodeProgram for Burst {
    type Msg = Seq;
    fn on_round(&mut self, ctx: &mut RoundCtx<'_, Seq>) {
        if let Some(p) = self.port {
            if !self.done {
                self.done = true;
                for i in 0..self.n {
                    ctx.send(p, Seq(i));
                }
            }
        } else {
            self.done = true;
        }
    }
    fn is_done(&self) -> bool {
        self.done
    }
}

#[test]
fn strict_vs_unchecked_boundary() {
    // Exactly at capacity (8 one-word messages at b = 1): allowed.
    for (n, ok) in [(8u32, true), (9, false)] {
        let topo = Topology::new(2, &[(0, 1, 1)]).unwrap();
        let mut net = Network::new(topo, |i: NodeInfo<'_>| Burst {
            port: (i.id == 0).then_some(0),
            n,
            done: false,
        });
        let res = net.run(&RunConfig::congest());
        assert_eq!(res.is_ok(), ok, "n = {n}");
        // Unchecked always succeeds.
        let topo = Topology::new(2, &[(0, 1, 1)]).unwrap();
        let mut net = Network::new(topo, |i: NodeInfo<'_>| Burst {
            port: (i.id == 0).then_some(0),
            n,
            done: false,
        });
        let cfg = RunConfig { capacity: CapacityMode::Unchecked, ..RunConfig::congest() };
        assert!(net.run(&cfg).is_ok());
    }
}

#[test]
fn opposite_directions_have_separate_budgets() {
    // Both endpoints send 8 words in the same round: no violation.
    let topo = Topology::new(2, &[(0, 1, 1)]).unwrap();
    let mut net = Network::new(topo, |_| Burst { port: Some(0), n: 8, done: false });
    assert!(net.run(&RunConfig::congest()).is_ok());
}

/// A node that walks through named stages on a fixed per-node timetable,
/// for stage-attribution checks.
struct Staged {
    /// `(stage tag, first round of the NEXT stage)` boundaries, ascending.
    plan: Vec<(&'static str, u64)>,
    round: u64,
    done_at: u64,
    pinged: bool,
}

impl NodeProgram for Staged {
    type Msg = Seq;
    fn on_round(&mut self, ctx: &mut RoundCtx<'_, Seq>) {
        self.round = ctx.round() + 1; // post-round sampling sees the new stage
        if !self.pinged {
            self.pinged = true;
            for p in 0..ctx.degree() {
                ctx.send(p, Seq(0));
            }
        }
    }
    fn is_done(&self) -> bool {
        self.round >= self.done_at
    }
    fn stage_tag(&self) -> &'static str {
        for &(tag, until) in &self.plan {
            if self.round < until {
                return tag;
            }
        }
        self.plan.last().map_or("", |&(tag, _)| tag)
    }
}

#[test]
fn stage_attribution_partitions_rounds_and_respects_laggards() {
    // Node 0 flips to "b" during round 2, node 1 only during round 4
    // (post-round sampling: executed round r reads the state after
    // on_round(r)). Rounds 0..=3 must all be charged to "a" (earliest
    // stage any node still reports), the rest to "b", and the breakdown
    // must sum to the total.
    let topo = Topology::new(2, &[(0, 1, 1)]).unwrap();
    let mut net = Network::new(topo, |i: NodeInfo<'_>| Staged {
        plan: vec![("a", if i.id == 0 { 3 } else { 5 }), ("b", u64::MAX)],
        round: 0,
        done_at: 9,
        pinged: false,
    });
    let stats = net.run(&RunConfig::congest()).unwrap();
    let total: u64 = stats.rounds_by_stage.values().sum();
    assert_eq!(total, stats.rounds, "stage breakdown must partition the executed rounds");
    assert_eq!(stats.rounds_in_stage("a"), 4, "laggard holds the round in the earlier stage");
    assert_eq!(stats.rounds_in_stage("b"), stats.rounds - 4);
    assert_eq!(stats.rounds_in_stage("zz"), 0);
}

#[test]
fn stage_attribution_absent_without_tags() {
    // Programs that do not override stage_tag report nothing.
    let topo = Topology::new(2, &[(0, 1, 1)]).unwrap();
    let mut net = Network::new(topo, |_| FloodOnce { fired: false });
    let stats = net.run(&RunConfig::congest()).unwrap();
    assert!(stats.rounds_by_stage.is_empty());
}
