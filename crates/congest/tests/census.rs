//! Stage-census and message-contract properties.
//!
//! The executor keeps `rounds_by_stage` as an *incremental* census (updated
//! only when a node's tag changes) instead of an O(n) per-round scan. These
//! tests pin its documented semantics (`stats.rs`): an executed round is
//! attributed to the earliest (smallest, by string order) non-empty tag any
//! node reports *after* that round, so laggards hold rounds in the earlier
//! stage, empty-tag nodes abstain, and when any node always reports a tag
//! the counts partition `rounds` exactly.

use std::collections::BTreeMap;

use congest_sim::{Message, Network, NodeInfo, NodeProgram, RoundCtx, RunConfig, Topology};
use proptest::prelude::*;

#[derive(Clone, Debug)]
struct Ping;
impl Message for Ping {
    fn encode(&self, out: &mut congest_sim::WireWriter<'_>) {
        out.word(0);
    }
    fn decode(r: &mut congest_sim::WireReader<'_>) -> Self {
        r.word();
        Ping
    }
}

/// Walks through a per-node timetable of stage tags; sends one initial
/// flood so there is message traffic, and stays alive until `done_at`.
/// `round` tracks the post-round sample point (executed round + 1), which
/// is exactly what the executor's census sees.
struct Staged {
    plan: Vec<(&'static str, u64)>, // (tag, first round of the NEXT stage)
    round: u64,
    done_at: u64,
    pinged: bool,
}

fn plan_tag(plan: &[(&'static str, u64)], round: u64) -> &'static str {
    for &(tag, until) in plan {
        if round < until {
            return tag;
        }
    }
    plan.last().map_or("", |&(tag, _)| tag)
}

impl NodeProgram for Staged {
    type Msg = Ping;
    fn on_round(&mut self, ctx: &mut RoundCtx<'_, Ping>) {
        self.round = ctx.round() + 1;
        if !self.pinged {
            self.pinged = true;
            for p in 0..ctx.degree() {
                ctx.send(p, Ping);
            }
        }
    }
    fn is_done(&self) -> bool {
        self.round >= self.done_at
    }
    fn stage_tag(&self) -> &'static str {
        plan_tag(&self.plan, self.round)
    }
}

/// The tag pool: includes `""` (abstains from the census entirely).
const TAGS: [&str; 4] = ["", "a", "b", "c"];

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Attribution equals the naive per-round model, and the counts
    /// partition `rounds` whenever any node reports a tag every round.
    #[test]
    fn census_matches_naive_model_on_random_schedules(
        n in 1usize..10,
        pairs in proptest::collection::vec((0usize..10, 0usize..10), 0..20),
        raw_plans in proptest::collection::vec(
            proptest::collection::vec((0usize..TAGS.len(), 1u64..8), 1..4),
            1..10,
        ),
        done_at in 3u64..20,
    ) {
        let mut seen = std::collections::HashSet::new();
        let mut edges = Vec::new();
        for (a, b) in pairs {
            let (a, b) = (a % n, b % n);
            if a != b && seen.insert((a.min(b), a.max(b))) {
                edges.push((a, b, 1u64));
            }
        }

        // Fixed per-node timetables: tag i runs for `len` rounds. Node v
        // uses raw_plans[v % len(raw_plans)] shifted by v so neighbors lag
        // each other (the laggard case the docs call out).
        let plans: Vec<Vec<(&'static str, u64)>> = (0..n)
            .map(|v| {
                let raw = &raw_plans[v % raw_plans.len()];
                let mut acc = v as u64; // stagger: later nodes lag behind
                let mut plan = Vec::new();
                for &(t, len) in raw {
                    acc += len;
                    plan.push((TAGS[t], acc));
                }
                plan
            })
            .collect();

        let topo = Topology::new(n, &edges).unwrap();
        let mk_plans = plans.clone();
        let mut net = Network::new(topo, move |i: NodeInfo<'_>| Staged {
            plan: mk_plans[i.id].clone(),
            round: 0,
            done_at,
            pinged: false,
        });
        let stats = net.run(&RunConfig::congest()).unwrap();

        // Naive model: replay the timetables round by round.
        let mut expected: BTreeMap<&'static str, u64> = BTreeMap::new();
        for r in 0..stats.rounds {
            let min_tag = plans
                .iter()
                .map(|p| plan_tag(p, r + 1))
                .filter(|t| !t.is_empty())
                .min();
            if let Some(t) = min_tag {
                *expected.entry(t).or_insert(0) += 1;
            }
        }
        prop_assert_eq!(&stats.rounds_by_stage, &expected);

        // Partition invariant: if some node reports a non-empty tag in
        // every round, the counts sum to the executed rounds exactly.
        let always_tagged = (0..stats.rounds)
            .all(|r| plans.iter().any(|p| !plan_tag(p, r + 1).is_empty()));
        let total: u64 = stats.rounds_by_stage.values().sum();
        if always_tagged {
            prop_assert_eq!(total, stats.rounds, "census must partition the rounds");
        } else {
            prop_assert!(total <= stats.rounds);
        }
    }
}

/// A message that under-declares its bandwidth cost.
#[derive(Clone, Debug)]
struct Weightless;
impl Message for Weightless {
    fn words(&self) -> u32 {
        0 // violates the documented `words() >= 1` contract
    }
    // One physical word, matching the release-mode clamped charge.
    fn encode(&self, out: &mut congest_sim::WireWriter<'_>) {
        out.word(0);
    }
    fn decode(r: &mut congest_sim::WireReader<'_>) -> Self {
        r.word();
        Weightless
    }
}

struct SendOnce {
    fire: bool,
    sent: bool,
}
impl NodeProgram for SendOnce {
    type Msg = Weightless;
    fn on_round(&mut self, ctx: &mut RoundCtx<'_, Weightless>) {
        if self.fire && !self.sent {
            ctx.send(0, Weightless);
        }
        self.sent = true;
    }
    fn is_done(&self) -> bool {
        self.sent
    }
}

/// `Message::words` contract: zero-word messages panic in debug builds and
/// are clamped to one word in release builds, so bandwidth accounting can
/// never be dodged (satellite of the `msg.words().max(1)` fix).
#[test]
#[cfg_attr(debug_assertions, should_panic(expected = "Message::words() returned 0"))]
fn zero_word_messages_violate_the_contract() {
    let topo = Topology::new(2, &[(0, 1, 1)]).unwrap();
    let mut net = Network::new(topo, |i: NodeInfo<'_>| SendOnce { fire: i.id == 0, sent: false });
    let stats = net.run(&RunConfig::congest()).unwrap();
    // Release builds reach here: the charge was clamped, not zero.
    assert_eq!(stats.messages, 1);
    assert_eq!(stats.words, 1);
    assert_eq!(stats.peak_edge_words, 1);
}
