//! Edge-case tests for the nested interval labels of Stage C: singletons,
//! zero-sized children, boundary routing, and the ancestor-containment
//! property (the root's interval covers every descendant's).

use dmst_core::intervals::{assign_children, route};

#[test]
fn singleton_leaf_owns_exactly_its_slot() {
    // A leaf has no children: its interval is just its own slot.
    let ivs = assign_children(17, &[]);
    assert!(ivs.is_empty());
    assert_eq!(route(&ivs, 17), None);
    assert_eq!(route(&ivs, 18), None);
}

#[test]
fn single_child_takes_the_whole_remainder() {
    let ivs = assign_children(0, &[9]);
    assert_eq!(ivs, vec![(1, 9)]);
    for dest in 1..10 {
        assert_eq!(route(&ivs, dest), Some(0));
    }
    assert_eq!(route(&ivs, 0), None);
    assert_eq!(route(&ivs, 10), None);
}

#[test]
fn zero_sized_children_never_capture_routes() {
    // Subtree sizes are always >= 1 in the algorithm, but the helper must
    // stay well-defined for empty intervals: they occupy no slots.
    let ivs = assign_children(0, &[0, 3, 0, 2, 0]);
    assert_eq!(ivs, vec![(1, 0), (1, 3), (4, 0), (4, 2), (6, 0)]);
    assert_eq!(route(&ivs, 1), Some(1), "zero-width child must not shadow its sibling");
    assert_eq!(route(&ivs, 4), Some(3));
    assert_eq!(route(&ivs, 6), None);
}

#[test]
fn boundary_slots_route_to_the_correct_side() {
    let ivs = assign_children(100, &[5, 5]);
    assert_eq!(ivs, vec![(101, 5), (106, 5)]);
    assert_eq!(route(&ivs, 105), Some(0), "last slot of the first child");
    assert_eq!(route(&ivs, 106), Some(1), "first slot of the second child");
    assert_eq!(route(&ivs, 110), Some(1), "last slot of the last child");
    assert_eq!(route(&ivs, 111), None, "one past the end");
    assert_eq!(route(&ivs, 100), None, "owner slot");
    assert_eq!(route(&ivs, 99), None, "before the span");
}

#[test]
fn large_starts_do_not_overflow() {
    let start = u64::MAX - 100;
    let ivs = assign_children(start, &[40, 59]);
    assert_eq!(ivs, vec![(start + 1, 40), (start + 41, 59)]);
    assert_eq!(route(&ivs, u64::MAX - 1), Some(1));
    assert_eq!(route(&ivs, start), None);
}

/// Recursively assigns intervals over an explicit tree and returns every
/// vertex's `(start, total_size)` interval, where `total_size` counts the
/// vertex itself plus all descendants.
fn label_tree(children: &[Vec<usize>], v: usize, start: u64, out: &mut Vec<(u64, u64)>) -> u64 {
    let sizes: Vec<u64> = children[v]
        .iter()
        .map(|&c| {
            // Pre-compute subtree sizes with a probe pass.
            fn size(children: &[Vec<usize>], v: usize) -> u64 {
                1 + children[v].iter().map(|&c| size(children, c)).sum::<u64>()
            }
            size(children, c)
        })
        .collect();
    let ivs = assign_children(start, &sizes);
    let mut total = 1;
    for (&(cs, clen), &c) in ivs.iter().zip(&children[v]) {
        let sub = label_tree(children, c, cs, out);
        assert_eq!(sub, clen, "child interval must equal its subtree size");
        total += sub;
    }
    out[v] = (start, total);
    total
}

#[test]
fn root_interval_covers_all_descendants() {
    // A small irregular tree:
    //         0
    //       / | \
    //      1  2  3
    //     /|     |
    //    4 5     6
    //            |
    //            7
    let children =
        vec![vec![1, 2, 3], vec![4, 5], vec![], vec![6], vec![], vec![], vec![7], vec![]];
    let n = children.len();
    let mut iv = vec![(0u64, 0u64); n];
    let total = label_tree(&children, 0, 0, &mut iv);
    assert_eq!(total, n as u64);
    assert_eq!(iv[0], (0, n as u64), "root owns [0, n)");

    // Ancestor containment: every vertex's interval contains each child's,
    // hence (inductively) all descendants'.
    for v in 0..n {
        let (vs, vlen) = iv[v];
        for &c in &children[v] {
            let (cs, clen) = iv[c];
            assert!(
                vs < cs && cs + clen <= vs + vlen,
                "child {c} interval {:?} escapes parent {v} interval {:?}",
                iv[c],
                iv[v]
            );
        }
    }

    // Sibling disjointness at every vertex.
    for siblings in &children {
        for (i, &a) in siblings.iter().enumerate() {
            for &b in &siblings[i + 1..] {
                let (asv, alen) = iv[a];
                let (bsv, blen) = iv[b];
                assert!(asv + alen <= bsv || bsv + blen <= asv, "siblings {a} and {b} overlap");
            }
        }
    }

    // Every non-root slot is routable hop-by-hop from the root to its
    // owner: simulate the Stage C/D routing loop.
    for target in 1..n as u64 {
        let mut v = 0usize;
        let mut hops = 0;
        while iv[v].0 != target {
            let sizes: Vec<(u64, u64)> = children[v].iter().map(|&c| iv[c]).collect();
            let next = route(&sizes, target)
                .unwrap_or_else(|| panic!("slot {target} unroutable from vertex {v}"));
            v = children[v][next];
            hops += 1;
            assert!(hops <= n, "routing loop");
        }
    }
}
