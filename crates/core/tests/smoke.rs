//! End-to-end smoke tests of the full algorithm across graph families,
//! bandwidths, and k overrides.

use dmst_core::{analyze_forest, run_forest, run_mst, ElkinConfig, MergeControl};
use dmst_graphs::{generators as gen, mst, WeightedGraph};

fn check(g: &WeightedGraph, cfg: &ElkinConfig, label: &str) {
    let truth = mst::kruskal(g);
    let run = run_mst(g, cfg).unwrap_or_else(|e| panic!("{label}: {e}"));
    assert_eq!(run.edges, truth.edges, "{label}: wrong MST");
}

#[test]
fn families_default_config() {
    let r = &mut gen::WeightRng::new(42);
    let cases: Vec<(&str, WeightedGraph)> = vec![
        ("path", gen::path(40, r)),
        ("cycle", gen::cycle(41, r)),
        ("complete", gen::complete(24, r)),
        ("star", gen::star(30, r)),
        ("grid", gen::grid_2d(7, 9, r)),
        ("torus", gen::torus_2d(6, 7, r)),
        ("hypercube", gen::hypercube(6, r)),
        ("random", gen::random_connected(80, 160, r)),
        ("tree", gen::random_tree(64, r)),
        ("barbell", gen::barbell(8, 10, r)),
        ("lollipop", gen::lollipop(10, 15, r)),
        ("cliquepath", gen::path_of_cliques(8, 5, r)),
        ("caterpillar", gen::caterpillar(12, 3, r)),
        ("broom", gen::broom(5, 8, r)),
        ("circulant", gen::circulant(50, &[7, 13], r)),
        ("tiny2", gen::path(2, r)),
        ("tiny3", gen::cycle(3, r)),
    ];
    for (label, g) in cases {
        check(&g, &ElkinConfig::default(), label);
    }
}

#[test]
fn bandwidth_and_k_sweeps() {
    let r = &mut gen::WeightRng::new(7);
    let g = gen::random_connected(70, 200, r);
    for b in [1u32, 2, 4, 8] {
        check(&g, &ElkinConfig::with_bandwidth(b), &format!("b={b}"));
    }
    for k in [1u64, 2, 3, 8, 20, 64] {
        check(&g, &ElkinConfig::with_k(k), &format!("k={k}"));
    }
}

#[test]
fn uncontrolled_merge_still_correct() {
    let r = &mut gen::WeightRng::new(9);
    let g = gen::grid_2d(6, 6, r);
    let cfg = ElkinConfig { merge_control: MergeControl::Uncontrolled, ..Default::default() };
    check(&g, &cfg, "uncontrolled");
}

#[test]
fn forest_invariants() {
    let r = &mut gen::WeightRng::new(5);
    let g = gen::random_connected(100, 300, r);
    for k in [2u64, 4, 10, 16] {
        let run = run_forest(&g, &ElkinConfig::with_k(k)).unwrap();
        let report = analyze_forest(&g, &run);
        assert!(
            report.num_fragments as u64 <= (2 * 100) / k + 1,
            "k={k}: too many fragments: {report:?}"
        );
        assert!(report.max_diameter <= 24 * k, "k={k}: diameter too large: {report:?}");
    }
}

#[test]
fn single_and_tiny_graphs() {
    let r = &mut gen::WeightRng::new(1);
    let g1 = WeightedGraph::new(1, vec![]).unwrap();
    let run = run_mst(&g1, &ElkinConfig::default()).unwrap();
    assert!(run.edges.is_empty());
    check(&gen::path(2, r), &ElkinConfig::default(), "n=2");
}

#[test]
fn alternate_root() {
    let r = &mut gen::WeightRng::new(3);
    let g = gen::grid_2d(5, 5, r);
    let cfg = ElkinConfig { root: 24, ..Default::default() };
    check(&g, &cfg, "root=24");
}
