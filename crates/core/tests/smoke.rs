//! End-to-end smoke tests of the full algorithm across graph families,
//! bandwidths, and k overrides.

use dmst_core::{analyze_forest, run_forest, run_mst, ElkinConfig, MergeControl, ScheduleMode};
use dmst_graphs::{generators as gen, mst, WeightedGraph};

fn check(g: &WeightedGraph, cfg: &ElkinConfig, label: &str) {
    let truth = mst::kruskal(g);
    let run = run_mst(g, cfg).unwrap_or_else(|e| panic!("{label}: {e}"));
    assert_eq!(run.edges, truth.edges, "{label}: wrong MST");
    // The schedule mode may change round counts, never the tree: re-run
    // the same configuration in the other mode and demand the same MST.
    let other = match cfg.schedule_mode {
        ScheduleMode::Fixed => ScheduleMode::Adaptive,
        ScheduleMode::Adaptive => ScheduleMode::Fixed,
    };
    let alt = run_mst(g, &cfg.with_schedule_mode(other))
        .unwrap_or_else(|e| panic!("{label} ({other:?}): {e}"));
    assert_eq!(alt.edges, truth.edges, "{label} ({other:?}): wrong MST");
}

#[test]
fn families_default_config() {
    let r = &mut gen::WeightRng::new(42);
    let cases: Vec<(&str, WeightedGraph)> = vec![
        ("path", gen::path(40, r)),
        ("cycle", gen::cycle(41, r)),
        ("complete", gen::complete(24, r)),
        ("star", gen::star(30, r)),
        ("grid", gen::grid_2d(7, 9, r)),
        ("torus", gen::torus_2d(6, 7, r)),
        ("hypercube", gen::hypercube(6, r)),
        ("random", gen::random_connected(80, 160, r)),
        ("tree", gen::random_tree(64, r)),
        ("barbell", gen::barbell(8, 10, r)),
        ("lollipop", gen::lollipop(10, 15, r)),
        ("cliquepath", gen::path_of_cliques(8, 5, r)),
        ("caterpillar", gen::caterpillar(12, 3, r)),
        ("broom", gen::broom(5, 8, r)),
        ("circulant", gen::circulant(50, &[7, 13], r)),
        ("tiny2", gen::path(2, r)),
        ("tiny3", gen::cycle(3, r)),
    ];
    for (label, g) in cases {
        check(&g, &ElkinConfig::default(), label);
    }
}

#[test]
fn bandwidth_and_k_sweeps() {
    let r = &mut gen::WeightRng::new(7);
    let g = gen::random_connected(70, 200, r);
    for b in [1u32, 2, 4, 8] {
        check(&g, &ElkinConfig::with_bandwidth(b), &format!("b={b}"));
    }
    for k in [1u64, 2, 3, 8, 20, 64] {
        check(&g, &ElkinConfig::with_k(k), &format!("k={k}"));
    }
}

#[test]
fn uncontrolled_merge_still_correct() {
    let r = &mut gen::WeightRng::new(9);
    let g = gen::grid_2d(6, 6, r);
    let cfg = ElkinConfig { merge_control: MergeControl::Uncontrolled, ..Default::default() };
    check(&g, &cfg, "uncontrolled");
}

#[test]
fn sync_messages_only_in_adaptive_sync_phases() {
    let r = &mut gen::WeightRng::new(11);
    let g = gen::random_connected(80, 200, r);
    // Uncontrolled floods are Θ(n) worst case, so every adaptive phase
    // ends by sync: the b:sync tag must appear, and only there.
    let unc = ElkinConfig { merge_control: MergeControl::Uncontrolled, ..ElkinConfig::fixed() };
    let fixed = run_mst(&g, &unc).unwrap();
    assert_eq!(fixed.stats.messages_with_tag("b:sync"), 0, "fixed mode must never sync");
    let ada = run_mst(&g, &unc.with_schedule_mode(ScheduleMode::Adaptive)).unwrap();
    assert!(
        ada.stats.messages_with_tag("b:sync") > 0,
        "adaptive uncontrolled phases must end via the sync protocol"
    );
    assert!(
        ada.stats.rounds < fixed.stats.rounds / 2,
        "sync-ended phases must beat the Θ(n) flood windows ({} vs {})",
        ada.stats.rounds,
        fixed.stats.rounds
    );
}

#[test]
fn forest_invariants() {
    let r = &mut gen::WeightRng::new(5);
    let g = gen::random_connected(100, 300, r);
    for k in [2u64, 4, 10, 16] {
        let run = run_forest(&g, &ElkinConfig::with_k(k)).unwrap();
        let report = analyze_forest(&g, &run);
        assert!(
            report.num_fragments as u64 <= (2 * 100) / k + 1,
            "k={k}: too many fragments: {report:?}"
        );
        assert!(report.max_diameter <= 24 * k, "k={k}: diameter too large: {report:?}");
    }
}

#[test]
fn single_and_tiny_graphs() {
    let r = &mut gen::WeightRng::new(1);
    let g1 = WeightedGraph::new(1, vec![]).unwrap();
    let run = run_mst(&g1, &ElkinConfig::default()).unwrap();
    assert!(run.edges.is_empty());
    check(&gen::path(2, r), &ElkinConfig::default(), "n=2");
}

#[test]
fn alternate_root() {
    let r = &mut gen::WeightRng::new(3);
    let g = gen::grid_2d(5, 5, r);
    let cfg = ElkinConfig { root: 24, ..Default::default() };
    check(&g, &cfg, "root=24");
}
