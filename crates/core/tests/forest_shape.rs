//! Structural tests of the Controlled-GHS output on hand-crafted inputs
//! where the correct fragment shape is known exactly.

use dmst_core::{analyze_forest, run_forest, ElkinConfig, MergeControl};
use dmst_graphs::{generators as gen, WeightedGraph};

/// An ascending-weight path: at phase `i`, fragments are contiguous runs;
/// the matching limits each merge, so fragment sizes stay near `2^i`.
fn ascending_path(n: usize) -> WeightedGraph {
    let edges = (1..n).map(|v| (v - 1, v, v as u64)).collect();
    WeightedGraph::new(n, edges).expect("valid path")
}

#[test]
fn path_fragments_are_contiguous_runs() {
    let g = ascending_path(64);
    for k in [2u64, 4, 8, 16] {
        let run = run_forest(&g, &ElkinConfig::with_k(k)).unwrap();
        // Contiguity: vertices of one fragment form an interval of the path.
        for v in 1..64usize {
            let same = run.fragment_of[v] == run.fragment_of[v - 1];
            if !same {
                // A fragment boundary: no later vertex may rejoin an
                // earlier fragment (intervals never interleave on a path).
                let left = run.fragment_of[v - 1];
                assert!(
                    run.fragment_of[v..].iter().all(|&f| f != left),
                    "fragment {left} reappears after the boundary at {v} (k={k})"
                );
            }
        }
        let report = analyze_forest(&g, &run);
        assert!(report.min_size as u64 >= k / 2, "k={k}: fragments too small: {report:?}");
    }
}

#[test]
fn k_exceeding_n_yields_one_fragment() {
    let g = gen::random_connected(30, 60, &mut gen::WeightRng::new(8));
    let run = run_forest(&g, &ElkinConfig::with_k(512)).unwrap();
    let report = analyze_forest(&g, &run);
    assert_eq!(report.num_fragments, 1, "with k >> n the forest collapses to the MST");
    assert_eq!(report.tree_edges, 29);
}

#[test]
fn k_one_keeps_singletons() {
    let g = gen::random_connected(30, 60, &mut gen::WeightRng::new(9));
    let run = run_forest(&g, &ElkinConfig::with_k(1)).unwrap();
    let report = analyze_forest(&g, &run);
    assert_eq!(report.num_fragments, 30, "k = 1 skips Controlled-GHS entirely");
    assert_eq!(report.max_diameter, 0);
}

#[test]
fn uncontrolled_on_ascending_path_collapses_immediately() {
    // Every vertex's MWOE points left, so plain Boruvka merging builds a
    // single chain in phase 0 — Lemma 4.1's failure mode.
    let g = ascending_path(40);
    let cfg = ElkinConfig {
        k_override: Some(8),
        merge_control: MergeControl::Uncontrolled,
        stop_after_forest: true,
        ..ElkinConfig::default()
    };
    let run = run_forest(&g, &cfg).unwrap();
    let report = analyze_forest(&g, &run);
    assert_eq!(report.num_fragments, 1);
    assert_eq!(report.max_diameter, 39);
}

#[test]
fn two_cliques_one_bridge() {
    // The bridge is the heaviest edge by far, but MWOE selection is about
    // *outgoing* edges: once a clique has merged internally, the bridge is
    // its only way out and WILL be taken. With a single phase (k = 2) the
    // cliques are still fragmented internally and the bridge stays unused.
    let mut edges = Vec::new();
    for u in 0..5usize {
        for v in (u + 1)..5 {
            edges.push((u, v, 10 + (u * 5 + v) as u64));
            edges.push((5 + u, 5 + v, 40 + (u * 5 + v) as u64));
        }
    }
    let bridge = edges.len();
    edges.push((4, 5, 1_000_000));
    let g = WeightedGraph::new(10, edges).unwrap();

    // k = 2: one phase of singleton merges; every MWOE is intra-clique.
    let run = run_forest(&g, &ElkinConfig::with_k(2)).unwrap();
    assert_ne!(
        run.fragment_of[4], run.fragment_of[5],
        "one phase cannot cross the bridge: every singleton has a cheaper neighbor"
    );

    // k = 8: the cliques complete internally and then bridge: one fragment
    // spanning everything, with the bridge as a tree edge.
    let run = run_forest(&g, &ElkinConfig::with_k(8)).unwrap();
    let report = analyze_forest(&g, &run);
    assert_eq!(report.num_fragments, 1);
    assert_eq!(report.tree_edges, 9);
    let (u, v) = g.endpoints(bridge);
    assert!(
        run.parent_of[u] == Some(v) || run.parent_of[v] == Some(u),
        "the bridge must be a fragment-tree (hence MST) edge"
    );
}
