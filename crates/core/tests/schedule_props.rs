//! Property tests for the Stage B schedule: total coverage, window order,
//! and budget sanity over arbitrary parameters.

use proptest::prelude::*;

use dmst_core::{
    choose_k, choose_k_adaptive, MergeControl, Params, Schedule, ScheduleMode, Window,
};

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Every round in [t0, end) maps to exactly one slot; offsets advance
    /// by one; windows only change after their final round; phases are
    /// visited in order.
    #[test]
    fn locate_total_and_monotone(
        n in 2u64..100_000,
        k in 1u64..600,
        t0 in 0u64..10_000,
        uncontrolled in any::<bool>(),
    ) {
        let mode = if uncontrolled { MergeControl::Uncontrolled } else { MergeControl::Matched };
        let params = Params { n, h: 5, k, t0 };
        let s = Schedule::new(&params, mode, ScheduleMode::Fixed);
        prop_assert!(s.locate(t0.wrapping_sub(1)).is_none() || t0 == 0);
        prop_assert!(s.locate(s.end()).is_none());
        if k <= 1 {
            prop_assert_eq!(s.end(), t0);
            return Ok(());
        }
        let mut prev: Option<dmst_core::Slot> = None;
        // Sample the whole range when small, a strided subset when huge.
        let len = s.end() - s.start();
        let stride = (len / 5000).max(1);
        let mut r = s.start();
        while r < s.end() {
            let slot = s.locate(r).expect("round inside stage B");
            if stride == 1 {
                if let Some(p) = prev {
                    if p.phase == slot.phase && p.window == slot.window {
                        prop_assert_eq!(slot.offset, p.offset + 1);
                    } else {
                        prop_assert!(p.last);
                        prop_assert_eq!(slot.offset, 0);
                        prop_assert!(slot.phase >= p.phase);
                    }
                }
                prev = Some(slot);
            }
            r += stride;
        }
        // Phase budgets sum to the stage length.
        let total: u64 = (0..s.num_phases()).map(|i| s.phase_len(i)).sum();
        prop_assert_eq!(total, s.end() - s.start());
    }

    /// The first window of every phase is Announce with length 1, and the
    /// last is MergeFlood.
    #[test]
    fn phase_boundaries(n in 2u64..10_000, k in 2u64..200) {
        let s = Schedule::new(&Params { n, h: 1, k, t0: 0 }, MergeControl::Matched,
            ScheduleMode::Fixed);
        let mut start = 0;
        for i in 0..s.num_phases() {
            let first = s.locate(start).unwrap();
            prop_assert_eq!(first.phase, i);
            prop_assert_eq!(first.window, Window::Announce);
            prop_assert!(first.last, "announce is a single round");
            let last = s.locate(start + s.phase_len(i) - 1).unwrap();
            prop_assert_eq!(last.phase, i);
            prop_assert_eq!(last.window, Window::MergeFlood);
            prop_assert!(last.last);
            start += s.phase_len(i);
        }
    }

    /// Relative location (the adaptive executor's view) agrees with the
    /// phase layout: Announce at offset 0, every phase's nominal end is the
    /// merge flood, and offsets past the layout stay in the flood window.
    #[test]
    fn locate_rel_matches_layout(
        n in 2u64..10_000,
        k in 2u64..200,
        h in 0u64..500,
        uncontrolled in any::<bool>(),
    ) {
        let merge = if uncontrolled { MergeControl::Uncontrolled } else { MergeControl::Matched };
        let s = Schedule::new(&Params { n, h, k, t0: 0 }, merge, ScheduleMode::Adaptive);
        for i in 0..s.num_phases() {
            let len = s.phase_len(i);
            let first = s.locate_rel(i, 0);
            prop_assert_eq!(first.window, Window::Announce);
            prop_assert!(first.last);
            let last = s.locate_rel(i, len - 1);
            prop_assert_eq!(last.window, Window::MergeFlood);
            prop_assert!(last.last);
            let over = s.locate_rel(i, len + 3);
            prop_assert_eq!(over.window, Window::MergeFlood);
            prop_assert!(!over.last);
            // Adaptive phases are never longer than fixed ones on paper.
            let f = Schedule::new(&Params { n, h, k, t0: 0 }, merge, ScheduleMode::Fixed);
            prop_assert!(s.phase_len(i) <= f.phase_len(i));
        }
    }

    /// choose_k honors both regimes and never returns zero; the adaptive
    /// variant never exceeds it and ignores the H inflation.
    #[test]
    fn choose_k_sane(n in 1u64..1_000_000, h in 0u64..5_000, b in 1u32..64) {
        let k = choose_k(n, h, b);
        prop_assert!(k >= 1);
        prop_assert!(k >= h.min(n));
        // k is never larger than max(h, sqrt(n)) + 1.
        let sq = (n as f64).sqrt() as u64 + 1;
        prop_assert!(k <= h.max(sq));
        let ka = choose_k_adaptive(n, b);
        prop_assert!(ka >= 1);
        prop_assert!(ka <= k, "adaptive k must never exceed the paper's choice");
        prop_assert!(ka <= sq, "adaptive k stays at the sqrt term");
        if h <= ka {
            prop_assert_eq!(ka, k, "low-diameter regime: identical to the paper's choice");
        }
    }
}
