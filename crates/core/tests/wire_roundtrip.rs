//! Wire-format round-trip properties for the Elkin protocol: for every
//! [`Msg`] variant, `decode(encode(m)) == m` and the encoded length equals
//! the declared `words()` — the two halves of the length contract the
//! executor's word rings rely on (decode is self-delimiting; a mismatch
//! here would desynchronize every later message in a ring).
//!
//! Field domains mirror the protocol's: vertex ids, fragment ids, slots,
//! colors, and coarse ids are `< 2^32` (the simulator caps `n` at
//! `u32::MAX`, and the wire format packs them into tag words); weights and
//! key components carry full words.

use congest_sim::{Message, WireReader, WireWriter};
use dmst_core::{CandKey, Candidate, Msg};
use proptest::prelude::*;

/// Encode, check the length contract, decode, check identity and that the
/// reader consumed exactly the encoded span (ring-cursor advance).
fn check(m: &Msg) -> Result<(), TestCaseError> {
    let mut buf = Vec::new();
    let mut w = WireWriter::new(&mut buf);
    m.encode(&mut w);
    prop_assert_eq!(w.len(), m.words() as usize, "encoded length != words() for {:?}", m);
    let mut r = WireReader::new(&buf);
    let back = Msg::decode(&mut r);
    prop_assert_eq!(&back, m);
    prop_assert_eq!(r.consumed(), buf.len(), "decode consumed a different span for {:?}", m);
    Ok(())
}

/// Deterministically builds one of the 39 variants from raw components.
/// `small*` feed packed (tag-word) fields, `big*` feed full-word fields.
#[allow(clippy::too_many_arguments)]
fn build(
    sel: usize,
    small: u32,
    small2: u32,
    big: u64,
    big2: u64,
    big3: u64,
    flag: bool,
    flag2: bool,
) -> Msg {
    let id = u64::from(small);
    let id2 = u64::from(small2);
    let key = CandKey::new(big, big2, big3);
    match sel {
        0 => Msg::Bfs,
        1 => Msg::BfsChild,
        2 => Msg::SizeUp { size: id, height: big },
        3 => Msg::Params { n: id, h: big, k: big2, t0: big3 },
        4 => Msg::FragAnnounce { frag: id, me: big },
        5 => Msg::Probe { ttl: small },
        6 => Msg::MwoeUp { cand: flag.then_some(key), overflow: flag2 },
        7 => Msg::Participate,
        8 => Msg::MwoePath,
        9 => Msg::ConnectReq { child_frag: id },
        10 => Msg::KidsUp { has: flag },
        11 => Msg::ColorDown { color: id },
        12 => Msg::ColorCross { color: id },
        13 => Msg::ColorUp { color: id },
        14 => Msg::UnmatchedUp { child: flag.then_some(id) },
        15 => Msg::AcceptPath,
        16 => Msg::AcceptCross { parent_frag: id },
        17 => Msg::MatchedUp { partner: id },
        18 => Msg::StatusDown,
        19 => Msg::StatusCross,
        20 => Msg::MergePath,
        21 => Msg::MergeCross,
        22 => Msg::NewFrag { id },
        23 => Msg::FloodAck { phase: small },
        24 => Msg::SyncNoFlood { phase: small },
        25 => Msg::SyncUp { phase: small },
        26 => Msg::SyncStart { phase: small, start: big },
        27 => Msg::Interval { start: id, size: big },
        28 => Msg::Register { slot: id },
        29 => Msg::RegDone,
        30 => Msg::InitCoarse { id },
        31 => Msg::CoarseAnnounce { coarse: id, me: big },
        32 => Msg::FragMwoeUp { cand: flag.then_some((key, id2, big)) },
        33 => Msg::Candidate {
            rec: Candidate { key, src_coarse: big, dst_coarse: big2, src_slot: id },
        },
        34 => Msg::UpDone,
        35 => {
            Msg::Assign { dest_slot: big, new_coarse: big2, chosen: flag, done: flag2, next: big3 }
        }
        36 => Msg::NewCoarse { id: big, done: flag, next: big2 },
        37 => Msg::MarkPath,
        _ => Msg::MarkCross,
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 512, ..ProptestConfig::default() })]

    /// Every variant survives one encode/decode cycle and encodes exactly
    /// its declared word count.
    #[test]
    fn msg_roundtrip(
        sel in 0usize..39,
        small in any::<u32>(),
        small2 in any::<u32>(),
        big in any::<u64>(),
        big2 in any::<u64>(),
        big3 in any::<u64>(),
        flag in any::<bool>(),
        flag2 in any::<bool>(),
    ) {
        check(&build(sel, small, small2, big, big2, big3, flag, flag2))?;
    }

    /// Ring behavior: messages encoded back-to-back into one buffer (no
    /// per-message framing, exactly like an executor word ring) decode
    /// sequentially to the original sequence, each consuming its own span.
    #[test]
    fn msg_ring_roundtrip(
        sels in proptest::collection::vec(0usize..39, 1..8),
        small in any::<u32>(),
        small2 in any::<u32>(),
        big in any::<u64>(),
        big2 in any::<u64>(),
        big3 in any::<u64>(),
        flag in any::<bool>(),
        flag2 in any::<bool>(),
    ) {
        let msgs: Vec<Msg> =
            sels.iter().map(|&s| build(s, small, small2, big, big2, big3, flag, flag2)).collect();
        let mut ring = Vec::new();
        for m in &msgs {
            let mut w = WireWriter::new(&mut ring);
            m.encode(&mut w);
            prop_assert_eq!(w.len(), m.words() as usize);
        }
        let mut head = 0usize;
        for m in &msgs {
            let mut r = WireReader::new(&ring[head..]);
            prop_assert_eq!(&Msg::decode(&mut r), m);
            head += r.consumed();
        }
        prop_assert_eq!(head, ring.len());
    }
}
