//! Small integer helpers used by schedule formulas and analysis.

/// The iterated logarithm `log* n`: how many times `log2` must be applied to
/// `n` before the value drops to at most 1. `log_star(1) == 0`,
/// `log_star(2) == 1`, `log_star(16) == 3`, `log_star(65536) == 4`.
pub fn log_star(n: u64) -> u32 {
    let mut x = n;
    let mut count = 0;
    while x > 1 {
        x = ceil_log2(x);
        count += 1;
    }
    count
}

/// `ceil(log2 n)` for `n >= 1`; `ceil_log2(1) == 0`.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn ceil_log2(n: u64) -> u64 {
    assert!(n > 0, "log2 of zero");
    u64::from(64 - (n - 1).leading_zeros()).min(63)
}

/// Integer square root: the largest `r` with `r * r <= n`.
pub fn isqrt(n: u64) -> u64 {
    if n == 0 {
        return 0;
    }
    let mut r = (n as f64).sqrt() as u64;
    while r.checked_mul(r).is_none_or(|sq| sq > n) {
        r -= 1;
    }
    while (r + 1).checked_mul(r + 1).is_some_and(|sq| sq <= n) {
        r += 1;
    }
    r
}

/// Ceiling division for `u64`.
pub fn div_ceil(a: u64, b: u64) -> u64 {
    assert!(b > 0, "division by zero");
    a / b + u64::from(!a.is_multiple_of(b))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_star_values() {
        assert_eq!(log_star(1), 0);
        assert_eq!(log_star(2), 1);
        assert_eq!(log_star(4), 2);
        assert_eq!(log_star(16), 3);
        assert_eq!(log_star(65536), 4);
        assert_eq!(log_star(u64::MAX), 5);
    }

    #[test]
    fn ceil_log2_values() {
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(4), 2);
        assert_eq!(ceil_log2(5), 3);
        assert_eq!(ceil_log2(1 << 40), 40);
    }

    #[test]
    fn isqrt_values() {
        assert_eq!(isqrt(0), 0);
        assert_eq!(isqrt(1), 1);
        assert_eq!(isqrt(15), 3);
        assert_eq!(isqrt(16), 4);
        assert_eq!(isqrt(17), 4);
        assert_eq!(isqrt(u64::MAX), (1u64 << 32) - 1);
        for n in 0..2000u64 {
            let r = isqrt(n);
            assert!(r * r <= n && (r + 1) * (r + 1) > n);
        }
    }

    #[test]
    fn div_ceil_values() {
        assert_eq!(div_ceil(0, 3), 0);
        assert_eq!(div_ceil(1, 3), 1);
        assert_eq!(div_ceil(3, 3), 1);
        assert_eq!(div_ceil(4, 3), 2);
    }
}
