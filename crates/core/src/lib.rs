//! # dmst-core — Elkin's deterministic distributed MST algorithm
//!
//! A faithful implementation of *"A Simple Deterministic Distributed MST
//! Algorithm, with Near-Optimal Time and Message Complexities"* (Michael
//! Elkin, PODC 2017) as per-vertex message-passing programs over the
//! [`congest_sim`] simulator.
//!
//! The algorithm computes the (unique, tie-broken) minimum spanning tree in
//! the synchronous `CONGEST(b log n)` model in `O((D + sqrt(n/b)) log n)`
//! rounds using `O(m log n + n log n log* n)` messages (Theorems 3.1/3.2),
//! via:
//!
//! 1. an auxiliary BFS tree and global parameter agreement (Stage A);
//! 2. **Controlled-GHS** (paper §4): `ceil(log k)` phases of bounded-radius
//!    MWOE probing, Cole–Vishkin 3-coloring of the fragment forest
//!    ([`cv`]), maximal matching, and merge floods, yielding an
//!    `(O(n/k), O(k))` base MST forest (Theorem 4.3, standalone via
//!    [`run_forest`]);
//! 3. interval labeling of the BFS tree for point-to-point routing
//!    (Stage C);
//! 4. Borůvka phases over the base forest with pipelined, filtered
//!    candidate upcasts to the BFS root, root-local fragment-graph merging,
//!    and interval-routed answers (Stage D).
//!
//! ## Quick start
//!
//! ```
//! use dmst_core::{run_mst, ElkinConfig};
//! use dmst_graphs::{generators, mst};
//!
//! let g = generators::torus_2d(6, 6, &mut generators::WeightRng::new(1));
//! let run = run_mst(&g, &ElkinConfig::default())?;
//! assert_eq!(run.edges, mst::kruskal(&g).edges);
//! println!("rounds = {}, messages = {}", run.stats.rounds, run.stats.messages);
//! # Ok::<(), dmst_core::RunError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod candidate;
mod config;
pub mod cv;
mod forest;
pub mod fraggraph;
pub mod intervals;
pub mod leader;
mod msg;
mod node;
mod runner;
mod schedule;
pub mod util;

pub use candidate::{better, CandKey, Candidate};
pub use config::ElkinConfig;
pub use forest::{analyze_forest, ForestReport};
pub use msg::Msg;
pub use node::{ElkinNode, Milestones};
pub use runner::{run_forest, run_mst, ForestRun, MstRun, RunError, StageProfile};
pub use schedule::{
    choose_k, choose_k_adaptive, ExchangeKind, MergeControl, Params, Schedule, ScheduleMode, Slot,
    Window,
};
