//! Candidate edges: the tie-broken keys and records that flow through
//! convergecasts and pipelines.

/// The unique-MST comparison key of an edge: `(weight, min endpoint, max
/// endpoint)`, compared lexicographically. Mirrors
/// `dmst_graphs::EdgeKey`, but lives here so protocol messages do not drag
/// the graph crate into their representation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CandKey {
    /// Raw edge weight.
    pub weight: u64,
    /// Smaller endpoint vertex id.
    pub lo: u64,
    /// Larger endpoint vertex id.
    pub hi: u64,
}

impl CandKey {
    /// Key for the edge `(a, b)` with weight `w`; endpoint order is
    /// normalized.
    pub fn new(w: u64, a: u64, b: u64) -> Self {
        Self { weight: w, lo: a.min(b), hi: a.max(b) }
    }
}

/// A minimum-weight-outgoing-edge candidate produced inside a base fragment
/// during a Borůvka-on-top phase: the lightest edge leaving the *coarse*
/// fragment that the base fragment belongs to, found among the base
/// fragment's vertices (paper §3).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Candidate {
    /// Tie-broken edge key; also identifies the physical edge.
    pub key: CandKey,
    /// Coarse fragment id of the side the candidate was found on.
    pub src_coarse: u64,
    /// Coarse fragment id on the other side of the edge.
    pub dst_coarse: u64,
    /// Interval slot of the base fragment's root — the routing address the
    /// BFS root uses to answer (and to mark the edge chosen).
    pub src_slot: u64,
}

/// Keep the better (smaller-keyed) of two optional candidates.
pub fn better(a: Option<Candidate>, b: Option<Candidate>) -> Option<Candidate> {
    match (a, b) {
        (None, x) | (x, None) => x,
        (Some(x), Some(y)) => Some(if x.key <= y.key { x } else { y }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_normalizes_and_orders() {
        let a = CandKey::new(3, 9, 2);
        assert_eq!(a, CandKey { weight: 3, lo: 2, hi: 9 });
        assert!(CandKey::new(2, 100, 200) < a);
        assert!(CandKey::new(3, 1, 9) < a);
        assert!(CandKey::new(3, 2, 8) < a);
    }

    #[test]
    fn better_prefers_smaller_key() {
        let mk =
            |w| Candidate { key: CandKey::new(w, 0, 1), src_coarse: 0, dst_coarse: 1, src_slot: 0 };
        assert_eq!(better(None, None), None);
        assert_eq!(better(Some(mk(5)), None).unwrap().key.weight, 5);
        assert_eq!(better(Some(mk(5)), Some(mk(3))).unwrap().key.weight, 3);
        assert_eq!(better(Some(mk(2)), Some(mk(3))).unwrap().key.weight, 2);
    }
}
