//! Run configuration for the distributed MST algorithm.

use crate::schedule::{MergeControl, ScheduleMode};

/// Configuration of one algorithm execution.
///
/// The defaults reproduce the paper's Theorem 3.1 setting — standard
/// CONGEST (`b = 1`), automatic `k`, matched merging, BFS root at vertex 0
/// — under the adaptive Stage B schedule ([`ScheduleMode::Adaptive`], the
/// default since PR 3; it never changes the output MST). Use
/// [`ElkinConfig::fixed`] for the seed's padded worst-case windows.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ElkinConfig {
    /// The `b` of `CONGEST(b log n)` (Theorem 3.2). Must be positive.
    pub bandwidth: u32,
    /// Override the base-forest parameter `k` (experiments F5/A3 sweep it);
    /// `None` selects the paper's choice via
    /// [`choose_k`](crate::schedule::choose_k) (or
    /// [`choose_k_adaptive`](crate::schedule::choose_k_adaptive) under
    /// [`ScheduleMode::Adaptive`]). `k = 1` skips Controlled-GHS entirely
    /// (singleton base forest).
    pub k_override: Option<u64>,
    /// The designated BFS root (see DESIGN.md on the leader-election
    /// assumption).
    pub root: usize,
    /// Merge policy of the Controlled-GHS stage (ablation A1 sets
    /// [`MergeControl::Uncontrolled`]).
    pub merge_control: MergeControl,
    /// Stage B round-scheduling discipline (experiment A4 ablates it).
    /// [`ScheduleMode::Adaptive`] tightens the per-window constants, ends
    /// phases by a BFS-tree sync when that is cheaper than the worst-case
    /// flood window, and shrinks `k` on high-diameter inputs — without
    /// changing the output MST (conformance-tested in both modes).
    pub schedule_mode: ScheduleMode,
    /// Stop after Stage B, leaving the `(O(n/k), O(k))` base forest as the
    /// output (Theorem 4.3 standalone; used by
    /// [`run_forest`](crate::run_forest)).
    pub stop_after_forest: bool,
    /// Simulator worker shards (forwarded to
    /// [`RunConfig::shards`](congest_sim::RunConfig)): `1` (the default)
    /// runs sequentially, `0` auto-sizes to the machine. Purely a wallclock
    /// knob — results are bit-identical for every value.
    pub shards: u32,
}

impl Default for ElkinConfig {
    fn default() -> Self {
        Self {
            bandwidth: 1,
            k_override: None,
            root: 0,
            merge_control: MergeControl::Matched,
            schedule_mode: ScheduleMode::Adaptive,
            stop_after_forest: false,
            shards: 1,
        }
    }
}

impl ElkinConfig {
    /// Paper defaults (Theorem 3.1).
    pub fn new() -> Self {
        Self::default()
    }

    /// `CONGEST(b log n)` variant (Theorem 3.2).
    ///
    /// # Panics
    ///
    /// Panics if `b == 0`.
    pub fn with_bandwidth(b: u32) -> Self {
        assert!(b > 0, "bandwidth must be positive");
        Self { bandwidth: b, ..Self::default() }
    }

    /// Fixes the base-forest parameter `k`.
    pub fn with_k(k: u64) -> Self {
        Self { k_override: Some(k.max(1)), ..Self::default() }
    }

    /// Adaptive Stage B scheduling (tight windows, sync-ended phases,
    /// adaptive-k) with paper defaults otherwise. Since PR 3 this *is*
    /// the default; the builder is kept for call sites that want to be
    /// explicit about it.
    pub fn adaptive() -> Self {
        Self { schedule_mode: ScheduleMode::Adaptive, ..Self::default() }
    }

    /// The seed's fixed Stage B scheduling (padded worst-case windows,
    /// `k = max(sqrt(n/b), H)`) with paper defaults otherwise.
    pub fn fixed() -> Self {
        Self { schedule_mode: ScheduleMode::Fixed, ..Self::default() }
    }

    /// Returns this configuration with the given schedule mode.
    #[must_use]
    pub fn with_schedule_mode(self, mode: ScheduleMode) -> Self {
        Self { schedule_mode: mode, ..self }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = ElkinConfig::new();
        assert_eq!(c.bandwidth, 1);
        assert_eq!(c.k_override, None);
        assert_eq!(c.merge_control, MergeControl::Matched);
    }

    #[test]
    fn builders() {
        assert_eq!(ElkinConfig::with_bandwidth(4).bandwidth, 4);
        assert_eq!(ElkinConfig::with_k(0).k_override, Some(1));
        assert_eq!(ElkinConfig::adaptive().schedule_mode, ScheduleMode::Adaptive);
        assert_eq!(ElkinConfig::fixed().schedule_mode, ScheduleMode::Fixed);
        assert_eq!(
            ElkinConfig::with_k(7).with_schedule_mode(ScheduleMode::Fixed).k_override,
            Some(7)
        );
        // Adaptive has soaked (PR 2 -> PR 3) and is now the default.
        assert_eq!(ElkinConfig::default().schedule_mode, ScheduleMode::Adaptive);
    }
}
