//! Cole–Vishkin deterministic color reduction on rooted forests \[CV86\].
//!
//! Section 4 of the paper 3-colors the candidate fragment graph `G'_i` (a
//! rooted forest: every fragment points at the fragment behind its MWOE) in
//! `log* n + O(1)` communication steps, then extracts a maximal matching in 3
//! more steps. This module holds the *pure* per-vertex color transitions;
//! the distributed driver (who talks to whom, in which round) lives in the
//! Controlled-GHS stage of the node program.
//!
//! The scheme:
//!
//! 1. **Bit-ladder steps** ([`cv_step`] / [`cv_step_root`]): with colors in
//!    `0..K`, a vertex takes `2 * i + bit_i(c)` where `i` is the lowest bit
//!    position at which its color differs from its parent's. Colors drop to
//!    `0..2*ceil(log2 K)`; iterating reaches the fixed point `K = 6` after
//!    [`steps_to_six`] iterations.
//! 2. **Shift-down** ([`shift_down`] / [`shift_down_root`]): every non-root
//!    adopts its parent's previous color, making all siblings same-colored;
//!    roots pick a fresh color. Properness is preserved.
//! 3. **Recolor** ([`recolor`]): one color class `c ∈ {3, 4, 5}` at a time
//!    moves into `{0, 1, 2}`, avoiding the (single) parent color and the
//!    (uniform, equal to the vertex's own pre-shift color) child color.
//!
//! All functions are deterministic and total; properness invariants are
//! exercised by unit tests and a whole-forest property test.

/// Number of bit-ladder iterations needed to bring colors from `0..initial`
/// down to `0..=5`. Every vertex must run the *same* number of iterations,
/// so the count depends only on the public bound (`n`), not on local state.
pub fn steps_to_six(initial: u64) -> u32 {
    let mut k = initial.max(1);
    let mut steps = 0;
    while k > 6 {
        k = 2 * crate::util::ceil_log2(k);
        steps += 1;
    }
    steps
}

/// One bit-ladder step for a vertex with a parent. Requires `my != parent`
/// (a proper coloring); produces colors that remain proper.
///
/// # Panics
///
/// Panics (debug) if `my == parent`, which would mean the input coloring was
/// not proper.
pub fn cv_step(my: u64, parent: u64) -> u64 {
    debug_assert_ne!(my, parent, "Cole-Vishkin requires a proper input coloring");
    let i = u64::from((my ^ parent).trailing_zeros());
    2 * i + ((my >> i) & 1)
}

/// One bit-ladder step for a root: it pretends its parent's color is its own
/// with bit 0 flipped, so it lands in `{0, 1}` and stays distinct from any
/// child that branched at bit 0.
pub fn cv_step_root(my: u64) -> u64 {
    my & 1
}

/// Shift-down for a non-root: adopt the parent's *previous* color.
pub fn shift_down(parent_prev: u64) -> u64 {
    parent_prev
}

/// Shift-down for a root: pick the smallest color in `{0, 1, 2}` different
/// from its previous color, so it cannot collide with its children (who all
/// adopt that previous color).
pub fn shift_down_root(my_prev: u64) -> u64 {
    (0..3).find(|&c| c != my_prev).expect("three candidates, at most one excluded")
}

/// Recoloring of class `c` after a shift-down: a vertex whose current color
/// is in `{3, 4, 5}` picks the smallest color in `{0, 1, 2}` avoiding its
/// parent's current color and its children's (uniform) current color.
///
/// `children` is `None` for leaves.
pub fn recolor(parent: Option<u64>, children: Option<u64>) -> u64 {
    (0..3)
        .find(|&c| Some(c) != parent && Some(c) != children)
        .expect("three candidates, at most two excluded")
}

/// Reference driver: runs the full reduction on an explicitly represented
/// rooted forest (`parent[v] == usize::MAX` for roots) starting from the
/// coloring `color[v] = v`. Returns a proper 3-coloring.
///
/// The distributed implementation in the Controlled-GHS stage performs
/// exactly these transitions, one communication step per iteration; this
/// function exists so tests can cross-check the distributed run against the
/// centralized one.
///
/// # Panics
///
/// Panics if `parent` contains an out-of-range entry or a self-loop.
pub fn three_color_forest(parent: &[usize]) -> Vec<u64> {
    let n = parent.len();
    for (v, &p) in parent.iter().enumerate() {
        assert!(p == usize::MAX || (p < n && p != v), "invalid parent pointer at {v}");
    }
    let mut color: Vec<u64> = (0..n as u64).collect();
    for _ in 0..steps_to_six(n as u64) {
        let prev = color.clone();
        for v in 0..n {
            color[v] = if parent[v] == usize::MAX {
                cv_step_root(prev[v])
            } else {
                cv_step(prev[v], prev[parent[v]])
            };
        }
    }
    // 6 -> 3: for each high class, shift down then clear that class.
    for class in 3..6 {
        let prev = color.clone();
        for v in 0..n {
            color[v] = if parent[v] == usize::MAX {
                shift_down_root(prev[v])
            } else {
                shift_down(prev[parent[v]])
            };
        }
        let cur = color.clone();
        for v in 0..n {
            if cur[v] == class {
                let p = (parent[v] != usize::MAX).then(|| cur[parent[v]]);
                // After shift-down all children of v carry v's pre-shift
                // color, which equals what v just handed down: prev[v].
                let has_children = parent.contains(&v);
                color[v] = recolor(p, has_children.then_some(prev[v]));
            }
        }
    }
    color
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_proper(parent: &[usize], color: &[u64]) {
        for (v, &p) in parent.iter().enumerate() {
            if p != usize::MAX {
                assert_ne!(color[v], color[p], "vertex {v} collides with parent {p}");
            }
        }
    }

    #[test]
    fn steps_to_six_values() {
        assert_eq!(steps_to_six(1), 0);
        assert_eq!(steps_to_six(6), 0);
        assert_eq!(steps_to_six(7), 1); // 7 -> 2*ceil(log2 7) = 6
        assert_eq!(steps_to_six(64), 3); // 64 -> 12 -> 8 -> 6
    }

    #[test]
    fn cv_step_keeps_properness() {
        for my in 0..64u64 {
            for parent in 0..64u64 {
                if my == parent {
                    continue;
                }
                let a = cv_step(my, parent);
                // Simulate the parent against an arbitrary grandparent.
                for gp in 0..64u64 {
                    if gp == parent {
                        continue;
                    }
                    let b = cv_step(parent, gp);
                    assert_ne!(a, b, "collision: child({my},{parent}) vs parent({parent},{gp})");
                }
                let b_root = cv_step_root(parent);
                assert_ne!(a, b_root, "collision against root parent ({my}, {parent})");
            }
        }
    }

    #[test]
    fn chain_reduces_to_three() {
        let n = 200;
        let parent: Vec<usize> = (0..n).map(|v| if v == 0 { usize::MAX } else { v - 1 }).collect();
        let color = three_color_forest(&parent);
        assert_proper(&parent, &color);
        assert!(color.iter().all(|&c| c < 3));
    }

    #[test]
    fn stars_and_forests() {
        // Star: root 0, all others children of 0.
        let parent: Vec<usize> =
            std::iter::once(usize::MAX).chain(std::iter::repeat(0)).take(50).collect();
        let color = three_color_forest(&parent);
        assert_proper(&parent, &color);
        assert!(color.iter().all(|&c| c < 3));

        // Forest of two chains.
        let p2 = vec![usize::MAX, 0, 1, usize::MAX, 3, 4];
        let color = three_color_forest(&p2);
        assert_proper(&p2, &color);
        assert!(color.iter().all(|&c| c < 3));
    }

    #[test]
    fn singleton_and_empty() {
        assert_eq!(three_color_forest(&[]), Vec::<u64>::new());
        let c = three_color_forest(&[usize::MAX]);
        assert!(c[0] < 3);
    }
}
