//! Offline analysis of a Controlled-GHS base forest: the invariants of the
//! paper's Theorem 4.3 and Lemmas 4.1/4.2.

use std::collections::BTreeMap;

use dmst_graphs::{mst, WeightedGraph};

use crate::runner::ForestRun;

/// Measured properties of a base MST forest, checked against the paper's
/// guarantees by [`analyze_forest`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ForestReport {
    /// Number of fragments.
    pub num_fragments: usize,
    /// Largest fragment strong diameter (hops within the fragment tree).
    pub max_diameter: u64,
    /// Smallest fragment size in vertices.
    pub min_size: usize,
    /// Total fragment-tree edges (each is an MST edge).
    pub tree_edges: usize,
}

/// Validates a [`ForestRun`] against graph `g` and reports its shape.
///
/// Checks performed (failures panic with a diagnostic — these are algorithm
/// invariants, not input conditions):
///
/// * parent pointers form forests consistent with `fragment_of`;
/// * every fragment is connected and has exactly one root;
/// * every fragment-tree edge belongs to the canonical MST of `g`
///   (fragments are *MST fragments*, §2 of the paper).
///
/// # Panics
///
/// Panics if any invariant fails.
pub fn analyze_forest(g: &WeightedGraph, run: &ForestRun) -> ForestReport {
    let n = g.num_nodes();
    assert_eq!(run.fragment_of.len(), n);
    assert_eq!(run.parent_of.len(), n);

    // The canonical MST as an edge-endpoint set.
    let truth = mst::kruskal(g);
    let mut mst_pairs = std::collections::BTreeSet::new();
    for &e in &truth.edges {
        let (u, v) = g.endpoints(e);
        mst_pairs.insert((u.min(v), u.max(v)));
    }

    // Fragment membership and tree edges.
    let mut members: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
    for (v, &f) in run.fragment_of.iter().enumerate() {
        members.entry(f).or_default().push(v);
    }
    let mut tree_edges = 0;
    for (v, parent) in run.parent_of.iter().enumerate() {
        match parent {
            None => {
                // Fragment roots carry their own id.
                assert_eq!(
                    run.fragment_of[v], v as u64,
                    "rootless vertex {v} does not own its fragment id"
                );
            }
            Some(p) => {
                assert_eq!(
                    run.fragment_of[v], run.fragment_of[*p],
                    "tree edge ({v}, {p}) crosses fragments"
                );
                assert!(
                    mst_pairs.contains(&(v.min(*p), v.max(*p))),
                    "fragment tree edge ({v}, {p}) is not an MST edge"
                );
                tree_edges += 1;
            }
        }
    }

    // Per-fragment connectivity + diameter via BFS over tree adjacency.
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (v, parent) in run.parent_of.iter().enumerate() {
        if let Some(p) = parent {
            adj[v].push(*p);
            adj[*p].push(v);
        }
    }
    let mut max_diameter = 0u64;
    let mut min_size = usize::MAX;
    for (f, verts) in &members {
        min_size = min_size.min(verts.len());
        let root = *f as usize;
        assert!(verts.contains(&root), "fragment {f} does not contain its root");
        // Double sweep on a tree gives the exact diameter.
        let (far, _) = bfs_far(&adj, root);
        let (_, diam) = bfs_far(&adj, far);
        max_diameter = max_diameter.max(diam);
    }
    if n == 0 {
        min_size = 0;
    }

    ForestReport { num_fragments: members.len(), max_diameter, min_size, tree_edges }
}

/// BFS within one fragment's tree adjacency; returns the farthest vertex and
/// its distance. Ordered map keeps the sweep deterministic.
fn bfs_far(adj: &[Vec<usize>], src: usize) -> (usize, u64) {
    let mut dist: BTreeMap<usize, u64> = BTreeMap::new();
    dist.insert(src, 0);
    let mut queue = std::collections::VecDeque::from([src]);
    let (mut far, mut fd) = (src, 0);
    while let Some(v) = queue.pop_front() {
        let d = dist[&v];
        if d > fd {
            far = v;
            fd = d;
        }
        for &u in &adj[v] {
            if let std::collections::btree_map::Entry::Vacant(e) = dist.entry(u) {
                e.insert(d + 1);
                queue.push_back(u);
            }
        }
    }
    (far, fd)
}
