//! Global parameters and the fixed round schedule of the Controlled-GHS
//! stage.
//!
//! The synchronous model gives every vertex a shared clock, so once the BFS
//! root has broadcast `(n, H, k, t0)` (end of Stage A), every vertex computes
//! the *same* schedule locally and knows, for any absolute round, which
//! sub-step of which Controlled-GHS phase is executing. This realizes the
//! paper's implicit phase synchronization with explicit budget constants.
//!
//! Per phase `i` (participation radius `p = 2^i`), the windows are:
//!
//! | window | length | purpose (paper §4) |
//! |---|---|---|
//! | Announce | `1` | fragment-id refresh to neighbors |
//! | Probe | `2p + 2` | depth-budgeted MWOE convergecast + participation test |
//! | Connect | `p + 3` | `Participate` flood, argmin downcast, `ConnectReq` over the MWOE |
//! | Kids | `p + 2` | convergecast: does the fragment have foreign children? |
//! | Exchange × X | `2p + 3` each | Cole–Vishkin iterations (`X = steps_to_six(n) + 6`) |
//! | Collect/Accept/Status × 3 | `p+2`, `2p+4`, `p+3` | maximal matching, one color class per step |
//! | MergeGo | `p + 2` (`2p + 4` uncontrolled) | unmatched fragments fire their MWOE |
//! | MergeFlood | `6p + 6` (`n + 2p + 6` uncontrolled) | new-fragment flood and re-orientation |
//!
//! The **uncontrolled** mode (ablation A1) skips coloring and matching
//! entirely and lets every fragment merge along its MWOE; its flood window
//! must cover `Θ(n)` because without matching the fragment diameter is
//! unbounded — that blow-up is exactly what the ablation demonstrates.

use crate::cv::steps_to_six;
use crate::util::{ceil_log2, isqrt};

/// Whether Controlled-GHS merges via maximal matching (the paper) or merges
/// every fragment along its MWOE (ablation A1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum MergeControl {
    /// Paper behaviour: 3-coloring + maximal matching bounds fragment
    /// diameter by `O(2^i)` per phase.
    #[default]
    Matched,
    /// Ablation: pure Borůvka merging; diameter may blow up to `Θ(n)`.
    Uncontrolled,
}

/// The globally agreed parameters broadcast by the BFS root at the end of
/// Stage A.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Params {
    /// Number of vertices.
    pub n: u64,
    /// BFS tree height (`H <= D <= 2H`).
    pub h: u64,
    /// Base-forest parameter `k`.
    pub k: u64,
    /// Absolute round at which Stage B starts.
    pub t0: u64,
}

/// The paper's parameter choice (§3): `k = sqrt(n/b)` in the small-diameter
/// regime and `k = Θ(D)` in the large-diameter regime, implemented as
/// `max(sqrt(n/b), H)` with the BFS height `H` standing in for `D`
/// (`H <= D <= 2H`). Always at least 1.
pub fn choose_k(n: u64, h: u64, bandwidth: u32) -> u64 {
    let nb = n.div_euclid(u64::from(bandwidth.max(1))).max(1);
    isqrt(nb).max(h).max(1)
}

/// One scheduled window of a Controlled-GHS phase.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Window {
    /// Fragment-id refresh (1 round).
    Announce,
    /// Depth-budgeted probe + MWOE convergecast.
    Probe,
    /// Participate flood, argmin downcast, cross-edge connect.
    Connect,
    /// Foreign-children existence convergecast.
    Kids,
    /// One Cole–Vishkin exchange; see [`ExchangeKind`].
    Exchange(u32),
    /// Matching: collect unmatched children (for color class `c`).
    MatchCollect(u8),
    /// Matching: accept one child (for color class `c`).
    MatchAccept(u8),
    /// Matching: propagate new matched statuses (for color class `c`).
    MatchStatus(u8),
    /// Unmatched fragments fire their MWOE.
    MergeGo,
    /// New-fragment flood: ids + re-orientation.
    MergeFlood,
}

/// Semantic classification of an exchange index within the CV reduction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExchangeKind {
    /// Bit-ladder step ([`crate::cv::cv_step`]).
    Ladder,
    /// Shift-down preceding the recoloring of `class`.
    ShiftDown(u64),
    /// Recoloring of color `class` into `{0, 1, 2}`.
    Recolor(u64),
}

/// Where a round falls inside the Stage B schedule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Slot {
    /// Phase index `i` (participation radius `2^i`).
    pub phase: u32,
    /// The window within the phase.
    pub window: Window,
    /// Offset of this round within the window (0-based).
    pub offset: u64,
    /// Whether this is the window's final round (safe evaluation point).
    pub last: bool,
}

/// The fully determined Stage B schedule, identical at every vertex.
#[derive(Clone, Debug)]
pub struct Schedule {
    t0: u64,
    num_phases: u32,
    exchanges: u32,
    mode: MergeControl,
    n: u64,
    /// Start round of each phase (absolute), plus the end sentinel.
    phase_starts: Vec<u64>,
}

impl Schedule {
    /// Builds the schedule from the broadcast parameters.
    pub fn new(params: &Params, mode: MergeControl) -> Self {
        let num_phases = if params.k <= 1 { 0 } else { ceil_log2(params.k) as u32 };
        let exchanges = steps_to_six(params.n) + 6;
        let mut phase_starts = Vec::with_capacity(num_phases as usize + 1);
        let mut start = params.t0;
        for i in 0..num_phases {
            phase_starts.push(start);
            start += Self::phase_len_for(i, exchanges, mode, params.n);
        }
        phase_starts.push(start);
        Self { t0: params.t0, num_phases, exchanges, mode, n: params.n, phase_starts }
    }

    /// Number of Controlled-GHS phases (`ceil(log2 k)`).
    pub fn num_phases(&self) -> u32 {
        self.num_phases
    }

    /// Number of CV exchange windows per phase.
    pub fn exchanges(&self) -> u32 {
        self.exchanges
    }

    /// First round of Stage B.
    pub fn start(&self) -> u64 {
        self.t0
    }

    /// First round *after* Stage B (Stage C entry point).
    pub fn end(&self) -> u64 {
        *self.phase_starts.last().expect("sentinel always present")
    }

    /// The participation radius `2^i` of phase `i`.
    pub fn radius(&self, phase: u32) -> u64 {
        1u64 << phase
    }

    /// The window layout of one phase: `(window, length)` in order.
    fn layout(&self, phase: u32) -> Vec<(Window, u64)> {
        let p = self.radius(phase);
        let mut v = Vec::with_capacity(7 + self.exchanges as usize + 9);
        v.push((Window::Announce, 1));
        v.push((Window::Probe, 2 * p + 2));
        v.push((Window::Connect, p + 3));
        match self.mode {
            MergeControl::Matched => {
                v.push((Window::Kids, p + 2));
                for x in 0..self.exchanges {
                    v.push((Window::Exchange(x), 2 * p + 3));
                }
                for c in 0..3u8 {
                    v.push((Window::MatchCollect(c), p + 2));
                    v.push((Window::MatchAccept(c), 2 * p + 4));
                    v.push((Window::MatchStatus(c), p + 3));
                }
                v.push((Window::MergeGo, p + 2));
                v.push((Window::MergeFlood, 6 * p + 6));
            }
            MergeControl::Uncontrolled => {
                v.push((Window::MergeGo, 2 * p + 4));
                v.push((Window::MergeFlood, self.n + 2 * p + 6));
            }
        }
        v
    }

    fn phase_len_for(phase: u32, exchanges: u32, mode: MergeControl, n: u64) -> u64 {
        let p = 1u64 << phase;
        match mode {
            MergeControl::Matched => {
                1 + (2 * p + 2)
                    + (p + 3)
                    + (p + 2)
                    + u64::from(exchanges) * (2 * p + 3)
                    + 3 * ((p + 2) + (2 * p + 4) + (p + 3))
                    + (p + 2)
                    + (6 * p + 6)
            }
            MergeControl::Uncontrolled => 1 + (2 * p + 2) + (p + 3) + (2 * p + 4) + (n + 2 * p + 6),
        }
    }

    /// Total length of phase `i` in rounds.
    pub fn phase_len(&self, phase: u32) -> u64 {
        Self::phase_len_for(phase, self.exchanges, self.mode, self.n)
    }

    /// Classifies exchange window `x` as ladder / shift-down / recolor.
    pub fn exchange_kind(&self, x: u32) -> ExchangeKind {
        let ladder = self.exchanges - 6;
        if x < ladder {
            ExchangeKind::Ladder
        } else {
            let r = x - ladder;
            let class = 3 + u64::from(r / 2);
            if r.is_multiple_of(2) {
                ExchangeKind::ShiftDown(class)
            } else {
                ExchangeKind::Recolor(class)
            }
        }
    }

    /// Locates an absolute round within the Stage B schedule. `None` before
    /// `t0` or at/after [`Schedule::end`].
    pub fn locate(&self, round: u64) -> Option<Slot> {
        if round < self.t0 || round >= self.end() {
            return None;
        }
        // phase_starts is sorted; find the phase containing `round`.
        let phase = match self.phase_starts.binary_search(&round) {
            Ok(i) => i,
            Err(i) => i - 1,
        } as u32;
        let mut off = round - self.phase_starts[phase as usize];
        for (window, len) in self.layout(phase) {
            if off < len {
                return Some(Slot { phase, window, offset: off, last: off + 1 == len });
            }
            off -= len;
        }
        unreachable!("phase layout shorter than phase length");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(n: u64, k: u64) -> Params {
        Params { n, h: 3, k, t0: 100 }
    }

    #[test]
    fn choose_k_regimes() {
        // Small diameter: k = sqrt(n).
        assert_eq!(choose_k(1024, 10, 1), 32);
        // Large diameter: k = H.
        assert_eq!(choose_k(1024, 100, 1), 100);
        // Bandwidth shrinks the sqrt term: sqrt(1024/4) = 16.
        assert_eq!(choose_k(1024, 10, 4), 16);
        // Never below 1.
        assert_eq!(choose_k(1, 0, 1), 1);
    }

    #[test]
    fn phases_count() {
        assert_eq!(Schedule::new(&params(100, 1), MergeControl::Matched).num_phases(), 0);
        assert_eq!(Schedule::new(&params(100, 2), MergeControl::Matched).num_phases(), 1);
        assert_eq!(Schedule::new(&params(100, 8), MergeControl::Matched).num_phases(), 3);
        assert_eq!(Schedule::new(&params(100, 9), MergeControl::Matched).num_phases(), 4);
    }

    #[test]
    fn locate_covers_every_round_exactly_once() {
        let s = Schedule::new(&params(64, 8), MergeControl::Matched);
        assert!(s.locate(99).is_none());
        assert!(s.locate(s.end()).is_none());
        let mut prev: Option<Slot> = None;
        for r in s.start()..s.end() {
            let slot = s.locate(r).expect("round inside stage B must be scheduled");
            if let Some(p) = prev {
                // Progress is monotone: same window with +1 offset, or a new window.
                if p.window == slot.window && p.phase == slot.phase {
                    assert_eq!(slot.offset, p.offset + 1);
                } else {
                    assert_eq!(slot.offset, 0);
                    assert!(p.last, "window changed before its final round");
                }
            } else {
                assert_eq!(
                    slot,
                    Slot { phase: 0, window: Window::Announce, offset: 0, last: true }
                );
            }
            prev = Some(slot);
        }
        let last = prev.unwrap();
        assert_eq!(last.phase, s.num_phases() - 1);
        assert_eq!(last.window, Window::MergeFlood);
        assert!(last.last);
    }

    #[test]
    fn exchange_kinds_partition() {
        let s = Schedule::new(&params(1 << 20, 4), MergeControl::Matched);
        let ladder = s.exchanges() - 6;
        assert!(matches!(s.exchange_kind(0), ExchangeKind::Ladder));
        assert_eq!(s.exchange_kind(ladder), ExchangeKind::ShiftDown(3));
        assert_eq!(s.exchange_kind(ladder + 1), ExchangeKind::Recolor(3));
        assert_eq!(s.exchange_kind(ladder + 4), ExchangeKind::ShiftDown(5));
        assert_eq!(s.exchange_kind(ladder + 5), ExchangeKind::Recolor(5));
    }

    #[test]
    fn uncontrolled_layout_has_no_matching() {
        let s = Schedule::new(&params(64, 8), MergeControl::Uncontrolled);
        for r in s.start()..s.end() {
            let slot = s.locate(r).unwrap();
            assert!(
                !matches!(
                    slot.window,
                    Window::Kids
                        | Window::Exchange(_)
                        | Window::MatchCollect(_)
                        | Window::MatchAccept(_)
                        | Window::MatchStatus(_)
                ),
                "uncontrolled schedule contains {:?}",
                slot.window
            );
        }
        // The flood window is Θ(n).
        assert!(s.phase_len(0) > 64);
    }

    #[test]
    fn phase_budgets_grow_geometrically() {
        let s = Schedule::new(&params(1 << 16, 64), MergeControl::Matched);
        for i in 1..s.num_phases() {
            let a = s.phase_len(i - 1);
            let b = s.phase_len(i);
            assert!(b > a && b < 3 * a, "phase budgets should roughly double");
        }
        // Total Stage B length is O(k log* n): generous constant check.
        let total = s.end() - s.start();
        let bound = 200 * 64 + 500;
        assert!(total < bound, "stage B budget {total} exceeds {bound}");
    }
}
