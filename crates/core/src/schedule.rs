//! Global parameters and the round schedule of the Controlled-GHS stage.
//!
//! The synchronous model gives every vertex a shared clock, so once the BFS
//! root has broadcast `(n, H, k, t0)` (end of Stage A), every vertex computes
//! the *same* schedule locally and knows, for any absolute round, which
//! sub-step of which Controlled-GHS phase is executing. This realizes the
//! paper's implicit phase synchronization with explicit budget constants.
//!
//! # Window table and derivation
//!
//! Per phase `i` (participation radius `p = 2^i`), a participating fragment
//! has height `<= p` (that is exactly what the probe's depth budget tests),
//! so each sub-step's latency is a small multiple of `p`. The two columns
//! below are the **Fixed** (seed, deliberately padded) and **Adaptive**
//! (provably minimal) window lengths; the derivation of each adaptive
//! length is the longest message chain of the sub-step, where a message
//! sent in round `r` is processed in round `r + 1`:
//!
//! | window | fixed | adaptive | longest chain (adaptive) |
//! |---|---|---|---|
//! | Announce | `1` | `1` | one local send; delivered at the next window's offset 0 |
//! | Probe | `2p+2` | `2p+1` | descend `p` (depth-`j` vertex hears at offset `j`), ascend `p`: root hears the last `MwoeUp` at offset `2p` |
//! | Connect | `p+3` | `p+2` | `MwoePath` descends `<= p`, `ConnectReq` crosses (+1): delivered at offset `<= p+1`, the window's last round, where the mutual-MWOE tie is resolved |
//! | Kids | `p+2` | `p+1` | all vertices start at offset 0; ascend `<= p` |
//! | Exchange × X | `2p+3` | `2p+2` | `ColorDown` descends `<= p`, `ColorCross` (+1), `ColorUp` ascends `<= p`: root holds the parent color at offset `2p+1` and evaluates that round |
//! | Collect (×3) | `p+2` | `p+1` | pure convergecast, ascend `<= p` |
//! | Accept (×3) | `2p+4` | `2p+2` | `AcceptPath` descends `<= p`, `AcceptCross` (+1), `MatchedUp` ascends `<= p` |
//! | Status (×3) | `p+3` | `p+2` | `StatusDown` descends `<= p`, `StatusCross` (+1) |
//! | MergeGo | `p+2` / `2p+4` unc. | `p+2` / `2p+2` unc. | `MergePath` descends `<= p`, `MergeCross` (+1); uncontrolled adds the mutual `MatchedUp` ascent `<= p` |
//! | MergeFlood | `6p+6` / `n+2p+6` unc. | see below | flood depth `<= 5p+4`: initiator fragment `<= p`, cross (+1), partner entered anywhere so `<= 2p` internally, cross to a pendant (+1), pendant `<= 2p` |
//!
//! `X = steps_to_six(n) + 6` Cole–Vishkin iterations as before.
//!
//! # Adaptive phase ends (`ScheduleMode::Adaptive`)
//!
//! The merge flood is the one window whose worst case (`5p+4` hops, or
//! `Θ(n)` uncontrolled) is usually far from its actual depth — fragments
//! merge along short chains long before the radius saturates. Adaptive
//! mode therefore ends each phase one of two ways, chosen **per phase** by
//! a deterministic rule every vertex evaluates identically (it depends
//! only on the broadcast `(n, H)` and the phase index):
//!
//! * **Scheduled end** when the worst-case flood window is already cheaper
//!   than a tree sync (`flood_window <= 2H + 5`): sleep out the tight
//!   `5p+5` (matched) window exactly like Fixed mode, just with the
//!   minimal constant.
//! * **Sync end** otherwise (`flood_window > 2H + 5`, e.g. uncontrolled
//!   mode, or `p >> H`): the flood carries acks (`FloodAck` retraces every
//!   `NewFrag` edge), fragment roots that provably expect no flood
//!   broadcast `SyncNoFlood` down their old fragment tree, and every
//!   vertex that has settled reports `SyncUp` up the Stage A BFS tree once
//!   its BFS subtree has. When the BFS root has heard the whole tree it
//!   broadcasts `SyncStart { phase+1, t }` with `t = now + H + 1`, and the
//!   next phase's Announce window opens at the absolute round `t` at every
//!   vertex simultaneously. Cost: `O(actual flood depth + H)` instead of
//!   the worst-case window — the phase ends as soon as every fragment's
//!   merge flood has settled.
//!
//! The **uncontrolled** mode (ablation A1) skips coloring and matching
//! entirely and lets every fragment merge along its MWOE; its fixed flood
//! window must cover `Θ(n)` because without matching the fragment diameter
//! is unbounded — that blow-up is exactly what the ablation demonstrates
//! (and exactly where sync-ended phases help most).

use crate::cv::steps_to_six;
use crate::util::{ceil_log2, isqrt};

/// Whether Controlled-GHS merges via maximal matching (the paper) or merges
/// every fragment along its MWOE (ablation A1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum MergeControl {
    /// Paper behaviour: 3-coloring + maximal matching bounds fragment
    /// diameter by `O(2^i)` per phase.
    #[default]
    Matched,
    /// Ablation: pure Borůvka merging; diameter may blow up to `Θ(n)`.
    Uncontrolled,
}

/// How Stage B rounds are scheduled (see the module docs).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ScheduleMode {
    /// The seed behaviour: padded windows, every phase sleeps out its
    /// worst case, `k = max(sqrt(n/b), H)`.
    Fixed,
    /// Tightened windows, per-phase scheduled-vs-sync ends, and the
    /// adaptive-k choice [`choose_k_adaptive`]. The default since PR 3
    /// (soaked through two PRs of conformance coverage); `Fixed` stays a
    /// supported knob and remains in the conformance matrix.
    #[default]
    Adaptive,
}

/// The globally agreed parameters broadcast by the BFS root at the end of
/// Stage A.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Params {
    /// Number of vertices.
    pub n: u64,
    /// BFS tree height (`H <= D <= 2H`).
    pub h: u64,
    /// Base-forest parameter `k`.
    pub k: u64,
    /// Absolute round at which Stage B starts.
    pub t0: u64,
}

/// The paper's parameter choice (§3): `k = sqrt(n/b)` in the small-diameter
/// regime and `k = Θ(D)` in the large-diameter regime, implemented as
/// `max(sqrt(n/b), H)` with the BFS height `H` standing in for `D`
/// (`H <= D <= 2H`). Always at least 1.
pub fn choose_k(n: u64, h: u64, bandwidth: u32) -> u64 {
    let nb = n.div_euclid(u64::from(bandwidth.max(1))).max(1);
    isqrt(nb).max(h).max(1)
}

/// The adaptive-k heuristic ([`ScheduleMode::Adaptive`]): `k = sqrt(n/b)`
/// in *both* regimes — the way it "accounts for" the measured `H` is
/// precisely by refusing to follow it up on high-diameter graphs (where
/// `choose_k` returns `H`), which is why it takes no `h` argument.
///
/// The paper inflates `k` to `Θ(H)` in the large-diameter regime so the
/// Stage D pipeline term `n/(kb)` stays below `D`. But once
/// `k >= sqrt(n/b)` that term is `<= sqrt(n/b) <= max(D, sqrt(n/b))`
/// anyway, while every extra Controlled-GHS phase the larger `k` buys
/// costs `Θ(2^i)` scheduled rounds — with adaptive phase ends the Stage B
/// windows are the bottleneck on exactly those graphs. So
/// `choose_k_adaptive(n, b) = choose_k(n, h, b)` whenever `H <= sqrt(n/b)`
/// and shrinks to `sqrt(n/b)` otherwise.
pub fn choose_k_adaptive(n: u64, bandwidth: u32) -> u64 {
    let nb = n.div_euclid(u64::from(bandwidth.max(1))).max(1);
    isqrt(nb).max(1)
}

/// One scheduled window of a Controlled-GHS phase.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Window {
    /// Fragment-id refresh (1 round).
    Announce,
    /// Depth-budgeted probe + MWOE convergecast.
    Probe,
    /// Participate flood, argmin downcast, cross-edge connect.
    Connect,
    /// Foreign-children existence convergecast.
    Kids,
    /// One Cole–Vishkin exchange; see [`ExchangeKind`].
    Exchange(u32),
    /// Matching: collect unmatched children (for color class `c`).
    MatchCollect(u8),
    /// Matching: accept one child (for color class `c`).
    MatchAccept(u8),
    /// Matching: propagate new matched statuses (for color class `c`).
    MatchStatus(u8),
    /// Unmatched fragments fire their MWOE.
    MergeGo,
    /// New-fragment flood: ids + re-orientation.
    MergeFlood,
}

/// Semantic classification of an exchange index within the CV reduction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExchangeKind {
    /// Bit-ladder step ([`crate::cv::cv_step`]).
    Ladder,
    /// Shift-down preceding the recoloring of `class`.
    ShiftDown(u64),
    /// Recoloring of color `class` into `{0, 1, 2}`.
    Recolor(u64),
}

/// Where a round falls inside the Stage B schedule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Slot {
    /// Phase index `i` (participation radius `2^i`).
    pub phase: u32,
    /// The window within the phase.
    pub window: Window,
    /// Offset of this round within the window (0-based).
    pub offset: u64,
    /// Whether this is the window's final round (safe evaluation point).
    pub last: bool,
}

/// The fully determined Stage B schedule, identical at every vertex.
///
/// In [`ScheduleMode::Fixed`] the schedule is a pure function of the
/// broadcast parameters and [`Schedule::locate`] maps absolute rounds to
/// slots. In [`ScheduleMode::Adaptive`] phases that end by sync have no
/// predetermined length; the node tracks the current phase's start round
/// and uses [`Schedule::locate_rel`], with [`Schedule::sync_phase`]
/// deciding per phase which ending applies.
#[derive(Clone, Debug)]
pub struct Schedule {
    t0: u64,
    num_phases: u32,
    exchanges: u32,
    merge: MergeControl,
    mode: ScheduleMode,
    n: u64,
    h: u64,
    /// Start round of each phase (absolute), plus the end sentinel. In
    /// adaptive mode these are *nominal* (as if every phase ended on
    /// schedule) and only [`Schedule::phase_len`] of scheduled-end phases
    /// is meaningful to the executor.
    phase_starts: Vec<u64>,
}

impl Schedule {
    /// Builds the schedule from the broadcast parameters.
    pub fn new(params: &Params, merge: MergeControl, mode: ScheduleMode) -> Self {
        let num_phases = if params.k <= 1 { 0 } else { ceil_log2(params.k) as u32 };
        let exchanges = steps_to_six(params.n) + 6;
        let mut phase_starts = Vec::with_capacity(num_phases as usize + 1);
        let mut start = params.t0;
        for i in 0..num_phases {
            phase_starts.push(start);
            start += Self::phase_len_for(i, exchanges, merge, mode, params.n);
        }
        phase_starts.push(start);
        Self {
            t0: params.t0,
            num_phases,
            exchanges,
            merge,
            mode,
            n: params.n,
            h: params.h,
            phase_starts,
        }
    }

    /// Number of Controlled-GHS phases (`ceil(log2 k)`).
    pub fn num_phases(&self) -> u32 {
        self.num_phases
    }

    /// Number of CV exchange windows per phase.
    pub fn exchanges(&self) -> u32 {
        self.exchanges
    }

    /// First round of Stage B.
    pub fn start(&self) -> u64 {
        self.t0
    }

    /// First round *after* Stage B (Stage C entry point). Nominal in
    /// adaptive mode (sync-ended phases end earlier or later at run time).
    pub fn end(&self) -> u64 {
        *self.phase_starts.last().expect("sentinel always present")
    }

    /// The participation radius `2^i` of phase `i`.
    pub fn radius(&self, phase: u32) -> u64 {
        1u64 << phase
    }

    /// The BFS-tree height the schedule was built with.
    pub fn height(&self) -> u64 {
        self.h
    }

    /// Worst-case merge-flood window of phase `i` under the given merge
    /// control and schedule mode.
    fn flood_len_for(phase: u32, merge: MergeControl, mode: ScheduleMode, n: u64) -> u64 {
        let p = 1u64 << phase;
        match (merge, mode) {
            (MergeControl::Matched, ScheduleMode::Fixed) => 6 * p + 6,
            (MergeControl::Matched, ScheduleMode::Adaptive) => 5 * p + 5,
            (MergeControl::Uncontrolled, _) => n + 2 * p + 6,
        }
    }

    /// Whether phase `i` ends by the BFS-tree sync protocol instead of a
    /// scheduled flood window (adaptive mode only; see the module docs).
    /// The rule is a pure function of broadcast data, so every vertex
    /// agrees on it without communication.
    pub fn sync_phase(&self, phase: u32) -> bool {
        self.mode == ScheduleMode::Adaptive
            && Self::flood_len_for(phase, self.merge, self.mode, self.n) > 2 * self.h + 5
    }

    /// The window layout of one phase: `(window, length)` in order.
    fn layout(&self, phase: u32) -> Vec<(Window, u64)> {
        let p = self.radius(phase);
        // Per-window padding beyond the provable minimum: 0 in adaptive
        // mode, the seed's slack in fixed mode (see the module table).
        let pad = u64::from(self.mode == ScheduleMode::Fixed);
        let flood = Self::flood_len_for(phase, self.merge, self.mode, self.n);
        let mut v = Vec::with_capacity(7 + self.exchanges as usize + 9);
        v.push((Window::Announce, 1));
        v.push((Window::Probe, 2 * p + 1 + pad));
        v.push((Window::Connect, p + 2 + pad));
        match self.merge {
            MergeControl::Matched => {
                v.push((Window::Kids, p + 1 + pad));
                for x in 0..self.exchanges {
                    v.push((Window::Exchange(x), 2 * p + 2 + pad));
                }
                for c in 0..3u8 {
                    v.push((Window::MatchCollect(c), p + 1 + pad));
                    v.push((Window::MatchAccept(c), 2 * p + 2 + 2 * pad));
                    v.push((Window::MatchStatus(c), p + 2 + pad));
                }
                v.push((Window::MergeGo, p + 2));
                v.push((Window::MergeFlood, flood));
            }
            MergeControl::Uncontrolled => {
                v.push((Window::MergeGo, 2 * p + 2 + 2 * pad));
                v.push((Window::MergeFlood, flood));
            }
        }
        v
    }

    fn phase_len_for(
        phase: u32,
        exchanges: u32,
        merge: MergeControl,
        mode: ScheduleMode,
        n: u64,
    ) -> u64 {
        let p = 1u64 << phase;
        let pad = u64::from(mode == ScheduleMode::Fixed);
        let flood = Self::flood_len_for(phase, merge, mode, n);
        match merge {
            MergeControl::Matched => {
                1 + (2 * p + 1 + pad)
                    + (p + 2 + pad)
                    + (p + 1 + pad)
                    + u64::from(exchanges) * (2 * p + 2 + pad)
                    + 3 * ((p + 1 + pad) + (2 * p + 2 + 2 * pad) + (p + 2 + pad))
                    + (p + 2)
                    + flood
            }
            MergeControl::Uncontrolled => {
                1 + (2 * p + 1 + pad) + (p + 2 + pad) + (2 * p + 2 + 2 * pad) + flood
            }
        }
    }

    /// Total length of phase `i` in rounds (worst case; the *actual*
    /// length of a sync-ended adaptive phase is decided at run time).
    pub fn phase_len(&self, phase: u32) -> u64 {
        Self::phase_len_for(phase, self.exchanges, self.merge, self.mode, self.n)
    }

    /// Classifies exchange window `x` as ladder / shift-down / recolor.
    pub fn exchange_kind(&self, x: u32) -> ExchangeKind {
        let ladder = self.exchanges - 6;
        if x < ladder {
            ExchangeKind::Ladder
        } else {
            let r = x - ladder;
            let class = 3 + u64::from(r / 2);
            if r.is_multiple_of(2) {
                ExchangeKind::ShiftDown(class)
            } else {
                ExchangeKind::Recolor(class)
            }
        }
    }

    /// Locates an absolute round within the Stage B schedule. `None` before
    /// `t0` or at/after [`Schedule::end`]. Only meaningful in
    /// [`ScheduleMode::Fixed`] (adaptive phase starts move at run time; use
    /// [`Schedule::locate_rel`]).
    pub fn locate(&self, round: u64) -> Option<Slot> {
        if round < self.t0 || round >= self.end() {
            return None;
        }
        // phase_starts is sorted; find the phase containing `round`.
        let phase = match self.phase_starts.binary_search(&round) {
            Ok(i) => i,
            Err(i) => i - 1,
        } as u32;
        Some(self.locate_rel(phase, round - self.phase_starts[phase as usize]))
    }

    /// The smallest relative offset `> rel` within phase `phase` that is a
    /// window's first or final round, or the phase length (the phase-end
    /// transition round) when no such offset remains. These are exactly the
    /// offsets at which [`crate::node::ElkinNode`] acts spontaneously —
    /// every window arms its actions at offset 0 and/or its last round — so
    /// they are the Stage B wake points of the executor's idle-skip
    /// contract. Returns a value `<= rel` only when `rel` is already at or
    /// past the phase length (open-ended flood tail): no boundary remains.
    pub fn next_boundary_rel(&self, phase: u32, rel: u64) -> u64 {
        let mut start = 0u64;
        for (_, len) in self.layout(phase) {
            if start > rel {
                return start;
            }
            let last = start + len - 1;
            if last > rel {
                return last;
            }
            start += len;
        }
        start
    }

    /// Absolute-round companion of [`Schedule::next_boundary_rel`] for
    /// [`ScheduleMode::Fixed`], where phase starts are nominal: the next
    /// boundary round strictly after `round`. Before `t0` that is `t0`
    /// itself; at or past [`Schedule::end`] (not a Stage B round) it
    /// degenerates to `round + 1`.
    pub fn next_boundary(&self, round: u64) -> u64 {
        if round < self.t0 {
            return self.t0;
        }
        if round >= self.end() {
            return round + 1;
        }
        let phase = match self.phase_starts.binary_search(&round) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        let start = self.phase_starts[phase];
        start + self.next_boundary_rel(phase as u32, round - start)
    }

    /// Locates round `rel` (0-based) within phase `phase`, independent of
    /// absolute time. Offsets beyond the nominal layout stay in the
    /// (open-ended) merge-flood window — that is how sync-ended adaptive
    /// phases wait for the `SyncStart` broadcast.
    pub fn locate_rel(&self, phase: u32, rel: u64) -> Slot {
        let mut off = rel;
        let layout = self.layout(phase);
        let count = layout.len();
        for (i, (window, len)) in layout.into_iter().enumerate() {
            if off < len || i + 1 == count {
                let last = off + 1 == len;
                return Slot { phase, window, offset: off, last };
            }
            off -= len;
        }
        unreachable!("layout is never empty");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(n: u64, k: u64) -> Params {
        Params { n, h: 3, k, t0: 100 }
    }

    fn fixed(n: u64, k: u64) -> Schedule {
        Schedule::new(&params(n, k), MergeControl::Matched, ScheduleMode::Fixed)
    }

    #[test]
    fn choose_k_regimes() {
        // Small diameter: k = sqrt(n).
        assert_eq!(choose_k(1024, 10, 1), 32);
        // Large diameter: k = H.
        assert_eq!(choose_k(1024, 100, 1), 100);
        // Bandwidth shrinks the sqrt term: sqrt(1024/4) = 16.
        assert_eq!(choose_k(1024, 10, 4), 16);
        // Never below 1.
        assert_eq!(choose_k(1, 0, 1), 1);
    }

    #[test]
    fn choose_k_adaptive_shrinks_on_high_diameter() {
        // Low diameter: identical to the paper's choice.
        assert_eq!(choose_k_adaptive(1024, 1), choose_k(1024, 10, 1));
        // High diameter: stays at sqrt(n/b) instead of following H.
        assert_eq!(choose_k_adaptive(1024, 1), 32);
        assert_eq!(choose_k(1024, 100, 1), 100);
        // Bandwidth still shrinks the sqrt term.
        assert_eq!(choose_k_adaptive(1024, 4), 16);
        assert_eq!(choose_k_adaptive(1, 1), 1);
    }

    #[test]
    fn phases_count() {
        assert_eq!(fixed(100, 1).num_phases(), 0);
        assert_eq!(fixed(100, 2).num_phases(), 1);
        assert_eq!(fixed(100, 8).num_phases(), 3);
        assert_eq!(fixed(100, 9).num_phases(), 4);
    }

    #[test]
    fn locate_covers_every_round_exactly_once() {
        let s = fixed(64, 8);
        assert!(s.locate(99).is_none());
        assert!(s.locate(s.end()).is_none());
        let mut prev: Option<Slot> = None;
        for r in s.start()..s.end() {
            let slot = s.locate(r).expect("round inside stage B must be scheduled");
            if let Some(p) = prev {
                // Progress is monotone: same window with +1 offset, or a new window.
                if p.window == slot.window && p.phase == slot.phase {
                    assert_eq!(slot.offset, p.offset + 1);
                } else {
                    assert_eq!(slot.offset, 0);
                    assert!(p.last, "window changed before its final round");
                }
            } else {
                assert_eq!(
                    slot,
                    Slot { phase: 0, window: Window::Announce, offset: 0, last: true }
                );
            }
            prev = Some(slot);
        }
        let last = prev.unwrap();
        assert_eq!(last.phase, s.num_phases() - 1);
        assert_eq!(last.window, Window::MergeFlood);
        assert!(last.last);
    }

    #[test]
    fn adaptive_windows_are_tighter_phase_by_phase() {
        let p = params(1 << 16, 64);
        let f = Schedule::new(&p, MergeControl::Matched, ScheduleMode::Fixed);
        let a = Schedule::new(&p, MergeControl::Matched, ScheduleMode::Adaptive);
        assert_eq!(f.num_phases(), a.num_phases());
        for i in 0..f.num_phases() {
            assert!(
                a.phase_len(i) < f.phase_len(i),
                "adaptive phase {i} ({}) not tighter than fixed ({})",
                a.phase_len(i),
                f.phase_len(i)
            );
        }
    }

    #[test]
    fn locate_rel_is_total_and_open_ended() {
        let p = params(64, 8);
        let s = Schedule::new(&p, MergeControl::Matched, ScheduleMode::Adaptive);
        for phase in 0..s.num_phases() {
            let len = s.phase_len(phase);
            let mut prev: Option<Slot> = None;
            for rel in 0..len {
                let slot = s.locate_rel(phase, rel);
                assert_eq!(slot.phase, phase);
                if let Some(pv) = prev {
                    if pv.window == slot.window {
                        assert_eq!(slot.offset, pv.offset + 1);
                    } else {
                        assert!(pv.last);
                        assert_eq!(slot.offset, 0);
                    }
                }
                prev = Some(slot);
            }
            // Beyond the nominal layout: still MergeFlood, never `last`.
            let over = s.locate_rel(phase, len + 17);
            assert_eq!(over.window, Window::MergeFlood);
            assert!(!over.last);
        }
    }

    #[test]
    fn sync_rule_is_deterministic_in_broadcast_data() {
        // h = 3: matched floods are 5p+5; sync once 5p+5 > 2*3+5 = 11,
        // i.e. from p = 2 (phase 1) on.
        let s = Schedule::new(&params(64, 16), MergeControl::Matched, ScheduleMode::Adaptive);
        assert!(!s.sync_phase(0));
        assert!(s.sync_phase(1));
        assert!(s.sync_phase(3));
        // Fixed mode never syncs.
        assert!(!fixed(64, 16).sync_phase(3));
        // Uncontrolled floods are Θ(n): every adaptive phase syncs.
        let u = Schedule::new(&params(64, 16), MergeControl::Uncontrolled, ScheduleMode::Adaptive);
        assert!(u.sync_phase(0));
        // A tall BFS tree pushes the rule back toward scheduled ends.
        let tall = Params { n: 64, h: 1000, k: 16, t0: 0 };
        let t = Schedule::new(&tall, MergeControl::Matched, ScheduleMode::Adaptive);
        assert!(!t.sync_phase(3));
    }

    #[test]
    fn next_boundary_matches_naive_scan() {
        for (merge, mode) in [
            (MergeControl::Matched, ScheduleMode::Fixed),
            (MergeControl::Matched, ScheduleMode::Adaptive),
            (MergeControl::Uncontrolled, ScheduleMode::Fixed),
        ] {
            let s = Schedule::new(&params(64, 8), merge, mode);
            // A round is a wake boundary iff it opens or closes a window;
            // the stage-end transition round (end()) is one as well.
            let is_boundary = |r: u64| {
                s.locate(r).map(|slot| slot.offset == 0 || slot.last).unwrap_or(r == s.end())
            };
            for r in s.start().saturating_sub(2)..s.end() {
                let nb = s.next_boundary(r);
                assert!(
                    nb > r && is_boundary(nb),
                    "{merge:?}/{mode:?}: bad boundary {nb} after {r}"
                );
                for mid in (r + 1)..nb {
                    assert!(
                        !is_boundary(mid),
                        "{merge:?}/{mode:?}: missed boundary {mid} after {r}"
                    );
                }
            }
        }
    }

    #[test]
    fn next_boundary_rel_walks_window_edges() {
        let s = Schedule::new(&params(64, 8), MergeControl::Matched, ScheduleMode::Adaptive);
        for phase in 0..s.num_phases() {
            let len = s.phase_len(phase);
            for rel in 0..len {
                let nb = s.next_boundary_rel(phase, rel);
                assert!(nb > rel && nb <= len);
                if nb < len {
                    let slot = s.locate_rel(phase, nb);
                    assert!(slot.offset == 0 || slot.last);
                    for mid in (rel + 1)..nb {
                        let m = s.locate_rel(phase, mid);
                        assert!(m.offset != 0 && !m.last, "missed rel boundary {mid}");
                    }
                }
            }
            // Past the nominal layout no boundary remains.
            assert!(s.next_boundary_rel(phase, len) <= len);
            assert!(s.next_boundary_rel(phase, len + 9) <= len + 9);
        }
    }

    #[test]
    fn exchange_kinds_partition() {
        let s = fixed(1 << 20, 4);
        let ladder = s.exchanges() - 6;
        assert!(matches!(s.exchange_kind(0), ExchangeKind::Ladder));
        assert_eq!(s.exchange_kind(ladder), ExchangeKind::ShiftDown(3));
        assert_eq!(s.exchange_kind(ladder + 1), ExchangeKind::Recolor(3));
        assert_eq!(s.exchange_kind(ladder + 4), ExchangeKind::ShiftDown(5));
        assert_eq!(s.exchange_kind(ladder + 5), ExchangeKind::Recolor(5));
    }

    #[test]
    fn uncontrolled_layout_has_no_matching() {
        let s = Schedule::new(&params(64, 8), MergeControl::Uncontrolled, ScheduleMode::Fixed);
        for r in s.start()..s.end() {
            let slot = s.locate(r).unwrap();
            assert!(
                !matches!(
                    slot.window,
                    Window::Kids
                        | Window::Exchange(_)
                        | Window::MatchCollect(_)
                        | Window::MatchAccept(_)
                        | Window::MatchStatus(_)
                ),
                "uncontrolled schedule contains {:?}",
                slot.window
            );
        }
        // The flood window is Θ(n).
        assert!(s.phase_len(0) > 64);
    }

    #[test]
    fn phase_budgets_grow_geometrically() {
        for mode in [ScheduleMode::Fixed, ScheduleMode::Adaptive] {
            let s = Schedule::new(&params(1 << 16, 64), MergeControl::Matched, mode);
            for i in 1..s.num_phases() {
                let a = s.phase_len(i - 1);
                let b = s.phase_len(i);
                assert!(b > a && b < 3 * a, "phase budgets should roughly double ({mode:?})");
            }
            // Total Stage B length is O(k log* n): generous constant check.
            let total = s.end() - s.start();
            let bound = 200 * 64 + 500;
            assert!(total < bound, "stage B budget {total} exceeds {bound} ({mode:?})");
        }
    }
}
