//! Nested interval labels for BFS-tree routing (paper §3).
//!
//! The root owns `[0, n)`; every vertex keeps the first slot of its
//! interval for itself and hands its children consecutive sub-intervals
//! sized by their subtree sizes. Intervals of different branches are
//! disjoint and ancestors' intervals contain descendants' — so a message
//! addressed to a slot can be routed hop-by-hop by picking the child whose
//! interval contains the destination ("it finds a child u of v whose
//! interval I(u) contains I(rF), and sends the message to this child").
//!
//! These are the pure helpers used by the Stage C/D code; properties
//! (partition, nesting, routability) are tested here directly.

/// Splits a parent interval `[start, start + 1 + Σ sizes)` into the
/// parent's own slot (`start`) and consecutive child intervals
/// `(child_start, child_size)` in the given order.
pub fn assign_children(start: u64, sizes: &[u64]) -> Vec<(u64, u64)> {
    let mut cur = start + 1;
    sizes
        .iter()
        .map(|&s| {
            let iv = (cur, s);
            cur += s;
            iv
        })
        .collect()
}

/// Which child interval contains `dest`? `None` if none does (then `dest`
/// is the current vertex's own slot, or out of range — the caller decides).
pub fn route(children: &[(u64, u64)], dest: u64) -> Option<usize> {
    children.iter().position(|&(s, len)| dest >= s && dest < s + len)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn partition_is_exact() {
        let ivs = assign_children(10, &[3, 1, 4]);
        assert_eq!(ivs, vec![(11, 3), (14, 1), (15, 4)]);
        // Own slot 10, children cover 11..19: the whole [10, 19).
        assert_eq!(ivs.last().map(|&(s, l)| s + l), Some(19));
    }

    #[test]
    fn route_picks_the_covering_child() {
        let ivs = assign_children(0, &[2, 5, 1]);
        assert_eq!(route(&ivs, 0), None); // own slot
        assert_eq!(route(&ivs, 1), Some(0));
        assert_eq!(route(&ivs, 2), Some(0));
        assert_eq!(route(&ivs, 3), Some(1));
        assert_eq!(route(&ivs, 7), Some(1));
        assert_eq!(route(&ivs, 8), Some(2));
        assert_eq!(route(&ivs, 9), None); // out of range
    }

    #[test]
    fn empty_children() {
        assert!(assign_children(5, &[]).is_empty());
        assert_eq!(route(&[], 5), None);
    }

    proptest! {
        /// Child intervals are disjoint, ordered, contained in the parent's
        /// span, and every inner slot routes to exactly one child.
        #[test]
        fn nested_disjoint_routable(
            start in 0u64..1_000_000,
            sizes in proptest::collection::vec(1u64..50, 0..20),
        ) {
            let ivs = assign_children(start, &sizes);
            let total: u64 = sizes.iter().sum();
            let mut cur = start + 1;
            for (i, &(s, len)) in ivs.iter().enumerate() {
                prop_assert_eq!(s, cur, "child {} must start where the previous ended", i);
                prop_assert_eq!(len, sizes[i]);
                cur += len;
            }
            prop_assert_eq!(cur, start + 1 + total);
            // Routability of every slot in the span except the owner's.
            for dest in (start + 1)..(start + 1 + total) {
                let hit = route(&ivs, dest);
                prop_assert!(hit.is_some());
                let (s, len) = ivs[hit.expect("checked")];
                prop_assert!(dest >= s && dest < s + len);
            }
            prop_assert_eq!(route(&ivs, start), None);
        }
    }
}
