//! The per-vertex state machine implementing Elkin's algorithm.
//!
//! One [`ElkinNode`] runs at every vertex of the simulated network and
//! progresses through four stages:
//!
//! * **Stage A** (`stage_a.rs`): BFS tree from the designated root, subtree
//!   size/height convergecast, broadcast of the agreed parameters
//!   `(n, H, k, t0)` (paper §3, "auxiliary BFS tree").
//! * **Stage B** (`stage_b.rs`): Controlled-GHS on the fixed round schedule
//!   of [`Schedule`](crate::schedule::Schedule), producing the
//!   `(O(n/k), O(k))` base MST forest (paper §4).
//! * **Stage C** (`stage_cd.rs`): interval labeling of the BFS tree and
//!   pipelined registration of base-fragment roots (paper §3).
//! * **Stage D** (`stage_cd.rs`): Borůvka phases over the base forest with
//!   pipelined, filtered candidate upcasts and interval-routed downcasts
//!   (paper §3). Phases are *fused*: there is no per-phase barrier — every
//!   sub-step triggers on local completion events, and the next phase rides
//!   the previous phase's answer path (see `stage_cd.rs` and DESIGN.md §2).
//!
//! Stages C/D are event-driven (completion messages, not round windows);
//! DESIGN.md explains why this is faithful to the paper's cost accounting.

mod stage_a;
mod stage_b;
mod stage_cd;

use std::collections::BTreeMap;
use std::collections::VecDeque;

use congest_sim::{NodeInfo, NodeProgram, PortId, RoundCtx};

use crate::candidate::{CandKey, Candidate};
use crate::config::ElkinConfig;
use crate::msg::Msg;
use crate::schedule::{Params, Schedule};

/// Marker for "unknown neighbor data" in port-indexed tables.
pub(crate) const UNKNOWN: u64 = u64::MAX;

/// Lane indices into a [`PortArena`]. The arena is lane-major: lane `L`
/// occupies `buf[L * deg .. (L + 1) * deg]`, so the stage loops that scan
/// one attribute across every port (the MWOE scans) walk contiguous memory.
mod lane {
    /// Incident edge weight (immutable after construction).
    pub const WEIGHT: usize = 0;
    /// Neighbor vertex id learned from announces (`UNKNOWN` until heard).
    pub const NBR_ID: usize = 1;
    /// Neighbor base-fragment id (`UNKNOWN` until announced, stage B).
    pub const NBR_FRAG: usize = 2;
    /// Neighbor coarse id for the current Borůvka phase.
    pub const NBR_COARSE: usize = 3;
    /// Neighbor coarse id announced one phase early (fused-phase skew).
    pub const NBR_COARSE_NEXT: usize = 4;
    /// Total `CoarseAnnounce`s received on this port (its value *is* the
    /// phase of the next announce, by the once-per-phase send discipline).
    pub const ANN_COUNT: usize = 5;
    /// Total `UpDone`s received on this port.
    pub const UPDONE_COUNT: usize = 6;
    /// 1 if the incident edge has been marked an MST edge, else 0.
    pub const MST: usize = 7;
    /// Round of the last send-ledger charge (`u64::MAX` = never charged).
    pub const LEDGER_ROUND: usize = 8;
    /// Words already charged on this port during `LEDGER_ROUND`.
    pub const LEDGER_WORDS: usize = 9;
    /// Number of lanes.
    pub const COUNT: usize = 10;
}

/// Struct-of-arrays per-port state: every port-indexed attribute of an
/// [`ElkinNode`] packed into one `Box<[u64]>` (lane-major, see [`lane`]).
/// Replaces what used to be nine parallel `Vec`s — one allocation per node
/// instead of nine, and each hot per-port scan stays contiguous.
///
/// Booleans are stored as 0/1 and the per-port send ledger as a
/// `(round, words)` lane pair; the typed accessors do the narrowing.
#[derive(Clone, Debug)]
pub(crate) struct PortArena {
    deg: usize,
    buf: Box<[u64]>,
}

impl PortArena {
    /// Builds the arena for a vertex of degree `deg`; `weights` yields the
    /// incident edge weights in port order.
    pub(crate) fn new(deg: usize, weights: impl Iterator<Item = u64>) -> Self {
        let mut buf = vec![0u64; lane::COUNT * deg].into_boxed_slice();
        for (q, w) in weights.enumerate() {
            buf[lane::WEIGHT * deg + q] = w;
        }
        for l in [lane::NBR_ID, lane::NBR_FRAG, lane::NBR_COARSE, lane::NBR_COARSE_NEXT] {
            buf[l * deg..(l + 1) * deg].fill(UNKNOWN);
        }
        buf[lane::LEDGER_ROUND * deg..(lane::LEDGER_ROUND + 1) * deg].fill(u64::MAX);
        Self { deg, buf }
    }

    #[inline]
    fn get(&self, l: usize, q: usize) -> u64 {
        self.buf[l * self.deg + q]
    }

    #[inline]
    fn set(&mut self, l: usize, q: usize, v: u64) {
        self.buf[l * self.deg + q] = v;
    }

    /// Weight of the edge behind port `q`.
    #[inline]
    pub(crate) fn weight(&self, q: usize) -> u64 {
        self.get(lane::WEIGHT, q)
    }

    /// Neighbor vertex id behind port `q` (`UNKNOWN` until announced).
    #[inline]
    pub(crate) fn nbr_id(&self, q: usize) -> u64 {
        self.get(lane::NBR_ID, q)
    }

    #[inline]
    pub(crate) fn set_nbr_id(&mut self, q: usize, v: u64) {
        self.set(lane::NBR_ID, q, v);
    }

    /// Neighbor base-fragment id behind port `q`.
    #[inline]
    pub(crate) fn nbr_frag(&self, q: usize) -> u64 {
        self.get(lane::NBR_FRAG, q)
    }

    #[inline]
    pub(crate) fn set_nbr_frag(&mut self, q: usize, v: u64) {
        self.set(lane::NBR_FRAG, q, v);
    }

    /// Neighbor coarse id for the current phase.
    #[inline]
    pub(crate) fn nbr_coarse(&self, q: usize) -> u64 {
        self.get(lane::NBR_COARSE, q)
    }

    #[inline]
    pub(crate) fn set_nbr_coarse(&mut self, q: usize, v: u64) {
        self.set(lane::NBR_COARSE, q, v);
    }

    /// Neighbor coarse id announced one phase early (`UNKNOWN` if none).
    #[inline]
    pub(crate) fn nbr_coarse_next(&self, q: usize) -> u64 {
        self.get(lane::NBR_COARSE_NEXT, q)
    }

    #[inline]
    pub(crate) fn set_nbr_coarse_next(&mut self, q: usize, v: u64) {
        self.set(lane::NBR_COARSE_NEXT, q, v);
    }

    /// Consumes one `CoarseAnnounce` on port `q`: returns the phase it
    /// belongs to (the pre-increment count) and advances the count.
    #[inline]
    pub(crate) fn bump_ann_count(&mut self, q: usize) -> u64 {
        let ph = self.get(lane::ANN_COUNT, q);
        self.set(lane::ANN_COUNT, q, ph + 1);
        ph
    }

    /// Phase that `Candidate`s arriving on port `q` belong to (the number
    /// of `UpDone`s seen on it).
    #[inline]
    pub(crate) fn updone_count(&self, q: usize) -> u64 {
        self.get(lane::UPDONE_COUNT, q)
    }

    /// Consumes one `UpDone` on port `q`: returns its phase (the
    /// pre-increment count) and advances the count.
    #[inline]
    pub(crate) fn bump_updone_count(&mut self, q: usize) -> u64 {
        let ph = self.get(lane::UPDONE_COUNT, q);
        self.set(lane::UPDONE_COUNT, q, ph + 1);
        ph
    }

    /// Whether the edge behind port `q` is marked as an MST edge.
    #[inline]
    pub(crate) fn mst(&self, q: usize) -> bool {
        self.get(lane::MST, q) != 0
    }

    /// Marks the edge behind port `q` as an MST edge.
    #[inline]
    pub(crate) fn mark_mst(&mut self, q: usize) {
        self.set(lane::MST, q, 1);
    }

    /// The `(round, words charged)` send ledger of port `q`.
    #[inline]
    pub(crate) fn ledger(&self, q: usize) -> (u64, u64) {
        (self.get(lane::LEDGER_ROUND, q), self.get(lane::LEDGER_WORDS, q))
    }

    /// Charges `words` against port `q` for `round`, resetting the ledger
    /// if the round moved on since the last charge.
    #[inline]
    pub(crate) fn charge_ledger(&mut self, q: usize, round: u64, words: u64) {
        let (r, used) = self.ledger(q);
        let used = if r == round { used } else { 0 };
        self.set(lane::LEDGER_ROUND, q, round);
        self.set(lane::LEDGER_WORDS, q, used + words);
    }
}

/// Which direction a subtree minimum came from during an argmin
/// convergecast (the downcast retraces these selections).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub(crate) enum Sel {
    /// No candidate in my subtree.
    #[default]
    None,
    /// My own incident edge at this port.
    Mine(PortId),
    /// Reported by the fragment child behind this port.
    Child(PortId),
}

/// Stage A working state.
#[derive(Clone, Debug, Default)]
pub(crate) struct AState {
    pub seen: bool,
    pub close_round: u64,
    pub closed: bool,
    pub size_pending: usize,
    pub acc_size: u64,
    pub acc_height: u64,
    pub reported: bool,
}

/// Per-phase Controlled-GHS scratch (reset at each Announce window).
#[derive(Clone, Debug, Default)]
pub(crate) struct BScratch {
    pub probed: bool,
    pub probe_pending: usize,
    pub agg: Option<CandKey>,
    pub overflow: bool,
    pub responded: bool,
    pub sel: Sel,
    pub participating: bool,
    pub out_port: Option<PortId>,
    /// Port-indexed: `(child fragment id, matched?)` for registered foreign
    /// children.
    pub foreign_child: Vec<Option<(u64, bool)>>,
    pub kids_pending: usize,
    pub kids_agg: bool,
    pub has_kids: bool,
    pub color: u64,
    pub prev_color: u64,
    pub parent_color: Option<u64>,
    pub matched: bool,
    pub newly_matched: bool,
    pub partner: Option<u64>,
    pub col_pending: usize,
    pub col_agg: Option<u64>,
    pub col_sel: Sel,
    pub merge_ports: Vec<PortId>,
    pub matched_port: Option<PortId>,
    pub flooded: bool,

    // ---- sync-ended adaptive phases only (see `schedule::ScheduleMode`) ----
    /// Port the merge flood arrived on (flood-tree parent; `None` at flood
    /// initiators and adopters).
    pub flood_from: Option<PortId>,
    /// Ports this vertex forwarded `NewFrag` to (flood-tree children).
    pub flood_fwd: Vec<PortId>,
    /// `FloodAck`s still outstanding from `flood_fwd`.
    pub ack_pending: usize,
    /// This vertex received its settle signal: its merge flood has been
    /// processed and acked, or its fragment root guaranteed no flood.
    pub settled: bool,
    /// `SyncUp` reports received from BFS children this phase.
    pub sync_recv: usize,
    /// This vertex already reported `SyncUp` (or, at the BFS root,
    /// already broadcast `SyncStart`).
    pub sync_sent: bool,
}

/// Stage C working state.
#[derive(Clone, Debug, Default)]
pub(crate) struct CState {
    pub entered: bool,
    pub interval_received: bool,
    pub registered: bool,
    pub reg_queue: VecDeque<u64>,
    pub reg_done_children: usize,
    pub reg_done_sent: bool,
}

/// Per-phase Stage D scratch, replaced wholesale when the phase rolls
/// (`ElkinNode::cd_roll_phase`, triggered by the `Assign`/`NewCoarse`
/// answer path). Messages of the *next* phase that arrive early are held
/// in the node-level skew buffers (`ann_recv_next` & co.) and folded in at
/// the roll — under the fused-phase protocol neighboring vertices are
/// never more than one phase apart.
#[derive(Clone, Debug, Default)]
pub(crate) struct DScratch {
    /// The phase this scratch belongs to.
    pub phase: u64,
    /// This vertex broadcast its `CoarseAnnounce` for `phase`.
    pub announced: bool,
    /// `CoarseAnnounce`s of `phase` received (aggregation may start at
    /// `deg` — *local* readiness; no global announce barrier exists).
    pub ann_recv: usize,
    /// `FragMwoeUp`s of `phase` received from fragment children.
    pub frag_up_recv: usize,
    /// Running best candidate `(key, src coarse, dst coarse)` over my
    /// fragment subtree (children merged on arrival, own edges at
    /// completion).
    pub agg: Option<(CandKey, u64, u64)>,
    pub sel: Sel,
    /// `FragMwoeUp` sent up (or, at fragment roots, the aggregate turned
    /// into a pipelined record — see `injected`).
    pub responded: bool,
    pub injected: bool,
    /// Best known candidate per source coarse id (also the BFS root's
    /// collection).
    pub up_best: BTreeMap<u64, Candidate>,
    /// Best key already forwarded per source coarse id.
    pub up_sent: BTreeMap<u64, CandKey>,
    /// Entries of `up_best` not yet forwarded, ordered by key (send queue).
    pub up_pending: std::collections::BTreeSet<(CandKey, u64)>,
    pub updone_children: usize,
    pub updone_sent: bool,
}

/// Coordination state held only by the BFS root (the paper's `rt`, which
/// stores the fragment graph locally).
#[derive(Clone, Debug, Default)]
pub(crate) struct RootState {
    pub slots: Vec<u64>,
    pub reg_done_children: usize,
    pub reg_complete: bool,
    /// Current coarse id of each registered base fragment (by slot).
    pub slot_coarse: BTreeMap<u64, u64>,
}

/// The algorithm's per-vertex program. Construct via [`ElkinNode::new`] and
/// run under `congest_sim::Network`; after quiescence,
/// [`ElkinNode::mst_ports`] holds the output.
#[derive(Clone, Debug)]
pub struct ElkinNode {
    // Immutable identity.
    pub(crate) id: u64,
    pub(crate) deg: usize,
    pub(crate) cfg: ElkinConfig,

    /// All port-indexed state — weights, neighbor knowledge, announce and
    /// `UpDone` counts, MST marks, and the per-port `(round, words)` send
    /// ledger (control messages record their usage so pipelines can spend
    /// what is left of the per-edge budget without oversubscribing a
    /// shared fragment-tree/BFS-tree edge) — in one lane-major allocation.
    pub(crate) ports: PortArena,

    // Stage progression.
    pub(crate) stage: Stage,
    pub(crate) finished: bool,
    /// The global done flag arrived; we finish once our queues drain.
    pub(crate) done_seen: bool,

    pub(crate) a: AState,
    pub(crate) params: Option<Params>,
    pub(crate) sched: Option<Schedule>,

    // Adaptive-schedule phase tracking (ScheduleMode::Adaptive only):
    // sync-ended phases have no precomputed start, so the node carries the
    // current phase and its start round explicitly.
    pub(crate) b_phase: u32,
    pub(crate) b_phase_start: u64,
    /// Pending transition agreed via `SyncStart`: `(next phase, start
    /// round)`; a phase index equal to the phase count means Stage C.
    pub(crate) b_next: Option<(u32, u64)>,

    // BFS tree (stage A output).
    pub(crate) depth: u64,
    pub(crate) bfs_parent: Option<PortId>,
    pub(crate) bfs_children: Vec<PortId>,
    pub(crate) child_sizes: Vec<u64>,

    // Fragment membership (evolves through stage B; fixed in C/D).
    pub(crate) frag_id: u64,
    pub(crate) frag_parent: Option<PortId>,
    pub(crate) frag_children: Vec<PortId>,

    pub(crate) b: BScratch,

    // Stage C/D state.
    pub(crate) slot: u64,
    pub(crate) child_ivs: Vec<(u64, u64)>,
    pub(crate) coarse: u64,
    /// `Some(j)`: the coarse id is current for phase `j` (always equal to
    /// `d.phase` once initialized — the roll and the id update are one
    /// event).
    pub(crate) coarse_ready: Option<u64>,
    pub(crate) c: CState,
    pub(crate) d: DScratch,

    // Fused-phase skew buffers (survive the per-phase scratch roll).
    // Per-edge FIFO delivery plus once-per-phase send discipline let the
    // receiver infer the phase of `CoarseAnnounce`/`Candidate`/`UpDone`
    // from the cumulative per-port counts in `ports` (the `ANN_COUNT` /
    // `UPDONE_COUNT` / `NBR_COARSE_NEXT` lanes); anything one phase ahead
    // of the local scratch parks here until `cd_roll_phase`.
    /// Number of phase-`d.phase + 1` announcements already received.
    pub(crate) ann_recv_next: usize,
    /// `UpDone`s of phase `d.phase + 1` already received from BFS children.
    pub(crate) updone_next: usize,
    /// Candidate records of phase `d.phase + 1` received early.
    pub(crate) cand_next: Vec<Candidate>,
    /// Pipelined downcast queues, one per BFS child (parallel to
    /// `bfs_children`).
    pub(crate) down: Vec<VecDeque<Msg>>,
    pub(crate) root: Option<Box<RootState>>,
    /// Milestone rounds: when this vertex entered Stage B, Stage C/D, the
    /// first Borůvka phase, and the finished state (for stage profiling).
    pub(crate) milestones: Milestones,
}

/// Rounds at which a vertex crossed each stage boundary (u64::MAX until
/// crossed). Aggregated by the runner into a per-run stage profile.
#[derive(Clone, Copy, Debug)]
pub struct Milestones {
    /// Entered Stage B (Controlled-GHS) — end of Stage A.
    pub entered_b: u64,
    /// Entered Stage C (intervals/registration) — end of Stage B.
    pub entered_cd: u64,
    /// Received the initial coarse id (`InitCoarse`, or owning a slot at a
    /// fragment root) — this vertex can announce Borůvka phase 0, so its
    /// Stage C is over. Under the fused protocol the registration pipeline
    /// may still be draining elsewhere; the boundary is per-vertex.
    pub entered_d: u64,
    /// Reached the finished state.
    pub finished_at: u64,
}

impl Default for Milestones {
    fn default() -> Self {
        Self {
            entered_b: u64::MAX,
            entered_cd: u64::MAX,
            entered_d: u64::MAX,
            finished_at: u64::MAX,
        }
    }
}

/// Coarse stage marker.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Stage {
    A,
    B,
    CD,
}

impl ElkinNode {
    /// Builds the program for one vertex from its simulator-provided
    /// [`NodeInfo`] and the run configuration.
    pub fn new(info: NodeInfo<'_>, cfg: ElkinConfig) -> Self {
        let deg = info.ports.len();
        Self {
            id: info.id as u64,
            deg,
            ports: PortArena::new(deg, info.ports.iter().map(|p| p.weight)),
            cfg,
            stage: Stage::A,
            finished: false,
            done_seen: false,
            a: AState::default(),
            params: None,
            sched: None,
            b_phase: 0,
            b_phase_start: 0,
            b_next: None,
            depth: 0,
            bfs_parent: None,
            bfs_children: Vec::new(),
            child_sizes: Vec::new(),
            frag_id: info.id as u64,
            frag_parent: None,
            frag_children: Vec::new(),
            b: BScratch::default(),
            slot: 0,
            child_ivs: Vec::new(),
            coarse: 0,
            coarse_ready: None,
            c: CState::default(),
            d: DScratch::default(),
            ann_recv_next: 0,
            updone_next: 0,
            cand_next: Vec::new(),
            down: Vec::new(),
            root: None,
            milestones: Milestones::default(),
        }
    }

    /// Whether this vertex is the designated BFS root.
    #[inline]
    pub(crate) fn is_bfs_root(&self) -> bool {
        self.id == self.cfg.root as u64
    }

    /// Whether this vertex is currently its fragment's root.
    #[inline]
    pub(crate) fn is_frag_root(&self) -> bool {
        self.frag_id == self.id
    }

    /// Ports that are incident MST edges, in ascending order — the
    /// algorithm's required per-vertex output.
    pub fn mst_ports(&self) -> Vec<PortId> {
        (0..self.deg).filter(|&p| self.ports.mst(p)).collect()
    }

    /// The parameter `k` this run settled on (after Stage A).
    pub fn chosen_k(&self) -> Option<u64> {
        self.params.map(|p| p.k)
    }

    /// The base-fragment id this vertex ended Stage B with.
    pub fn base_fragment(&self) -> u64 {
        self.frag_id
    }

    /// This vertex's fragment-tree parent port, if any.
    pub fn fragment_parent(&self) -> Option<PortId> {
        self.frag_parent
    }

    /// This vertex's BFS depth (valid after Stage A).
    pub fn bfs_depth(&self) -> u64 {
        self.depth
    }

    /// This vertex's BFS-tree parent port (valid after Stage A; `None` at
    /// the BFS root).
    pub fn bfs_parent_port(&self) -> Option<PortId> {
        self.bfs_parent
    }

    /// Which incident ports are currently marked as MST edges, by port.
    pub fn mst_marks(&self) -> Vec<bool> {
        (0..self.deg).map(|p| self.ports.mst(p)).collect()
    }

    /// Stage-boundary rounds recorded by this vertex.
    pub fn milestones(&self) -> Milestones {
        self.milestones
    }

    /// Sends a stage C/D message and records its words against this round's
    /// per-port budget (the arena's ledger lanes).
    pub(crate) fn send_cd(&mut self, ctx: &mut RoundCtx<'_, Msg>, port: PortId, msg: Msg) {
        use congest_sim::Message as _;
        self.ports.charge_ledger(port, ctx.round(), u64::from(msg.words()));
        ctx.send(port, msg);
    }

    /// Words still available for pipelined sends on `port` this round.
    ///
    /// The full per-edge capacity is handed to the pipelines: within a
    /// round, every unconditional control send (handler forwards, the
    /// announce and `FragMwoeUp` steps, the root merge's answers) happens
    /// *before* the budget-aware flushes, and the remaining completion
    /// markers (`UpDone`/`RegDone`) are themselves budget-checked — so no
    /// headroom needs reserving. The simulator's strict capacity check
    /// loudly rejects any future send that violates this ordering.
    pub(crate) fn pipe_budget(&self, round: u64, port: PortId) -> u32 {
        let cap = congest_sim::UNIT_WORDS * self.cfg.bandwidth;
        let (r, used) = self.ports.ledger(port);
        // Per-round usage is bounded by `cap` (a u32): the narrowing cast
        // from the u64 ledger lane cannot truncate.
        let used = if r == round { used as u32 } else { 0 };
        cap.saturating_sub(used)
    }
}

/// The wake-guard table: one row per wire tag, mirroring
/// `(tag, census stage letter, the next_wake helper that schedules the
/// stage's spontaneous rounds)`.
///
/// This is the contract that `dmst-analysis`'s `tag-guard` rule enforces
/// both ways: every tag `Msg::tag()` can return must appear here (so a new
/// message class cannot land without auditing its census letter and wake
/// guard — drift the proptests previously caught only by shrinkage), and
/// every row must name a live tag, a letter `stage_tag` actually returns,
/// and an existing guard function. `msg::tests::tag_guards_mirror_tags`
/// cross-checks the table against the enum at test time.
pub(crate) const TAG_GUARDS: &[(&str, char, &str)] = &[
    ("a:bfs", 'a', "next_wake"),
    ("b:announce", 'b', "b_next_wake"),
    ("b:color", 'b', "b_next_wake"),
    ("b:connect", 'b', "b_next_wake"),
    ("b:match", 'b', "b_next_wake"),
    ("b:merge", 'b', "b_next_wake"),
    ("b:mwoe", 'b', "b_next_wake"),
    ("b:sync", 'b', "b_next_wake"),
    ("c:intervals", 'c', "cd_next_wake"),
    ("d:announce", 'd', "cd_next_wake"),
    ("d:downcast", 'd', "cd_next_wake"),
    ("d:fragmwoe", 'd', "cd_next_wake"),
    ("d:newcoarse", 'd', "cd_next_wake"),
    ("d:upcast", 'd', "cd_next_wake"),
];

impl NodeProgram for ElkinNode {
    type Msg = Msg;

    fn on_round(&mut self, ctx: &mut RoundCtx<'_, Msg>) {
        // Messages first (they were sent last round and logically precede
        // this round's actions), then stage-specific scheduled actions.
        match self.stage {
            Stage::A => {
                self.a_handle(ctx);
                self.a_act(ctx);
            }
            Stage::B => {
                self.b_handle(ctx);
                self.b_act(ctx);
            }
            Stage::CD => {
                self.cd_handle(ctx);
                self.cd_act(ctx);
            }
        }
    }

    fn is_done(&self) -> bool {
        self.finished
    }

    // Idle-skip hints (see the trait contract): each stage reports the next
    // round at which it would act spontaneously; everything else is
    // message-driven and the simulator wakes us on delivery. A wrong hint
    // here changes message timing, which the golden round pins catch.
    fn next_wake(&self, after: u64) -> Option<u64> {
        if self.finished {
            return None;
        }
        match self.stage {
            Stage::A => {
                if self.a.seen && !self.a.closed {
                    // `BfsChild` replies close two rounds after our send.
                    Some(self.a.close_round)
                } else {
                    // With parameters agreed, Stage B starts at t0; until
                    // then everything (BFS wave, size convergecast, the
                    // params broadcast) arrives as messages.
                    self.params.map(|p| p.t0)
                }
            }
            Stage::B => self.b_next_wake(after),
            Stage::CD => self.cd_next_wake(after),
        }
    }

    fn stage_tag(&self) -> &'static str {
        let letter = match self.stage {
            Stage::A => "a",
            Stage::B => "b",
            // Stage D begins when this vertex holds its initial coarse id
            // (it can announce phase 0 from then on). A round counts as
            // "c" until the last vertex crosses, so the network-level
            // partition a+b+c+d == rounds still holds under fused phases.
            Stage::CD if self.milestones.entered_d != u64::MAX => "d",
            Stage::CD => "c",
        };
        debug_assert!(
            TAG_GUARDS.iter().any(|&(_, l, _)| letter.starts_with(l)),
            "census letter {letter:?} governs no TAG_GUARDS row"
        );
        letter
    }
}
