//! Stages C and D: interval labeling, fragment registration, and the
//! Borůvka phases over the base forest (paper §3).
//!
//! Unlike Stage B, these stages are *event-driven*: sub-steps are separated
//! by explicit completion markers and BFS-tree barriers instead of fixed
//! round windows. Each barrier costs `O(H)` rounds and `O(n)` messages per
//! phase — within the paper's `O((D + k + n/(kb)) log n)` round and
//! `O((m + n) log n)` message budget for this stage — and keeps measured
//! round counts honest (no idle padding to window ends).
//!
//! Per phase `j`:
//!
//! 1. `StartPhase` floods down the BFS tree; every vertex announces its
//!    coarse id to all neighbors once its own id is current; the `AnnDone`
//!    convergecast tells the root when every announcement has landed.
//! 2. `MwoeGo` floods down; every base-fragment root runs a
//!    broadcast/convergecast (`FragProbe` / `FragMwoeUp`) computing the
//!    lightest edge leaving the *coarse* fragment, remembering the argmin
//!    path.
//! 3. Fragment roots inject `Candidate` records into the pipelined upcast:
//!    every BFS vertex keeps only the best record per source coarse id,
//!    forwards improvements smallest-key-first under the per-edge word
//!    budget, and sends `UpDone` when its subtree is exhausted.
//! 4. The BFS root merges the fragment graph locally (union–find over
//!    coarse ids, one MWOE per coarse fragment — exactly the computation
//!    the paper assigns to `rt`), picks the chosen MST edges, and answers
//!    every base fragment with an interval-routed, pipelined `Assign`.
//! 5. Fragment roots broadcast `NewCoarse` internally; chosen candidates
//!    are marked by a `MarkPath` downcast along the remembered argmin path
//!    plus a `MarkCross` over the edge itself. The `PhaseDone` convergecast
//!    triggers the next phase; `done` rides the `Assign`/`NewCoarse`
//!    messages when one coarse fragment remains.

use congest_sim::{PortId, RoundCtx};

use crate::candidate::{CandKey, Candidate};
use crate::msg::Msg;

use super::{DScratch, ElkinNode, Sel, UNKNOWN};

impl ElkinNode {
    /// Called once when Stage B's schedule ends.
    pub(crate) fn cd_enter(&mut self, ctx: &mut RoundCtx<'_, Msg>) {
        debug_assert!(!self.c.entered);
        self.c.entered = true;
        self.milestones.entered_cd = ctx.round();
        if self.cfg.stop_after_forest {
            // Theorem 4.3 standalone: the base forest is the deliverable.
            self.finished = true;
            return;
        }
        self.down = vec![std::collections::VecDeque::new(); self.bfs_children.len()];
        if self.is_bfs_root() {
            self.root = Some(Box::default());
            self.cd_take_interval(ctx, 0);
        }
    }

    /// Receive my interval, hand sub-intervals to my BFS children, and (if I
    /// root a base fragment) register with the BFS root and initialize my
    /// fragment's coarse id.
    fn cd_take_interval(&mut self, ctx: &mut RoundCtx<'_, Msg>, start: u64) {
        self.slot = start;
        self.c.interval_received = true;
        self.child_ivs = crate::intervals::assign_children(start, &self.child_sizes);
        for (i, &(cstart, size)) in self.child_ivs.clone().iter().enumerate() {
            self.send_cd(ctx, self.bfs_children[i], Msg::Interval { start: cstart, size });
        }
        if self.is_frag_root() {
            self.c.registered = true;
            let slot = self.slot;
            if let Some(root) = self.root.as_mut() {
                root.slots.push(slot);
                root.slot_coarse.insert(slot, slot);
            } else {
                self.c.reg_queue.push_back(slot);
            }
            self.coarse = slot;
            self.coarse_ready = Some(0);
            for &q in &self.frag_children.clone() {
                self.send_cd(ctx, q, Msg::InitCoarse { id: slot });
            }
        }
    }

    pub(crate) fn cd_handle(&mut self, ctx: &mut RoundCtx<'_, Msg>) {
        let inbox: Vec<(usize, Msg)> = ctx.inbox().to_vec();
        for (port, msg) in inbox {
            match msg {
                Msg::Interval { start, .. } => self.cd_take_interval(ctx, start),
                Msg::InitCoarse { id } => {
                    self.coarse = id;
                    self.coarse_ready = Some(0);
                    for &q in &self.frag_children.clone() {
                        self.send_cd(ctx, q, Msg::InitCoarse { id });
                    }
                }
                Msg::Register { slot, .. } => {
                    if let Some(root) = self.root.as_mut() {
                        root.slots.push(slot);
                        root.slot_coarse.insert(slot, slot);
                    } else {
                        self.c.reg_queue.push_back(slot);
                    }
                }
                Msg::RegDone => {
                    if let Some(root) = self.root.as_mut() {
                        root.reg_done_children += 1;
                    } else {
                        self.c.reg_done_children += 1;
                    }
                }
                Msg::StartPhase { j } => {
                    debug_assert_eq!(j, self.d.phase, "phase skew at vertex {}", self.id);
                    self.d.started = true;
                    if j == 0 {
                        self.milestones.entered_d = ctx.round();
                    }
                    for &q in &self.bfs_children.clone() {
                        self.send_cd(ctx, q, Msg::StartPhase { j });
                    }
                }
                Msg::CoarseAnnounce { coarse, me } => {
                    self.nbr_coarse[port] = coarse;
                    self.nbr_id[port] = me;
                    self.d.ann_recv += 1;
                }
                Msg::AnnDone => self.d.ann_done_children += 1,
                Msg::MwoeGo => {
                    if !self.d.mwoe_go {
                        self.d.mwoe_go = true;
                        for &q in &self.bfs_children.clone() {
                            self.send_cd(ctx, q, Msg::MwoeGo);
                        }
                    }
                }
                Msg::FragProbe => self.cd_probe_receive(ctx, port),
                Msg::FragMwoeUp { cand } => {
                    if let Some((key, sc, dc)) = cand {
                        if self.d.agg.is_none_or(|(a, _, _)| key < a) {
                            self.d.agg = Some((key, sc, dc));
                            self.d.sel = Sel::Child(port);
                        }
                    }
                    self.d.probe_pending -= 1;
                    if self.d.probe_pending == 0 {
                        self.cd_probe_complete(ctx);
                    }
                }
                Msg::Candidate { rec } => self.cd_offer(rec),
                Msg::UpDone => self.d.updone_children += 1,
                Msg::Assign { dest_slot, new_coarse, chosen, done } => {
                    if dest_slot == self.slot {
                        self.cd_consume_assign(ctx, new_coarse, chosen, done);
                    } else {
                        let idx = self.cd_route(dest_slot);
                        self.down[idx].push_back(Msg::Assign {
                            dest_slot,
                            new_coarse,
                            chosen,
                            done,
                        });
                    }
                }
                Msg::NewCoarse { id, done } => self.cd_apply_new_coarse(ctx, id, done),
                Msg::MarkPath => match self.d.sel {
                    Sel::Mine(q) => {
                        self.mst[q] = true;
                        self.send_cd(ctx, q, Msg::MarkCross);
                    }
                    Sel::Child(c) => self.send_cd(ctx, c, Msg::MarkPath),
                    Sel::None => unreachable!("MarkPath reached a subtree without a candidate"),
                },
                Msg::MarkCross => self.mst[port] = true,
                Msg::PhaseDone => self.d.phase_done_children += 1,
                other => unreachable!("stage C/D received {other:?}"),
            }
        }
    }

    pub(crate) fn cd_act(&mut self, ctx: &mut RoundCtx<'_, Msg>) {
        // --- Stage C: registration pipeline and its completion barrier ---
        if self.c.interval_received && !self.c.reg_done_sent {
            if let Some(parent) = self.bfs_parent {
                while self.pipe_budget(ctx.round(), parent) >= 2 {
                    match self.c.reg_queue.pop_front() {
                        Some(slot) => {
                            self.send_cd(ctx, parent, Msg::Register { slot, height: 0 });
                        }
                        None => break,
                    }
                }
                let my_duty = !self.is_frag_root() || self.c.registered;
                if my_duty
                    && self.c.reg_queue.is_empty()
                    && self.c.reg_done_children == self.bfs_children.len()
                {
                    self.send_cd(ctx, parent, Msg::RegDone);
                    self.c.reg_done_sent = true;
                }
            }
        }
        if let Some(root) = self.root.as_mut() {
            if !root.reg_complete
                && self.c.interval_received
                && root.reg_done_children == self.bfs_children.len()
            {
                root.reg_complete = true;
                root.slots.sort_unstable();
                self.d.started = true;
                self.milestones.entered_d = ctx.round();
                for &q in &self.bfs_children.clone() {
                    self.send_cd(ctx, q, Msg::StartPhase { j: 0 });
                }
            }
        }

        // --- Stage D per-phase steps, evaluated every round ---
        // (a) Announce once the phase is open and our coarse id is current.
        if self.d.started && !self.d.announced && self.coarse_ready == Some(self.d.phase) {
            self.d.announced = true;
            let coarse = self.coarse;
            for q in 0..self.deg {
                self.send_cd(ctx, q, Msg::CoarseAnnounce { coarse, me: self.id });
            }
        }

        // (b) Announce barrier.
        if self.d.announced
            && !self.d.ann_done_sent
            && self.d.ann_recv == self.deg
            && self.d.ann_done_children == self.bfs_children.len()
        {
            self.d.ann_done_sent = true;
            if let Some(parent) = self.bfs_parent {
                self.send_cd(ctx, parent, Msg::AnnDone);
            } else {
                self.d.mwoe_go = true;
                for &q in &self.bfs_children.clone() {
                    self.send_cd(ctx, q, Msg::MwoeGo);
                }
            }
        }

        // (c) Fragment MWOE search kick-off at base-fragment roots.
        if self.d.mwoe_go && self.is_frag_root() && !self.d.probed {
            self.d.probed = true;
            let (agg, sel) = self.cd_local_candidate();
            self.d.agg = agg;
            self.d.sel = sel;
            self.d.probe_pending = self.frag_children.len();
            if self.d.probe_pending == 0 {
                self.cd_inject();
            } else {
                for &q in &self.frag_children.clone() {
                    self.send_cd(ctx, q, Msg::FragProbe);
                }
            }
        }

        // (d) Candidate pipeline flush toward the BFS parent.
        if self.bfs_parent.is_some() && !self.d.up_pending.is_empty() {
            let parent = self.bfs_parent.expect("checked");
            while self.pipe_budget(ctx.round(), parent) >= 6 {
                let Some(&(key, sc)) = self.d.up_pending.iter().next() else { break };
                self.d.up_pending.remove(&(key, sc));
                let rec = self.d.up_best[&sc];
                debug_assert_eq!(rec.key, key);
                self.d.up_sent.insert(sc, key);
                self.send_cd(ctx, parent, Msg::Candidate { rec });
            }
        }

        // (e) Upcast completion / (f) root-local merge.
        let my_inject_done = self.d.injected || (self.d.mwoe_go && !self.is_frag_root());
        if !self.d.updone_sent
            && self.d.mwoe_go
            && my_inject_done
            && self.d.updone_children == self.bfs_children.len()
            && self.d.up_pending.is_empty()
        {
            self.d.updone_sent = true;
            if let Some(parent) = self.bfs_parent {
                self.send_cd(ctx, parent, Msg::UpDone);
            } else {
                self.cd_root_merge(ctx);
            }
        }

        // Downcast pipeline flush (runs in every phase and after `done`).
        for i in 0..self.down.len() {
            let port = self.bfs_children[i];
            while self.pipe_budget(ctx.round(), port) >= 3 {
                match self.down[i].pop_front() {
                    Some(m) => self.send_cd(ctx, port, m),
                    None => break,
                }
            }
        }

        // (g) Phase barrier / termination.
        if self.d.new_coarse_seen
            && !self.done_seen
            && !self.d.phase_done_sent
            && self.d.phase_done_children == self.bfs_children.len()
        {
            self.d.phase_done_sent = true;
            if let Some(parent) = self.bfs_parent {
                self.send_cd(ctx, parent, Msg::PhaseDone);
                self.d = DScratch { phase: self.d.phase + 1, ..DScratch::default() };
            } else {
                let next = self.d.phase + 1;
                self.d = DScratch { phase: next, started: true, ..DScratch::default() };
                for &q in &self.bfs_children.clone() {
                    self.send_cd(ctx, q, Msg::StartPhase { j: next });
                }
            }
        }

        // Quiesce only when everything queued has been flushed.
        if self.done_seen
            && self.d.up_pending.is_empty()
            && self.c.reg_queue.is_empty()
            && self.down.iter().all(|q| q.is_empty())
        {
            if !self.finished {
                self.milestones.finished_at = ctx.round();
            }
            self.finished = true;
        }
    }

    // ---- helpers ----

    /// Lightest incident edge leaving my *coarse* fragment.
    fn cd_local_candidate(&self) -> (Option<(CandKey, u64, u64)>, Sel) {
        let mut best: Option<(CandKey, u64, u64)> = None;
        let mut sel = Sel::None;
        for q in 0..self.deg {
            let nc = self.nbr_coarse[q];
            if nc != self.coarse && nc != UNKNOWN {
                let key = CandKey::new(self.weights[q], self.id, self.nbr_id[q]);
                if best.is_none_or(|(b, _, _)| key < b) {
                    best = Some((key, self.coarse, nc));
                    sel = Sel::Mine(q);
                }
            }
        }
        (best, sel)
    }

    fn cd_probe_receive(&mut self, ctx: &mut RoundCtx<'_, Msg>, port: PortId) {
        debug_assert!(!self.d.probed);
        debug_assert_eq!(Some(port), self.frag_parent);
        self.d.probed = true;
        let (agg, sel) = self.cd_local_candidate();
        self.d.agg = agg;
        self.d.sel = sel;
        self.d.probe_pending = self.frag_children.len();
        if self.d.probe_pending == 0 {
            self.send_cd(ctx, port, Msg::FragMwoeUp { cand: self.d.agg });
            self.d.responded = true;
        } else {
            for &q in &self.frag_children.clone() {
                self.send_cd(ctx, q, Msg::FragProbe);
            }
        }
    }

    fn cd_probe_complete(&mut self, ctx: &mut RoundCtx<'_, Msg>) {
        if self.is_frag_root() {
            self.cd_inject();
        } else if !self.d.responded {
            self.d.responded = true;
            let up = self.frag_parent.expect("non-root has a fragment parent");
            self.send_cd(ctx, up, Msg::FragMwoeUp { cand: self.d.agg });
        }
    }

    /// Fragment root: turn the aggregate into a pipelined record.
    fn cd_inject(&mut self) {
        debug_assert!(!self.d.injected);
        self.d.injected = true;
        if let Some((key, sc, dc)) = self.d.agg {
            let rec = Candidate { key, src_coarse: sc, dst_coarse: dc, src_slot: self.slot };
            self.cd_offer(rec);
        }
    }

    /// Filtered insert into the upcast buffer (also the BFS root's
    /// collection): keep only improvements per source coarse id.
    fn cd_offer(&mut self, rec: Candidate) {
        let sc = rec.src_coarse;
        if self.d.up_sent.get(&sc).is_some_and(|s| *s <= rec.key) {
            return;
        }
        if let Some(old) = self.d.up_best.get(&sc) {
            if old.key <= rec.key {
                return;
            }
            self.d.up_pending.remove(&(old.key, sc));
        }
        self.d.up_best.insert(sc, rec);
        if self.bfs_parent.is_some() {
            self.d.up_pending.insert((rec.key, sc));
        }
    }

    /// BFS-root-local Borůvka merge of the fragment graph (paper §3: `rt`
    /// computes the MWOEs, merges fragments, and answers every base
    /// fragment).
    /// BFS-root-local Borůvka merge of the fragment graph (paper §3: `rt`
    /// computes the MWOEs, merges fragments, and answers every base
    /// fragment). The pure computation lives in
    /// [`merge_fragment_graph`](crate::fraggraph::merge_fragment_graph).
    fn cd_root_merge(&mut self, ctx: &mut RoundCtx<'_, Msg>) {
        let mut root = self.root.take().expect("only the BFS root merges");

        let coarse_ids: Vec<u64> = root.slot_coarse.values().copied().collect();
        let outcome = crate::fraggraph::merge_fragment_graph(&coarse_ids, &self.d.up_best);
        let done = outcome.done;
        root.done_flag = done;

        // Answer every base fragment with its new coarse id.
        let slots = root.slots.clone();
        for &slot in &slots {
            let old = root.slot_coarse[&slot];
            let nc = outcome.new_id[&old];
            root.slot_coarse.insert(slot, nc);
            let chosen = outcome.chosen_slots.contains(&slot);
            if slot == self.slot {
                self.root = Some(root);
                self.cd_consume_assign(ctx, nc, chosen, done);
                root = self.root.take().expect("restored above");
            } else {
                let idx = self.cd_route(slot);
                self.down[idx].push_back(Msg::Assign {
                    dest_slot: slot,
                    new_coarse: nc,
                    chosen,
                    done,
                });
            }
        }
        self.root = Some(root);
    }

    /// Which BFS child's interval contains `dest`?
    fn cd_route(&self, dest: u64) -> usize {
        crate::intervals::route(&self.child_ivs, dest)
            .unwrap_or_else(|| panic!("slot {dest} not in any child interval of {}", self.id))
    }

    /// A base-fragment root received its phase answer: broadcast the new
    /// coarse id, mark the chosen edge, and run my own update.
    fn cd_consume_assign(
        &mut self,
        ctx: &mut RoundCtx<'_, Msg>,
        nc: u64,
        chosen: bool,
        done: bool,
    ) {
        debug_assert!(self.is_frag_root());
        if chosen {
            match self.d.sel {
                Sel::Mine(q) => {
                    self.mst[q] = true;
                    self.send_cd(ctx, q, Msg::MarkCross);
                }
                Sel::Child(c) => self.send_cd(ctx, c, Msg::MarkPath),
                Sel::None => unreachable!("chosen candidate without a selection"),
            }
        }
        for &q in &self.frag_children.clone() {
            self.send_cd(ctx, q, Msg::NewCoarse { id: nc, done });
        }
        self.cd_apply_new_coarse_local(nc, done);
    }

    fn cd_apply_new_coarse(&mut self, ctx: &mut RoundCtx<'_, Msg>, id: u64, done: bool) {
        for &q in &self.frag_children.clone() {
            self.send_cd(ctx, q, Msg::NewCoarse { id, done });
        }
        self.cd_apply_new_coarse_local(id, done);
    }

    fn cd_apply_new_coarse_local(&mut self, id: u64, done: bool) {
        self.coarse = id;
        self.coarse_ready = Some(self.d.phase + 1);
        self.d.new_coarse_seen = true;
        if done {
            self.done_seen = true;
        }
    }
}
