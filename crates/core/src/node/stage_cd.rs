//! Stages C and D: interval labeling, fragment registration, and the
//! fused, event-driven Borůvka phases over the base forest (paper §3).
//!
//! Unlike Stage B, these stages are *event-driven*: every sub-step triggers
//! on local completion events. Since PR 3 the Borůvka phases are **fused**
//! — no per-phase BFS-tree barrier exists. The seed protocol spent four
//! `O(H)` tree traversals per phase (`AnnDone` up, `MwoeGo` down,
//! `PhaseDone` up, `StartPhase` down) purely on control flow; the paper's
//! `O((D + k + n/(kb)) log n)` budget for this stage never required them,
//! and Pandurangan–Robinson–Scquizzato (arXiv:1703.02411) run the same
//! Borůvka-over-a-BFS-backbone with phases driven by local completion.
//!
//! Per phase `j`, fused:
//!
//! 1. A vertex broadcasts `CoarseAnnounce` to all neighbors the moment its
//!    coarse id for phase `j` is current (`InitCoarse` for `j = 0`, the
//!    `Assign`/`NewCoarse` answer of phase `j - 1` otherwise).
//! 2. It aggregates its *fragment subtree* as soon as all of its **own**
//!    neighbors' announcements have landed (local readiness — no global
//!    announce barrier) and all fragment children reported, then sends
//!    `FragMwoeUp` to its fragment parent; fragment roots turn the
//!    aggregate into a pipelined `Candidate` record instead.
//! 3. Candidates flow up the BFS tree filtered per coarse id; `UpDone`
//!    retires a subtree. This convergecast is the *only* per-phase global
//!    serialization — it is what the root merge needs anyway, and it
//!    bounds the phase skew between any two vertices to one.
//! 4. The BFS root merges the fragment graph locally (exactly the
//!    computation the paper assigns to `rt`) and answers every base
//!    fragment with an interval-routed, pipelined `Assign` **carrying
//!    phase `j + 1`**: receipt closes phase `j` and opens `j + 1` in one
//!    event, so fragments re-announce immediately.
//! 5. Fragment roots broadcast `NewCoarse` (also carrying `j + 1`); chosen
//!    candidates are marked by a `MarkPath` downcast along the remembered
//!    argmin path plus a `MarkCross` over the edge itself. `MarkPath` is
//!    always sent before the same edge's `NewCoarse`, so per-edge FIFO
//!    delivers it while the phase-`j` scratch (and its `Sel`) is intact.
//!    Termination needs no extra control flow: `done` rides the final
//!    answer path and every vertex quiesces once its queues drain.
//!
//! Messages of phase `j + 1` can arrive while a vertex still works on `j`
//! (its own answer may be stuck in the pipelined downcast); they park in
//! the node-level skew buffers and fold in when the phase rolls. Skew
//! beyond one phase is impossible: the root cannot merge `j + 1` before
//! every vertex contributed `UpDone` for it, which requires that vertex to
//! have finished `j`.

use congest_sim::{Message as _, RoundCtx};

use crate::candidate::{CandKey, Candidate};
use crate::msg::Msg;

use super::{DScratch, ElkinNode, Sel, UNKNOWN};

impl ElkinNode {
    /// Called once when Stage B's schedule ends.
    pub(crate) fn cd_enter(&mut self, ctx: &mut RoundCtx<'_, Msg>) {
        debug_assert!(!self.c.entered);
        self.c.entered = true;
        self.milestones.entered_cd = ctx.round();
        if self.cfg.stop_after_forest {
            // Theorem 4.3 standalone: the base forest is the deliverable.
            self.finished = true;
            return;
        }
        self.down = vec![std::collections::VecDeque::new(); self.bfs_children.len()];
        if self.is_bfs_root() {
            self.root = Some(Box::default());
            self.cd_take_interval(ctx, 0);
        }
    }

    /// Receive my interval, hand sub-intervals to my BFS children, and (if I
    /// root a base fragment) register with the BFS root and initialize my
    /// fragment's coarse id — which opens Borůvka phase 0 for me.
    fn cd_take_interval(&mut self, ctx: &mut RoundCtx<'_, Msg>, start: u64) {
        self.slot = start;
        self.c.interval_received = true;
        self.child_ivs = crate::intervals::assign_children(start, &self.child_sizes);
        for (i, &(cstart, size)) in self.child_ivs.clone().iter().enumerate() {
            self.send_cd(ctx, self.bfs_children[i], Msg::Interval { start: cstart, size });
        }
        if self.is_frag_root() {
            self.c.registered = true;
            let slot = self.slot;
            if let Some(root) = self.root.as_mut() {
                root.slots.push(slot);
                root.slot_coarse.insert(slot, slot);
            } else {
                self.c.reg_queue.push_back(slot);
            }
            self.coarse = slot;
            self.coarse_ready = Some(0);
            self.milestones.entered_d = ctx.round();
            for &q in &self.frag_children.clone() {
                self.send_cd(ctx, q, Msg::InitCoarse { id: slot });
            }
        }
    }

    pub(crate) fn cd_handle(&mut self, ctx: &mut RoundCtx<'_, Msg>) {
        let inbox: Vec<(usize, Msg)> = ctx.inbox().to_vec();
        for (port, msg) in inbox {
            match msg {
                Msg::Interval { start, .. } => self.cd_take_interval(ctx, start),
                Msg::InitCoarse { id } => {
                    self.coarse = id;
                    self.coarse_ready = Some(0);
                    self.milestones.entered_d = ctx.round();
                    for &q in &self.frag_children.clone() {
                        self.send_cd(ctx, q, Msg::InitCoarse { id });
                    }
                }
                Msg::Register { slot } => {
                    if let Some(root) = self.root.as_mut() {
                        root.slots.push(slot);
                        root.slot_coarse.insert(slot, slot);
                    } else {
                        self.c.reg_queue.push_back(slot);
                    }
                }
                Msg::RegDone => {
                    if let Some(root) = self.root.as_mut() {
                        root.reg_done_children += 1;
                    } else {
                        self.c.reg_done_children += 1;
                    }
                }
                Msg::CoarseAnnounce { coarse, me } => {
                    // The sender announces once per phase in phase order,
                    // so the per-port count *is* the announce's phase.
                    self.ports.set_nbr_id(port, me);
                    let ph = self.ports.bump_ann_count(port);
                    if ph == self.d.phase {
                        self.ports.set_nbr_coarse(port, coarse);
                        self.d.ann_recv += 1;
                    } else {
                        debug_assert_eq!(
                            ph,
                            self.d.phase + 1,
                            "announce phase skew > 1 at vertex {}",
                            self.id
                        );
                        self.ports.set_nbr_coarse_next(port, coarse);
                        self.ann_recv_next += 1;
                    }
                }
                Msg::FragMwoeUp { cand } => {
                    // A fragment subtree cannot outrun its own root, so
                    // this always belongs to the current phase.
                    debug_assert!(self.frag_children.contains(&port));
                    debug_assert!(
                        !self.d.responded,
                        "FragMwoeUp after subtree completion at vertex {}",
                        self.id
                    );
                    if let Some((key, sc, dc)) = cand {
                        if self.d.agg.is_none_or(|(a, _, _)| key < a) {
                            self.d.agg = Some((key, sc, dc));
                            self.d.sel = Sel::Child(port);
                        }
                    }
                    self.d.frag_up_recv += 1;
                }
                Msg::Candidate { rec } => {
                    // Candidates from a port belong to the phase after the
                    // last `UpDone` seen on it (per-edge FIFO).
                    let ph = self.ports.updone_count(port);
                    if ph == self.d.phase {
                        self.cd_offer(rec);
                    } else {
                        debug_assert_eq!(
                            ph,
                            self.d.phase + 1,
                            "candidate phase skew > 1 at vertex {}",
                            self.id
                        );
                        self.cand_next.push(rec);
                    }
                }
                Msg::UpDone => {
                    let ph = self.ports.bump_updone_count(port);
                    if ph == self.d.phase {
                        self.d.updone_children += 1;
                    } else {
                        debug_assert_eq!(
                            ph,
                            self.d.phase + 1,
                            "UpDone phase skew > 1 at vertex {}",
                            self.id
                        );
                        self.updone_next += 1;
                    }
                }
                Msg::Assign { dest_slot, new_coarse, chosen, done, next } => {
                    if dest_slot == self.slot {
                        self.cd_consume_assign(ctx, new_coarse, chosen, done, next);
                    } else {
                        let idx = self.cd_route(dest_slot);
                        self.down[idx].push_back(Msg::Assign {
                            dest_slot,
                            new_coarse,
                            chosen,
                            done,
                            next,
                        });
                    }
                }
                Msg::NewCoarse { id, done, next } => {
                    self.cd_apply_new_coarse(ctx, id, done, next);
                }
                // `MarkPath` was sent before the same phase's `NewCoarse`
                // on this edge, so FIFO guarantees it is processed while
                // `d.sel` still holds the phase's argmin selection.
                Msg::MarkPath => match self.d.sel {
                    Sel::Mine(q) => {
                        self.ports.mark_mst(q);
                        self.send_cd(ctx, q, Msg::MarkCross);
                    }
                    Sel::Child(c) => self.send_cd(ctx, c, Msg::MarkPath),
                    Sel::None => unreachable!("MarkPath reached a subtree without a candidate"),
                },
                Msg::MarkCross => self.ports.mark_mst(port),
                other => unreachable!("stage C/D received {other:?}"),
            }
        }
    }

    /// Per-round scheduled work. Unconditional control sends (announce,
    /// `FragMwoeUp`, `NewCoarse`/`MarkPath` via the root merge) run before
    /// the budget-aware pipeline flushes; `UpDone`/`RegDone` are deferred
    /// whenever the edge's word budget is exhausted this round, so a shared
    /// BFS-/fragment-tree edge is never oversubscribed.
    pub(crate) fn cd_act(&mut self, ctx: &mut RoundCtx<'_, Msg>) {
        let round = ctx.round();

        // --- Stage C: root-side registration completion (gates merge 0).
        if let Some(root) = self.root.as_mut() {
            if !root.reg_complete
                && self.c.interval_received
                && root.reg_done_children == self.bfs_children.len()
            {
                root.reg_complete = true;
                root.slots.sort_unstable();
            }
        }

        // (a) Announce the current phase as soon as the coarse id is
        // current (for phase 0 that is `InitCoarse` receipt; afterwards
        // the answer path rolls `coarse_ready` and `d.phase` together).
        if !self.done_seen && !self.d.announced && self.coarse_ready == Some(self.d.phase) {
            self.d.announced = true;
            let coarse = self.coarse;
            for q in 0..self.deg {
                self.send_cd(ctx, q, Msg::CoarseAnnounce { coarse, me: self.id });
            }
        }

        // (b) Fragment-subtree aggregation completes on *local* readiness:
        // all of my own neighbors announced and my fragment children
        // reported. No probe broadcast and no global go-signal exist.
        if self.d.announced
            && !self.d.responded
            && self.d.ann_recv == self.deg
            && self.d.frag_up_recv == self.frag_children.len()
        {
            self.d.responded = true;
            let (mine, sel) = self.cd_local_candidate();
            if let Some((key, sc, dc)) = mine {
                if self.d.agg.is_none_or(|(a, _, _)| key < a) {
                    self.d.agg = Some((key, sc, dc));
                    self.d.sel = sel;
                }
            }
            if self.is_frag_root() {
                self.cd_inject();
            } else {
                let up = self.frag_parent.expect("non-root has a fragment parent");
                self.send_cd(ctx, up, Msg::FragMwoeUp { cand: self.d.agg });
            }
        }

        // (c) Stage C registration pipeline toward the BFS root.
        if self.c.interval_received && !self.c.reg_done_sent {
            if let Some(parent) = self.bfs_parent {
                while let Some(&slot) = self.c.reg_queue.front() {
                    let msg = Msg::Register { slot };
                    if self.pipe_budget(round, parent) < msg.words() {
                        break;
                    }
                    self.c.reg_queue.pop_front();
                    self.send_cd(ctx, parent, msg);
                }
                let my_duty = !self.is_frag_root() || self.c.registered;
                if my_duty
                    && self.c.reg_queue.is_empty()
                    && self.c.reg_done_children == self.bfs_children.len()
                    && self.pipe_budget(round, parent) >= Msg::RegDone.words()
                {
                    self.send_cd(ctx, parent, Msg::RegDone);
                    self.c.reg_done_sent = true;
                }
            }
        }

        // (d) Candidate pipeline flush toward the BFS parent.
        if let Some(parent) = self.bfs_parent {
            while let Some(&(key, sc)) = self.d.up_pending.iter().next() {
                let rec = self.d.up_best[&sc];
                debug_assert_eq!(rec.key, key);
                let msg = Msg::Candidate { rec };
                if self.pipe_budget(round, parent) < msg.words() {
                    break;
                }
                self.d.up_pending.remove(&(key, sc));
                self.d.up_sent.insert(sc, key);
                self.send_cd(ctx, parent, msg);
            }
        }

        // (e) Upcast completion / root-local merge. `UpDone` may fire in
        // the same round as the last candidate (it follows them in FIFO
        // order) and is deferred while the edge is full.
        let my_inject_done = !self.is_frag_root() || self.d.injected;
        if !self.done_seen
            && !self.d.updone_sent
            && my_inject_done
            && self.d.updone_children == self.bfs_children.len()
            && self.d.up_pending.is_empty()
        {
            if let Some(parent) = self.bfs_parent {
                if self.pipe_budget(round, parent) >= Msg::UpDone.words() {
                    self.d.updone_sent = true;
                    self.send_cd(ctx, parent, Msg::UpDone);
                }
            } else if self.root.as_ref().is_some_and(|r| r.reg_complete) {
                self.d.updone_sent = true;
                self.cd_root_merge(ctx);
            }
        }

        // (f) Downcast pipeline flush (also drains the answers the root
        // merge just queued, and keeps draining after `done`).
        for i in 0..self.down.len() {
            let port = self.bfs_children[i];
            while let Some(words) = self.down[i].front().map(Msg::words) {
                if self.pipe_budget(round, port) < words {
                    break;
                }
                let msg = self.down[i].pop_front().expect("front checked above");
                self.send_cd(ctx, port, msg);
            }
        }

        // Quiesce only when everything queued has been flushed.
        if self.done_seen
            && self.d.up_pending.is_empty()
            && self.c.reg_queue.is_empty()
            && self.down.iter().all(|q| q.is_empty())
        {
            debug_assert!(self.cand_next.is_empty(), "buffered candidates past termination");
            if !self.finished {
                self.milestones.finished_at = ctx.round();
            }
            self.finished = true;
        }
    }

    /// Idle-skip hint for Stages C/D (the `NodeProgram::next_wake`
    /// contract): `Some(after + 1)` iff any `cd_act` step would fire next
    /// round without new messages, else `None` (purely message-driven).
    ///
    /// This mirrors `cd_act`'s guards one-for-one — keep the two in sync.
    /// Every mirrored step either makes monotone progress on a queue or
    /// latches a flag, so a `true` here never repeats forever. Budget-gated
    /// sends (`pipe_budget`) that defer leave their guard standing, which
    /// correctly re-arms the wake for the round after the ledger resets.
    pub(crate) fn cd_next_wake(&self, after: u64) -> Option<u64> {
        // Root-side registration-completion latch.
        let root_latch_pending = self.root.as_ref().is_some_and(|root| {
            !root.reg_complete
                && self.c.interval_received
                && root.reg_done_children == self.bfs_children.len()
        });
        // (a) announce the current phase.
        let announce_pending =
            !self.done_seen && !self.d.announced && self.coarse_ready == Some(self.d.phase);
        // (b) fragment-subtree aggregation completion.
        let aggregate_pending = self.d.announced
            && !self.d.responded
            && self.d.ann_recv == self.deg
            && self.d.frag_up_recv == self.frag_children.len();
        // (c) registration pipeline: queued slots, or a due `RegDone`.
        let register_pending = self.c.interval_received
            && !self.c.reg_done_sent
            && self.bfs_parent.is_some()
            && (!self.c.reg_queue.is_empty()
                || ((!self.is_frag_root() || self.c.registered)
                    && self.c.reg_done_children == self.bfs_children.len()));
        // (d) candidate pipeline flush.
        let upcast_pending = self.bfs_parent.is_some() && !self.d.up_pending.is_empty();
        // (e) `UpDone` / root-local merge. The BFS root also fires when the
        // latch above completes registration this coming round.
        let updone_pending = !self.done_seen
            && !self.d.updone_sent
            && (!self.is_frag_root() || self.d.injected)
            && self.d.updone_children == self.bfs_children.len()
            && self.d.up_pending.is_empty()
            && (self.bfs_parent.is_some()
                || root_latch_pending
                || self.root.as_ref().is_some_and(|r| r.reg_complete));
        // (f) downcast pipeline flush.
        let downcast_pending = self.down.iter().any(|q| !q.is_empty());
        // Final quiescence check (flips `finished`).
        let quiesce_pending = self.done_seen
            && !self.finished
            && self.d.up_pending.is_empty()
            && self.c.reg_queue.is_empty()
            && self.down.iter().all(|q| q.is_empty());

        (root_latch_pending
            || announce_pending
            || aggregate_pending
            || register_pending
            || upcast_pending
            || updone_pending
            || downcast_pending
            || quiesce_pending)
            .then_some(after + 1)
    }

    // ---- helpers ----

    /// Lightest incident edge leaving my *coarse* fragment.
    fn cd_local_candidate(&self) -> (Option<(CandKey, u64, u64)>, Sel) {
        let mut best: Option<(CandKey, u64, u64)> = None;
        let mut sel = Sel::None;
        for q in 0..self.deg {
            let nc = self.ports.nbr_coarse(q);
            if nc != self.coarse && nc != UNKNOWN {
                let key = CandKey::new(self.ports.weight(q), self.id, self.ports.nbr_id(q));
                if best.is_none_or(|(b, _, _)| key < b) {
                    best = Some((key, self.coarse, nc));
                    sel = Sel::Mine(q);
                }
            }
        }
        (best, sel)
    }

    /// Fragment root: turn the aggregate into a pipelined record.
    fn cd_inject(&mut self) {
        debug_assert!(!self.d.injected);
        self.d.injected = true;
        if let Some((key, sc, dc)) = self.d.agg {
            let rec = Candidate { key, src_coarse: sc, dst_coarse: dc, src_slot: self.slot };
            self.cd_offer(rec);
        }
    }

    /// Filtered insert into the upcast buffer (also the BFS root's
    /// collection): keep only improvements per source coarse id.
    fn cd_offer(&mut self, rec: Candidate) {
        let sc = rec.src_coarse;
        if self.d.up_sent.get(&sc).is_some_and(|s| *s <= rec.key) {
            return;
        }
        if let Some(old) = self.d.up_best.get(&sc) {
            if old.key <= rec.key {
                return;
            }
            self.d.up_pending.remove(&(old.key, sc));
        }
        self.d.up_best.insert(sc, rec);
        if self.bfs_parent.is_some() {
            self.d.up_pending.insert((rec.key, sc));
        }
    }

    /// BFS-root-local Borůvka merge of the fragment graph (paper §3: `rt`
    /// computes the MWOEs, merges fragments, and answers every base
    /// fragment). Under the fused protocol the answers are also the next
    /// phase's start signal: every `Assign` carries phase `j + 1`, so a
    /// fragment re-announces the moment its answer lands — the
    /// `PhaseDone`/`StartPhase` barrier pair this replaces is gone. The
    /// pure computation lives in
    /// [`merge_fragment_graph`](crate::fraggraph::merge_fragment_graph).
    fn cd_root_merge(&mut self, ctx: &mut RoundCtx<'_, Msg>) {
        let mut root = self.root.take().expect("only the BFS root merges");

        let coarse_ids: Vec<u64> = root.slot_coarse.values().copied().collect();
        let outcome = crate::fraggraph::merge_fragment_graph(&coarse_ids, &self.d.up_best);
        let done = outcome.done;
        let next = self.d.phase + 1;

        // Answer every base fragment with its new coarse id (+ next phase).
        let slots = root.slots.clone();
        for &slot in &slots {
            let old = root.slot_coarse[&slot];
            let nc = outcome.new_id[&old];
            root.slot_coarse.insert(slot, nc);
            let chosen = outcome.chosen_slots.contains(&slot);
            if slot == self.slot {
                self.root = Some(root);
                self.cd_consume_assign(ctx, nc, chosen, done, next);
                root = self.root.take().expect("restored above");
            } else {
                let idx = self.cd_route(slot);
                self.down[idx].push_back(Msg::Assign {
                    dest_slot: slot,
                    new_coarse: nc,
                    chosen,
                    done,
                    next,
                });
            }
        }
        self.root = Some(root);
    }

    /// Which BFS child's interval contains `dest`?
    fn cd_route(&self, dest: u64) -> usize {
        crate::intervals::route(&self.child_ivs, dest)
            .unwrap_or_else(|| panic!("slot {dest} not in any child interval of {}", self.id))
    }

    /// A base-fragment root received its phase answer: mark the chosen
    /// edge (before `NewCoarse`, so FIFO protects every hop's `Sel`),
    /// broadcast the new coarse id, and roll into phase `next` myself.
    fn cd_consume_assign(
        &mut self,
        ctx: &mut RoundCtx<'_, Msg>,
        nc: u64,
        chosen: bool,
        done: bool,
        next: u64,
    ) {
        debug_assert!(self.is_frag_root());
        if chosen {
            match self.d.sel {
                Sel::Mine(q) => {
                    self.ports.mark_mst(q);
                    self.send_cd(ctx, q, Msg::MarkCross);
                }
                Sel::Child(c) => self.send_cd(ctx, c, Msg::MarkPath),
                Sel::None => unreachable!("chosen candidate without a selection"),
            }
        }
        for &q in &self.frag_children.clone() {
            self.send_cd(ctx, q, Msg::NewCoarse { id: nc, done, next });
        }
        self.cd_apply_new_coarse_local(nc, done, next);
    }

    fn cd_apply_new_coarse(&mut self, ctx: &mut RoundCtx<'_, Msg>, id: u64, done: bool, next: u64) {
        for &q in &self.frag_children.clone() {
            self.send_cd(ctx, q, Msg::NewCoarse { id, done, next });
        }
        self.cd_apply_new_coarse_local(id, done, next);
    }

    /// The one phase-roll call site: adopt the new coarse id, roll the
    /// scratch, and latch global termination.
    fn cd_apply_new_coarse_local(&mut self, id: u64, done: bool, next: u64) {
        debug_assert_eq!(next, self.d.phase + 1, "answer path phase skew at vertex {}", self.id);
        self.coarse = id;
        self.coarse_ready = Some(next);
        self.cd_roll_phase();
        if done {
            self.done_seen = true;
        }
    }

    /// Replace the per-phase scratch with a fresh one for `d.phase + 1`,
    /// folding in whatever next-phase traffic arrived early (the skew
    /// buffers; see `DScratch`).
    fn cd_roll_phase(&mut self) {
        self.d = DScratch { phase: self.d.phase + 1, ..DScratch::default() };
        self.d.ann_recv = std::mem::take(&mut self.ann_recv_next);
        self.d.updone_children = std::mem::take(&mut self.updone_next);
        for q in 0..self.deg {
            let next = self.ports.nbr_coarse_next(q);
            if next != UNKNOWN {
                self.ports.set_nbr_coarse(q, next);
                self.ports.set_nbr_coarse_next(q, UNKNOWN);
            }
        }
        for rec in std::mem::take(&mut self.cand_next) {
            self.cd_offer(rec);
        }
    }
}
