//! Stage B: Controlled-GHS on the fixed round schedule (paper §4).
//!
//! Each phase `i` (participation radius `p = 2^i`) runs the windows laid out
//! in [`Schedule`](crate::schedule::Schedule):
//!
//! 1. **Announce** — every vertex refreshes `(fragment id, own id)` to all
//!    neighbors.
//! 2. **Probe** — fragment roots launch a depth-`p` budgeted
//!    broadcast/convergecast computing the fragment MWOE; subtrees deeper
//!    than the budget report *overflow*, excluding tall fragments
//!    (participation = height ≤ p, so every fragment of diameter ≤ p
//!    participates; see DESIGN.md).
//! 3. **Connect** — participating roots flood `Participate`, route
//!    `MwoePath` along the argmin path, and the MWOE endpoint fires
//!    `ConnectReq` across the edge, registering a *foreign child* on the
//!    other side. Mutual-MWOE pairs resolve parenthood by higher fragment
//!    id (paper §4).
//! 4. **Kids** — convergecast: does this fragment have any foreign child?
//!    (needed by the Cole–Vishkin recolor step).
//! 5. **Exchange × X** — Cole–Vishkin 3-coloring of the fragment forest:
//!    each exchange broadcasts the fragment color, crosses child MWOEs, and
//!    routes the parent color back to the child's root.
//! 6. **Collect / Accept / Status × 3** — maximal matching, one color class
//!    at a time: roots of class-`c` unmatched fragments pick their smallest
//!    unmatched foreign child and notify it; new statuses propagate.
//! 7. **MergeGo / MergeFlood** — unmatched fragments merge along their
//!    MWOEs; the merged fragment's new root (higher-id endpoint of the
//!    matched pair, or the untouched root of a non-participating fragment)
//!    floods `NewFrag`, re-orienting parent pointers and installing the new
//!    fragment id. Every edge that joins two fragments is marked MST at
//!    both endpoints the moment it is used.

use congest_sim::{PortId, RoundCtx};

use crate::candidate::CandKey;
use crate::cv;
use crate::msg::Msg;
use crate::schedule::{ExchangeKind, MergeControl, Schedule, ScheduleMode, Slot, Window};

use super::{BScratch, ElkinNode, Sel, Stage};

impl ElkinNode {
    /// Called once when Stage B begins (round `t0`).
    pub(crate) fn b_enter(&mut self, ctx: &mut RoundCtx<'_, Msg>) {
        let sched = self.sched.as_ref().expect("schedule set with params");
        // Zero-phase schedules (k = 1) fall straight through to Stage C.
        if sched.num_phases() == 0 {
            self.stage = Stage::CD;
            self.cd_enter(ctx);
            return;
        }
        match self.cfg.schedule_mode {
            ScheduleMode::Fixed => self.b_act_inner(ctx),
            ScheduleMode::Adaptive => {
                self.b_phase = 0;
                self.b_phase_start = ctx.round();
                self.b_act_adaptive(ctx);
            }
        }
    }

    pub(crate) fn b_handle(&mut self, ctx: &mut RoundCtx<'_, Msg>) {
        let inbox: Vec<(usize, Msg)> = ctx.inbox().to_vec();
        for (port, msg) in inbox {
            match msg {
                Msg::FragAnnounce { frag, me } => {
                    self.ports.set_nbr_frag(port, frag);
                    self.ports.set_nbr_id(port, me);
                }
                Msg::Probe { ttl } => self.b_probe_receive(ctx, port, ttl),
                Msg::MwoeUp { cand, overflow } => {
                    self.b.overflow |= overflow;
                    if let Some(k) = cand {
                        if self.b.agg.is_none_or(|a| k < a) {
                            self.b.agg = Some(k);
                            self.b.sel = Sel::Child(port);
                        }
                    }
                    self.b.probe_pending -= 1;
                    if self.b.probe_pending == 0 {
                        self.b_probe_complete(ctx);
                    }
                }
                Msg::Participate => {
                    if !self.b.participating {
                        self.b.participating = true;
                        for &p in &self.frag_children.clone() {
                            ctx.send(p, Msg::Participate);
                        }
                    }
                }
                Msg::MwoePath => match self.b.sel {
                    Sel::Mine(q) => {
                        self.b.out_port = Some(q);
                        ctx.send(q, Msg::ConnectReq { child_frag: self.frag_id });
                    }
                    Sel::Child(c) => ctx.send(c, Msg::MwoePath),
                    Sel::None => unreachable!("MwoePath reached a subtree without a candidate"),
                },
                Msg::ConnectReq { child_frag } => {
                    self.b.foreign_child[port] = Some((child_frag, false));
                }
                Msg::KidsUp { has } => {
                    self.b.kids_agg |= has;
                    self.b.kids_pending -= 1;
                    if self.b.kids_pending == 0 {
                        self.b_kids_complete(ctx);
                    }
                }
                Msg::ColorDown { color } => {
                    self.b.color = color;
                    for &p in &self.frag_children.clone() {
                        ctx.send(p, Msg::ColorDown { color });
                    }
                    self.b_cross_color(ctx, color);
                }
                Msg::ColorCross { color } => {
                    if Some(port) == self.b.out_port {
                        if self.is_frag_root() {
                            self.b.parent_color = Some(color);
                        } else {
                            let up = self.frag_parent.expect("non-root has a fragment parent");
                            ctx.send(up, Msg::ColorUp { color });
                        }
                    }
                }
                Msg::ColorUp { color } => {
                    if self.is_frag_root() {
                        self.b.parent_color = Some(color);
                    } else {
                        let up = self.frag_parent.expect("non-root has a fragment parent");
                        ctx.send(up, Msg::ColorUp { color });
                    }
                }
                Msg::UnmatchedUp { child } => {
                    if let Some(c) = child {
                        if self.b.col_agg.is_none_or(|a| c < a) {
                            self.b.col_agg = Some(c);
                            self.b.col_sel = Sel::Child(port);
                        }
                    }
                    self.b.col_pending -= 1;
                    if self.b.col_pending == 0 {
                        self.b_collect_complete(ctx);
                    }
                }
                Msg::AcceptPath => match self.b.col_sel {
                    Sel::Mine(q) => {
                        self.b.matched_port = Some(q);
                        self.ports.mark_mst(q);
                        ctx.send(q, Msg::AcceptCross { parent_frag: self.frag_id });
                    }
                    Sel::Child(c) => ctx.send(c, Msg::AcceptPath),
                    Sel::None => unreachable!("AcceptPath reached a subtree without a candidate"),
                },
                Msg::AcceptCross { parent_frag } => {
                    self.b.matched_port = Some(port);
                    self.ports.mark_mst(port);
                    if self.is_frag_root() {
                        self.b.matched = true;
                        self.b.newly_matched = true;
                        self.b.partner = Some(parent_frag);
                    } else {
                        let up = self.frag_parent.expect("non-root has a fragment parent");
                        ctx.send(up, Msg::MatchedUp { partner: parent_frag });
                    }
                }
                Msg::MatchedUp { partner } => {
                    if self.is_frag_root() {
                        // In matched mode: our fragment was picked by its
                        // forest parent. In uncontrolled mode: our MWOE is
                        // mutual; `partner` decides who initiates the flood.
                        self.b.matched = true;
                        self.b.newly_matched = true;
                        self.b.partner = Some(partner);
                    } else {
                        let up = self.frag_parent.expect("non-root has a fragment parent");
                        ctx.send(up, Msg::MatchedUp { partner });
                    }
                }
                Msg::StatusDown => {
                    for &p in &self.frag_children.clone() {
                        ctx.send(p, Msg::StatusDown);
                    }
                    self.b_status_duties(ctx);
                }
                Msg::StatusCross => {
                    if let Some((_, matched)) = &mut self.b.foreign_child[port] {
                        *matched = true;
                    }
                }
                Msg::MergePath => match self.b.sel {
                    Sel::Mine(q) => {
                        self.ports.mark_mst(q);
                        ctx.send(q, Msg::MergeCross);
                    }
                    Sel::Child(c) => ctx.send(c, Msg::MergePath),
                    Sel::None => unreachable!("MergePath reached a subtree without a candidate"),
                },
                Msg::MergeCross => {
                    self.ports.mark_mst(port);
                    self.b.merge_ports.push(port);
                    if self.cfg.merge_control == MergeControl::Uncontrolled
                        && Some(port) == self.b.out_port
                    {
                        // Mutual MWOE: tell the root so the higher-id side
                        // can initiate the flood.
                        let partner = self.ports.nbr_frag(port);
                        if self.is_frag_root() {
                            self.b.partner = Some(partner);
                        } else {
                            let up = self.frag_parent.expect("non-root has a fragment parent");
                            ctx.send(up, Msg::MatchedUp { partner });
                        }
                    }
                }
                Msg::NewFrag { id } => self.b_flood_receive(ctx, port, id),
                Msg::FloodAck { phase } => {
                    debug_assert_eq!(phase, self.b_phase, "stale flood ack");
                    debug_assert!(self.b.ack_pending > 0, "unexpected flood ack");
                    self.b.ack_pending -= 1;
                    if self.b.ack_pending == 0 {
                        if let Some(fp) = self.b.flood_from {
                            // My whole flood subtree is re-oriented: ack up
                            // and settle.
                            ctx.send(fp, Msg::FloodAck { phase });
                            self.b.settled = true;
                        } else if self.b.participating {
                            // Flood initiator: the merged cluster is done.
                            self.b.settled = true;
                        }
                        // Adopters (!participating) settle via the
                        // SyncNoFlood broadcast of their own fragment root.
                    }
                }
                Msg::SyncNoFlood { phase } => {
                    debug_assert_eq!(phase, self.b_phase, "stale no-flood signal");
                    debug_assert!(!self.b.flooded, "SyncNoFlood entered a flooded fragment");
                    if !self.b.settled {
                        self.b.settled = true;
                        self.b_send_no_flood(ctx, phase);
                    }
                }
                Msg::SyncUp { phase } => {
                    debug_assert_eq!(phase, self.b_phase, "stale sync report");
                    self.b.sync_recv += 1;
                }
                Msg::SyncStart { phase, start } => {
                    debug_assert!(
                        self.b_next.is_none_or(|n| n == (phase, start)),
                        "conflicting SyncStart"
                    );
                    self.b_next = Some((phase, start));
                    for &q in &self.bfs_children.clone() {
                        ctx.send(q, Msg::SyncStart { phase, start });
                    }
                }
                other => unreachable!("stage B received {other:?}"),
            }
        }
    }

    pub(crate) fn b_act(&mut self, ctx: &mut RoundCtx<'_, Msg>) {
        match self.cfg.schedule_mode {
            ScheduleMode::Fixed => {
                let end = self.sched.as_ref().expect("schedule set in stage B").end();
                if ctx.round() >= end {
                    self.stage = Stage::CD;
                    self.cd_enter(ctx);
                    return;
                }
                self.b_act_inner(ctx);
            }
            ScheduleMode::Adaptive => self.b_act_adaptive(ctx),
        }
    }

    /// Fixed mode: every window boundary is precomputed; locate the
    /// absolute round and dispatch.
    fn b_act_inner(&mut self, ctx: &mut RoundCtx<'_, Msg>) {
        let sched = self.sched.take().expect("schedule set in stage B");
        let slot = sched.locate(ctx.round()).expect("round inside stage B");
        self.b_phase = slot.phase;
        self.b_dispatch(ctx, &sched, slot);
        self.sched = Some(sched);
    }

    /// Adaptive mode: apply any due phase transition (scheduled end or
    /// agreed `SyncStart`), then dispatch the slot relative to the current
    /// phase start; sync-ended phases run the settle protocol during their
    /// open-ended merge-flood window.
    fn b_act_adaptive(&mut self, ctx: &mut RoundCtx<'_, Msg>) {
        let sched = self.sched.take().expect("schedule set in stage B");
        let round = ctx.round();

        if let Some((phase, start)) = self.b_next {
            if round == start {
                self.b_next = None;
                if phase >= sched.num_phases() {
                    self.sched = Some(sched);
                    self.stage = Stage::CD;
                    self.cd_enter(ctx);
                    return;
                }
                self.b_phase = phase;
                self.b_phase_start = start;
            }
        } else if !sched.sync_phase(self.b_phase)
            && round == self.b_phase_start + sched.phase_len(self.b_phase)
        {
            // Scheduled phase end: every vertex advances simultaneously.
            let next = self.b_phase + 1;
            if next >= sched.num_phases() {
                self.sched = Some(sched);
                self.stage = Stage::CD;
                self.cd_enter(ctx);
                return;
            }
            self.b_phase = next;
            self.b_phase_start = round;
        }

        let slot = sched.locate_rel(self.b_phase, round - self.b_phase_start);
        self.b_dispatch(ctx, &sched, slot);
        if slot.window == Window::MergeFlood && sched.sync_phase(self.b_phase) {
            self.b_sync_tick(ctx);
        }
        self.sched = Some(sched);
    }

    /// Idle-skip hint for Stage B (the `NodeProgram::next_wake` contract):
    /// the next round at which `b_act` does anything with an empty inbox.
    ///
    /// `b_dispatch` only acts at window boundaries (`offset == 0` or
    /// `slot.last`) and at phase transitions, so those are the only rounds
    /// worth waking for; everything in between is message-driven
    /// (`b_handle`). In an adaptive sync phase the open-ended merge-flood
    /// window has no future boundary: `b_sync_tick`'s guards only change on
    /// message receipt or at a boundary — both awake rounds — so between
    /// them the tick is a no-op and the vertex can sleep until `SyncStart`
    /// (`b_next`) names the next phase start.
    pub(crate) fn b_next_wake(&self, after: u64) -> Option<u64> {
        let sched = self.sched.as_ref()?;
        match self.cfg.schedule_mode {
            ScheduleMode::Fixed => Some(sched.next_boundary(after)),
            ScheduleMode::Adaptive => {
                if let Some((_, start)) = self.b_next {
                    return Some(start);
                }
                let rel = after.checked_sub(self.b_phase_start)?;
                let next = sched.next_boundary_rel(self.b_phase, rel);
                (next > rel).then_some(self.b_phase_start + next)
            }
        }
    }

    /// Executes one scheduled round: the window actions of `slot`.
    fn b_dispatch(&mut self, ctx: &mut RoundCtx<'_, Msg>, sched: &Schedule, slot: Slot) {
        let p = sched.radius(slot.phase);

        match slot.window {
            Window::Announce => {
                debug_assert!(slot.offset == 0);
                self.b = BScratch {
                    foreign_child: vec![None; self.deg],
                    color: self.frag_id,
                    prev_color: self.frag_id,
                    ..BScratch::default()
                };
                for q in 0..self.deg {
                    ctx.send(q, Msg::FragAnnounce { frag: self.frag_id, me: self.id });
                }
            }
            Window::Probe => {
                if slot.offset == 0 && self.is_frag_root() {
                    self.b_probe_start(ctx, p);
                }
            }
            Window::Connect => {
                if slot.offset == 0
                    && self.is_frag_root()
                    && self.b.probed
                    && self.b.probe_pending == 0
                    && !self.b.overflow
                {
                    self.b.participating = true;
                    for &q in &self.frag_children.clone() {
                        ctx.send(q, Msg::Participate);
                    }
                    match self.b.sel {
                        Sel::Mine(q) => {
                            self.b.out_port = Some(q);
                            ctx.send(q, Msg::ConnectReq { child_frag: self.frag_id });
                        }
                        Sel::Child(c) => ctx.send(c, Msg::MwoePath),
                        Sel::None => {} // no outgoing edge: whole graph is one fragment
                    }
                }
                if slot.last {
                    // Mutual-MWOE resolution: if the neighbor fragment on my
                    // own out-edge has the higher id, it is my parent, not my
                    // child.
                    if let Some(q) = self.b.out_port {
                        if self.b.foreign_child[q].is_some()
                            && self.ports.nbr_frag(q) > self.frag_id
                        {
                            self.b.foreign_child[q] = None;
                        }
                    }
                }
            }
            Window::Kids => {
                if slot.offset == 0 && self.b.participating {
                    self.b.kids_pending = self.frag_children.len();
                    if self.b.kids_pending == 0 {
                        self.b_kids_complete(ctx);
                    }
                }
            }
            Window::Exchange(x) => {
                if slot.offset == 0 && self.b.participating && self.is_frag_root() {
                    let color = self.b.color;
                    for &q in &self.frag_children.clone() {
                        ctx.send(q, Msg::ColorDown { color });
                    }
                    self.b_cross_color(ctx, color);
                }
                if slot.last && self.b.participating && self.is_frag_root() {
                    self.b_exchange_eval(sched.exchange_kind(x));
                }
            }
            Window::MatchCollect(_) => {
                if slot.offset == 0 && self.b.participating {
                    self.b.col_agg = None;
                    self.b.col_sel = Sel::None;
                    if let Some(q) = self.b_local_unmatched_child() {
                        self.b.col_agg = Some(self.b.foreign_child[q].expect("just found").0);
                        self.b.col_sel = Sel::Mine(q);
                    }
                    self.b.col_pending = self.frag_children.len();
                    if self.b.col_pending == 0 {
                        self.b_collect_complete(ctx);
                    }
                }
            }
            Window::MatchAccept(c) => {
                if slot.offset == 0
                    && self.b.participating
                    && self.is_frag_root()
                    && self.b.color == u64::from(c)
                    && !self.b.matched
                {
                    if let Some(child) = self.b.col_agg {
                        self.b.matched = true;
                        self.b.newly_matched = true;
                        self.b.partner = Some(child);
                        match self.b.col_sel {
                            Sel::Mine(q) => {
                                self.b.matched_port = Some(q);
                                self.ports.mark_mst(q);
                                ctx.send(q, Msg::AcceptCross { parent_frag: self.frag_id });
                            }
                            Sel::Child(ch) => ctx.send(ch, Msg::AcceptPath),
                            Sel::None => unreachable!("col_agg implies a selection"),
                        }
                    }
                }
            }
            Window::MatchStatus(_) => {
                if slot.offset == 0
                    && self.b.participating
                    && self.is_frag_root()
                    && self.b.newly_matched
                {
                    self.b.newly_matched = false;
                    for &q in &self.frag_children.clone() {
                        ctx.send(q, Msg::StatusDown);
                    }
                    self.b_status_duties(ctx);
                }
            }
            Window::MergeGo => {
                let fire = match self.cfg.merge_control {
                    MergeControl::Matched => !self.b.matched,
                    MergeControl::Uncontrolled => true,
                };
                if slot.offset == 0
                    && self.b.participating
                    && self.is_frag_root()
                    && fire
                    && self.b.sel != Sel::None
                {
                    match self.b.sel {
                        Sel::Mine(q) => {
                            self.ports.mark_mst(q);
                            ctx.send(q, Msg::MergeCross);
                        }
                        Sel::Child(c) => ctx.send(c, Msg::MergePath),
                        Sel::None => unreachable!("guarded above"),
                    }
                }
            }
            Window::MergeFlood => {
                if slot.offset == 0 {
                    let sync = sched.sync_phase(slot.phase);
                    let initiator = match self.cfg.merge_control {
                        // Higher-id root of the matched pair floods.
                        MergeControl::Matched => {
                            self.b.participating
                                && self.is_frag_root()
                                && self.b.matched
                                && self.b.partner.is_some_and(|pid| pid < self.frag_id)
                        }
                        // Higher-id side of the (unique) mutual MWOE floods.
                        MergeControl::Uncontrolled => {
                            self.b.participating
                                && self.is_frag_root()
                                && self.b.partner.is_some_and(|pid| pid < self.frag_id)
                        }
                    };
                    if initiator {
                        self.b_flood_init(ctx, sync);
                    } else if !self.b.participating && !self.b.merge_ports.is_empty() {
                        // Big-fragment attachment points adopt the pendants
                        // without re-flooding their own fragment.
                        let id = self.frag_id;
                        let ports = self.b.merge_ports.clone();
                        for &q in &ports {
                            ctx.send(q, Msg::NewFrag { id });
                            if !self.frag_children.contains(&q) {
                                self.frag_children.push(q);
                            }
                        }
                        if sync {
                            self.b.ack_pending = ports.len();
                            self.b.flood_fwd = ports;
                        }
                        self.b.merge_ports.clear();
                    }
                    if sync
                        && !initiator
                        && self.is_frag_root()
                        && !(self.b.participating && (self.b.matched || self.b.sel != Sel::None))
                    {
                        // No merge flood can enter this fragment (it is
                        // non-participating, or participating but unmatched
                        // with no outgoing edge): settle the whole fragment.
                        self.b.settled = true;
                        self.b_send_no_flood(ctx, slot.phase);
                    }
                }
            }
        }
    }

    /// Whether the current phase ends by the sync protocol (adaptive mode,
    /// flood window worse than a tree sync).
    fn b_sync_active(&self) -> bool {
        self.cfg.schedule_mode == ScheduleMode::Adaptive
            && self.sched.as_ref().is_some_and(|s| s.sync_phase(self.b_phase))
    }

    /// Broadcasts `SyncNoFlood` to the old fragment children, skipping any
    /// port the merge flood was forwarded on (adoption edges), so the
    /// signal can never race ahead of a flood.
    fn b_send_no_flood(&mut self, ctx: &mut RoundCtx<'_, Msg>, phase: u32) {
        for &q in &self.frag_children.clone() {
            if !self.b.flood_fwd.contains(&q) {
                ctx.send(q, Msg::SyncNoFlood { phase });
            }
        }
    }

    /// Sync-phase settle evaluation, run every merge-flood round after
    /// message handling: once this vertex is quiet (settled, no outstanding
    /// flood acks) and its whole BFS subtree has reported, report `SyncUp`
    /// to the BFS parent — or, at the BFS root, end the phase by
    /// broadcasting `SyncStart` with a start round far enough out that the
    /// broadcast reaches every vertex first.
    fn b_sync_tick(&mut self, ctx: &mut RoundCtx<'_, Msg>) {
        if self.b.sync_sent
            || !self.b.settled
            || self.b.ack_pending != 0
            || self.b.sync_recv != self.bfs_children.len()
        {
            return;
        }
        self.b.sync_sent = true;
        let phase = self.b_phase;
        if let Some(parent) = self.bfs_parent {
            ctx.send(parent, Msg::SyncUp { phase });
        } else {
            let h = self.params.expect("params set in stage B").h;
            let next = phase + 1;
            let start = ctx.round() + h + 1;
            self.b_next = Some((next, start));
            for &q in &self.bfs_children.clone() {
                ctx.send(q, Msg::SyncStart { phase: next, start });
            }
        }
    }

    // ---- probe / MWOE ----

    fn b_local_candidate(&self) -> (Option<CandKey>, Sel) {
        let mut best: Option<CandKey> = None;
        let mut sel = Sel::None;
        for q in 0..self.deg {
            if self.ports.nbr_frag(q) != self.frag_id && self.ports.nbr_frag(q) != super::UNKNOWN {
                let k = CandKey::new(self.ports.weight(q), self.id, self.ports.nbr_id(q));
                if best.is_none_or(|b| k < b) {
                    best = Some(k);
                    sel = Sel::Mine(q);
                }
            }
        }
        (best, sel)
    }

    fn b_probe_start(&mut self, ctx: &mut RoundCtx<'_, Msg>, p: u64) {
        self.b.probed = true;
        let (best, sel) = self.b_local_candidate();
        self.b.agg = best;
        self.b.sel = sel;
        self.b.probe_pending = self.frag_children.len();
        if self.b.probe_pending == 0 {
            return; // complete: singleton or leaf-root
        }
        let ttl = (p - 1) as u32;
        for &q in &self.frag_children.clone() {
            ctx.send(q, Msg::Probe { ttl });
        }
    }

    fn b_probe_receive(&mut self, ctx: &mut RoundCtx<'_, Msg>, port: PortId, ttl: u32) {
        debug_assert!(!self.b.probed, "duplicate probe within a phase");
        debug_assert_eq!(Some(port), self.frag_parent);
        self.b.probed = true;
        let (best, sel) = self.b_local_candidate();
        self.b.agg = best;
        self.b.sel = sel;
        if self.frag_children.is_empty() {
            ctx.send(port, Msg::MwoeUp { cand: self.b.agg, overflow: false });
            self.b.responded = true;
        } else if ttl == 0 {
            // Fragment extends beyond the participation radius.
            ctx.send(port, Msg::MwoeUp { cand: self.b.agg, overflow: true });
            self.b.responded = true;
        } else {
            self.b.probe_pending = self.frag_children.len();
            for &q in &self.frag_children.clone() {
                ctx.send(q, Msg::Probe { ttl: ttl - 1 });
            }
        }
    }

    fn b_probe_complete(&mut self, ctx: &mut RoundCtx<'_, Msg>) {
        if self.is_frag_root() || self.b.responded {
            return;
        }
        self.b.responded = true;
        let up = self.frag_parent.expect("non-root has a fragment parent");
        ctx.send(up, Msg::MwoeUp { cand: self.b.agg, overflow: self.b.overflow });
    }

    // ---- kids convergecast ----

    fn b_kids_complete(&mut self, ctx: &mut RoundCtx<'_, Msg>) {
        let local = self.b.foreign_child.iter().any(Option::is_some);
        let has = self.b.kids_agg || local;
        if self.is_frag_root() {
            self.b.has_kids = has;
        } else {
            let up = self.frag_parent.expect("non-root has a fragment parent");
            ctx.send(up, Msg::KidsUp { has });
        }
    }

    // ---- Cole–Vishkin exchanges ----

    /// Forward my fragment's color over every cross edge on which a foreign
    /// child registered.
    fn b_cross_color(&mut self, ctx: &mut RoundCtx<'_, Msg>, color: u64) {
        for q in 0..self.deg {
            if self.b.foreign_child[q].is_some() {
                ctx.send(q, Msg::ColorCross { color });
            }
        }
    }

    fn b_exchange_eval(&mut self, kind: ExchangeKind) {
        let parent = self.b.parent_color.take();
        match kind {
            ExchangeKind::Ladder => {
                self.b.color = match parent {
                    Some(pc) => cv::cv_step(self.b.color, pc),
                    None => cv::cv_step_root(self.b.color),
                };
            }
            ExchangeKind::ShiftDown(_) => {
                self.b.prev_color = self.b.color;
                self.b.color = match parent {
                    Some(pc) => cv::shift_down(pc),
                    None => cv::shift_down_root(self.b.color),
                };
            }
            ExchangeKind::Recolor(class) => {
                if self.b.color == class {
                    let children = self.b.has_kids.then_some(self.b.prev_color);
                    self.b.color = cv::recolor(parent, children);
                }
            }
        }
    }

    // ---- matching ----

    /// My smallest unmatched registered foreign child, by fragment id.
    fn b_local_unmatched_child(&self) -> Option<PortId> {
        let mut best: Option<(u64, PortId)> = None;
        for q in 0..self.deg {
            if let Some((id, matched)) = self.b.foreign_child[q] {
                if !matched && best.is_none_or(|(b, _)| id < b) {
                    best = Some((id, q));
                }
            }
        }
        best.map(|(_, q)| q)
    }

    fn b_collect_complete(&mut self, ctx: &mut RoundCtx<'_, Msg>) {
        if self.is_frag_root() {
            return; // aggregate stays local; used in the Accept window
        }
        let up = self.frag_parent.expect("non-root has a fragment parent");
        ctx.send(up, Msg::UnmatchedUp { child: self.b.col_agg });
    }

    fn b_status_duties(&mut self, ctx: &mut RoundCtx<'_, Msg>) {
        for q in 0..self.deg {
            if self.b.foreign_child[q].is_some() {
                ctx.send(q, Msg::StatusCross);
            }
        }
        if let Some(q) = self.b.out_port {
            ctx.send(q, Msg::StatusCross);
        }
    }

    // ---- merge flood ----

    fn b_flood_init(&mut self, ctx: &mut RoundCtx<'_, Msg>, sync: bool) {
        self.b.flooded = true;
        let mut fwd = self.frag_children.clone();
        for &q in &self.b.merge_ports {
            if !fwd.contains(&q) {
                fwd.push(q);
            }
        }
        if let Some(q) = self.b.matched_port {
            if !fwd.contains(&q) {
                fwd.push(q);
            }
        }
        self.frag_parent = None;
        self.frag_children = fwd.clone();
        let id = self.frag_id;
        if sync {
            self.b.ack_pending = fwd.len();
            self.b.flood_fwd = fwd.clone();
            if fwd.is_empty() {
                self.b.settled = true;
            }
        }
        for q in fwd {
            ctx.send(q, Msg::NewFrag { id });
        }
    }

    fn b_flood_receive(&mut self, ctx: &mut RoundCtx<'_, Msg>, port: PortId, id: u64) {
        debug_assert!(self.b.participating, "flood entered a non-participating fragment");
        let sync = self.b_sync_active();
        if self.b.flooded {
            // Duplicate floods cannot occur (the merge structure is a
            // forest), but never leave a sync-phase sender waiting.
            debug_assert!(false, "duplicate NewFrag at vertex {}", self.id);
            if sync {
                ctx.send(port, Msg::FloodAck { phase: self.b_phase });
            }
            return;
        }
        self.b.flooded = true;
        let mut fwd: Vec<PortId> = Vec::new();
        if let Some(q) = self.frag_parent {
            fwd.push(q);
        }
        for &q in &self.frag_children {
            if !fwd.contains(&q) {
                fwd.push(q);
            }
        }
        for &q in &self.b.merge_ports {
            if !fwd.contains(&q) {
                fwd.push(q);
            }
        }
        if let Some(q) = self.b.matched_port {
            if !fwd.contains(&q) {
                fwd.push(q);
            }
        }
        fwd.retain(|&q| q != port);
        self.frag_id = id;
        self.frag_parent = Some(port);
        self.frag_children = fwd.clone();
        if sync {
            self.b.flood_from = Some(port);
            self.b.ack_pending = fwd.len();
            self.b.flood_fwd = fwd.clone();
            if fwd.is_empty() {
                // Flood leaf: re-oriented and quiet; ack and settle now.
                ctx.send(port, Msg::FloodAck { phase: self.b_phase });
                self.b.settled = true;
            }
        }
        for q in fwd {
            ctx.send(q, Msg::NewFrag { id });
        }
    }
}
