//! Stage A: BFS tree construction, size/height convergecast, parameter
//! broadcast (paper §3, the auxiliary tree `τ` and its preprocessing).
//!
//! Costs: `O(D)` rounds (BFS wave down, convergecast up, broadcast down) and
//! `O(m)` messages (each edge carries at most one `Bfs` per direction plus
//! `O(n)` tree messages), matching the paper's accounting for this step.

use congest_sim::RoundCtx;

use crate::msg::Msg;
use crate::schedule::{choose_k, choose_k_adaptive, Params, Schedule, ScheduleMode};

use super::{ElkinNode, Stage};

impl ElkinNode {
    pub(crate) fn a_handle(&mut self, ctx: &mut RoundCtx<'_, Msg>) {
        let round = ctx.round();
        let inbox: Vec<(usize, Msg)> = ctx.inbox().to_vec();
        for (port, msg) in inbox {
            match msg {
                Msg::Bfs => {
                    if !self.a.seen {
                        self.a.seen = true;
                        self.depth = round;
                        self.bfs_parent = Some(port);
                        self.a.close_round = round + 2;
                        ctx.send(port, Msg::BfsChild);
                        for p in 0..self.deg {
                            if p != port {
                                ctx.send(p, Msg::Bfs);
                            }
                        }
                    }
                }
                Msg::BfsChild => {
                    self.bfs_children.push(port);
                }
                Msg::SizeUp { size, height } => {
                    let idx = self
                        .bfs_children
                        .iter()
                        .position(|&p| p == port)
                        .expect("SizeUp only arrives from registered children");
                    self.child_sizes[idx] = size;
                    self.a.acc_size += size;
                    self.a.acc_height = self.a.acc_height.max(height + 1);
                    self.a.size_pending -= 1;
                    if self.a.size_pending == 0 {
                        self.a_report(ctx);
                    }
                }
                Msg::Params { n, h, k, t0 } => {
                    self.a_adopt_params(Params { n, h, k, t0 });
                    for &p in &self.bfs_children.clone() {
                        ctx.send(p, Msg::Params { n, h, k, t0 });
                    }
                }
                other => unreachable!("stage A received {other:?}"),
            }
        }
    }

    pub(crate) fn a_act(&mut self, ctx: &mut RoundCtx<'_, Msg>) {
        let round = ctx.round();

        // Kick-off: the designated root starts the BFS wave at round 0.
        if round == 0 && self.is_bfs_root() {
            self.a.seen = true;
            self.depth = 0;
            self.a.close_round = 2;
            if self.deg == 0 {
                // Single-vertex graph: the MST is empty and we are done.
                self.finished = true;
                return;
            }
            for p in 0..self.deg {
                ctx.send(p, Msg::Bfs);
            }
        }

        // Two rounds after our own BFS send, all `BfsChild` replies are in.
        if self.a.seen && !self.a.closed && round == self.a.close_round {
            self.a.closed = true;
            self.a.size_pending = self.bfs_children.len();
            self.child_sizes = vec![0; self.bfs_children.len()];
            if self.a.size_pending == 0 {
                self.a_report(ctx);
            }
        }

        // Stage B begins at the globally agreed round t0.
        if let Some(p) = self.params {
            if round == p.t0 {
                self.stage = Stage::B;
                self.milestones.entered_b = round;
                self.b_enter(ctx);
            }
        }
    }

    /// Subtree complete: report to the parent, or — at the BFS root —
    /// finalize the global parameters and broadcast them.
    fn a_report(&mut self, ctx: &mut RoundCtx<'_, Msg>) {
        debug_assert!(!self.a.reported);
        self.a.reported = true;
        let size = self.a.acc_size + 1;
        let height = self.a.acc_height;
        if let Some(parent) = self.bfs_parent {
            ctx.send(parent, Msg::SizeUp { size, height });
        } else {
            // BFS root: size is n, height is H.
            let n = size;
            let h = height;
            let k = self.cfg.k_override.unwrap_or_else(|| match self.cfg.schedule_mode {
                ScheduleMode::Fixed => choose_k(n, h, self.cfg.bandwidth),
                ScheduleMode::Adaptive => choose_k_adaptive(n, self.cfg.bandwidth),
            });
            let t0 = ctx.round() + h + 2;
            let params = Params { n, h, k, t0 };
            self.a_adopt_params(params);
            for &p in &self.bfs_children.clone() {
                ctx.send(p, Msg::Params { n, h, k, t0 });
            }
        }
    }

    fn a_adopt_params(&mut self, params: Params) {
        self.sched = Some(Schedule::new(&params, self.cfg.merge_control, self.cfg.schedule_mode));
        self.params = Some(params);
    }
}
