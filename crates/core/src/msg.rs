//! The wire protocol: every message Elkin's algorithm sends.
//!
//! Word counts follow the model of the paper's Section 2: one word is one
//! `O(log n)`-bit quantity (vertex id, fragment id, edge weight, small
//! counter). The largest message ([`Msg::Candidate`]) carries 6 words, under
//! the 8-word unit-message budget enforced by the simulator.
//!
//! Since the wire-format refactor these are not just *declared* sizes:
//! every variant has an exact [`Message::encode`]/[`Message::decode`] pair
//! (see the `TAG_*` discriminants below), the simulator ships the encoded
//! words through its rings, and `words()` is pinned to the encoded length
//! by a send-path `debug_assert` plus the `wire_roundtrip` proptests.
//! Quantities bounded by the vertex count (ids, slots, colors, phases —
//! `Topology` caps `n` at `u32::MAX`) ride in the tag word's packed half;
//! only full-range edge weights always occupy whole words.

use congest_sim::{Message, WireReader, WireWriter};

use crate::candidate::{CandKey, Candidate};

// Wire discriminants, one per variant, in declaration order. `decode`
// matches on these; a tag outside the table is a wire-corruption bug.
const TAG_BFS: u8 = 0;
const TAG_BFS_CHILD: u8 = 1;
const TAG_SIZE_UP: u8 = 2;
const TAG_PARAMS: u8 = 3;
const TAG_FRAG_ANNOUNCE: u8 = 4;
const TAG_PROBE: u8 = 5;
const TAG_MWOE_UP: u8 = 6;
const TAG_PARTICIPATE: u8 = 7;
const TAG_MWOE_PATH: u8 = 8;
const TAG_CONNECT_REQ: u8 = 9;
const TAG_KIDS_UP: u8 = 10;
const TAG_COLOR_DOWN: u8 = 11;
const TAG_COLOR_CROSS: u8 = 12;
const TAG_COLOR_UP: u8 = 13;
const TAG_UNMATCHED_UP: u8 = 14;
const TAG_ACCEPT_PATH: u8 = 15;
const TAG_ACCEPT_CROSS: u8 = 16;
const TAG_MATCHED_UP: u8 = 17;
const TAG_STATUS_DOWN: u8 = 18;
const TAG_STATUS_CROSS: u8 = 19;
const TAG_MERGE_PATH: u8 = 20;
const TAG_MERGE_CROSS: u8 = 21;
const TAG_NEW_FRAG: u8 = 22;
const TAG_FLOOD_ACK: u8 = 23;
const TAG_SYNC_NO_FLOOD: u8 = 24;
const TAG_SYNC_UP: u8 = 25;
const TAG_SYNC_START: u8 = 26;
const TAG_INTERVAL: u8 = 27;
const TAG_REGISTER: u8 = 28;
const TAG_REG_DONE: u8 = 29;
const TAG_INIT_COARSE: u8 = 30;
const TAG_COARSE_ANNOUNCE: u8 = 31;
const TAG_FRAG_MWOE_UP: u8 = 32;
const TAG_CANDIDATE: u8 = 33;
const TAG_UP_DONE: u8 = 34;
const TAG_ASSIGN: u8 = 35;
const TAG_NEW_COARSE: u8 = 36;
const TAG_MARK_PATH: u8 = 37;
const TAG_MARK_CROSS: u8 = 38;

/// Writes a [`CandKey`] as three full words (the weight needs all 64
/// bits; the endpoints get whole words so the key stays one fixed shape
/// everywhere it is embedded).
fn encode_key(w: &mut WireWriter<'_>, k: &CandKey) {
    w.word(k.weight);
    w.word(k.lo);
    w.word(k.hi);
}

/// Mirror of [`encode_key`].
fn decode_key(r: &mut WireReader<'_>) -> CandKey {
    CandKey { weight: r.word(), lo: r.word(), hi: r.word() }
}

/// Protocol messages, grouped by stage. The stage/phase a message belongs to
/// is implicit in the (synchronized) round schedule for Stage B and in the
/// explicit control flow for Stages A, C, D.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Msg {
    // ---- Stage A: BFS tree, sizes, parameter broadcast ----
    /// BFS wave from the root; receivers adopt the sender as parent.
    Bfs,
    /// "You are my BFS parent" — lets parents learn their child ports.
    BfsChild,
    /// Convergecast of `(subtree size, subtree height)` toward the BFS root.
    SizeUp {
        /// Number of vertices in the sender's BFS subtree.
        size: u64,
        /// Height of that subtree (max depth below the sender).
        height: u64,
    },
    /// Root broadcast of the globally agreed parameters.
    Params {
        /// Number of vertices.
        n: u64,
        /// Height of the BFS tree (so `H <= D <= 2H`).
        h: u64,
        /// Base-forest parameter `k` (paper §3: `sqrt(n/b)` or `H`).
        k: u64,
        /// Absolute round at which Stage B begins.
        t0: u64,
    },

    // ---- Stage B: Controlled-GHS (paper §4) ----
    /// Per-phase refresh of `(fragment id, sender id)` to all neighbors.
    FragAnnounce {
        /// Sender's current fragment id.
        frag: u64,
        /// Sender's vertex id (teaches neighbors our identity — clean model).
        me: u64,
    },
    /// Depth-budgeted broadcast from the fragment root; participation test.
    Probe {
        /// Remaining hops the probe may still descend.
        ttl: u32,
    },
    /// Convergecast response to [`Msg::Probe`].
    MwoeUp {
        /// Best outgoing-edge candidate key in the subtree, if any.
        cand: Option<CandKey>,
        /// Whether the subtree extends beyond the probe's depth budget
        /// (fragment too tall to participate this phase).
        overflow: bool,
    },
    /// Root tells its (participating) fragment that the phase is on.
    Participate,
    /// Downcast along the argmin path toward the MWOE endpoint.
    MwoePath,
    /// Sent across the MWOE to the foreign endpoint, registering the sender's
    /// fragment as a "foreign child" (paper §4).
    ConnectReq {
        /// The child fragment's id.
        child_frag: u64,
    },
    /// Convergecast: does any vertex of this fragment host a foreign child?
    KidsUp {
        /// OR-aggregate over the subtree.
        has: bool,
    },
    /// Fragment-internal broadcast of the fragment's current CV color.
    ColorDown {
        /// The color.
        color: u64,
    },
    /// Color forwarded across a cross edge to a foreign child's endpoint.
    ColorCross {
        /// Parent fragment's color.
        color: u64,
    },
    /// Color routed up from the MWOE endpoint to the fragment root.
    ColorUp {
        /// Parent fragment's color.
        color: u64,
    },
    /// Matching convergecast: smallest unmatched foreign-child fragment id.
    UnmatchedUp {
        /// Argmin over the subtree, if any unmatched child exists.
        child: Option<u64>,
    },
    /// Downcast along the argmin path toward the chosen child's cross edge.
    AcceptPath,
    /// Acceptance sent across the cross edge: "your fragment is matched".
    AcceptCross {
        /// The accepting (parent) fragment's id.
        parent_frag: u64,
    },
    /// The child fragment routes the acceptance up to its root.
    MatchedUp {
        /// The partner (parent) fragment's id.
        partner: u64,
    },
    /// Fragment-internal broadcast: "we are matched".
    StatusDown,
    /// Matched-status notification over a cross edge (to foreign children
    /// and to the fragment's own MWOE parent).
    StatusCross,
    /// Downcast along the argmin path: unmatched fragment merges via MWOE.
    MergePath,
    /// Merge request across the MWOE; the receiver's side absorbs the sender.
    MergeCross,
    /// Flood establishing the merged fragment: new id + re-orientation.
    NewFrag {
        /// Id of the merged fragment (its new root's vertex id).
        id: u64,
    },

    // ---- Stage B adaptive phase ends (tag `b:sync`; sync-ended phases of
    // `ScheduleMode::Adaptive` only — see `schedule.rs`) ----
    /// Ack retracing a [`Msg::NewFrag`] edge: the sender's entire flood
    /// subtree has been re-oriented and is quiet.
    FloodAck {
        /// Phase the ack belongs to (consistency check).
        phase: u32,
    },
    /// Old-fragment-root broadcast down its fragment tree: no merge flood
    /// will enter this fragment this phase; settle immediately.
    SyncNoFlood {
        /// Phase the signal belongs to (consistency check).
        phase: u32,
    },
    /// BFS-tree convergecast: every vertex of my BFS subtree has settled
    /// (merge flood processed and acked, or provably not coming).
    SyncUp {
        /// Phase the report belongs to (consistency check).
        phase: u32,
    },
    /// BFS-root broadcast ending a sync phase: window scheduling resumes
    /// with phase `phase` at absolute round `start` (a `phase` equal to the
    /// phase count means Stage B is over and Stage C begins at `start`).
    SyncStart {
        /// The next phase index.
        phase: u32,
        /// Absolute round at which it starts, everywhere simultaneously.
        start: u64,
    },

    // ---- Stage C: intervals and fragment registration (paper §3) ----
    /// Parent assigns a child its interval `[start, start + size)`.
    Interval {
        /// First slot of the child's interval (the child's own slot).
        start: u64,
        /// Interval length (the child's BFS subtree size).
        size: u64,
    },
    /// Base-fragment root registers `(its slot)` with the BFS root;
    /// pipelined up the BFS tree.
    Register {
        /// Slot of the registering fragment root.
        slot: u64,
    },
    /// Pipeline completion marker for the registration upcast.
    RegDone,
    /// Base-fragment root tells its vertices their initial coarse id.
    /// Receiving it (or owning a slot, at fragment roots) *is* the start
    /// of Borůvka phase 0 — there is no separate start broadcast.
    InitCoarse {
        /// Initial coarse fragment id (the root's slot).
        id: u64,
    },

    // ---- Stage D: Boruvka on top of the base forest (paper §3).
    //
    // Phases are event-driven and fused: no per-phase barrier messages
    // exist. A vertex announces phase `j` as soon as its coarse id for `j`
    // is current, aggregates its fragment subtree as soon as all of its
    // *own* neighbors' announcements have landed, and starts phase `j+1`
    // the moment the phase-`j` answer (`Assign`/`NewCoarse`, which carry
    // the next phase) reaches it. Neighboring vertices are never more
    // than one phase apart (the per-phase `UpDone` convergecast gates the
    // root merge on every vertex), so receivers classify `CoarseAnnounce`
    // / `Candidate` / `UpDone` by per-port FIFO counting. ----
    /// Per-phase refresh of `(coarse id, sender id)` to all neighbors.
    /// Sent exactly once per phase in phase order, so the receiver infers
    /// the phase from its per-port receive count (per-edge FIFO).
    CoarseAnnounce {
        /// Sender's current coarse fragment id.
        coarse: u64,
        /// Sender's vertex id.
        me: u64,
    },
    /// Event-driven base-fragment convergecast of the best candidate
    /// w.r.t. the coarse partition: sent to the fragment parent as soon
    /// as the sender is locally ready (all neighbor announcements in) and
    /// its fragment subtree has reported. Always matches the receiver's
    /// current phase (the subtree cannot outrun its own fragment root).
    FragMwoeUp {
        /// Best candidate in the subtree (key + coarse ids), if any.
        cand: Option<(CandKey, u64, u64)>,
    },
    /// A candidate record in the pipelined, filtered upcast to the BFS root.
    Candidate {
        /// The record.
        rec: Candidate,
    },
    /// Pipeline completion marker for the candidate upcast: sent once per
    /// phase in phase order (receivers count per port, like
    /// [`Msg::CoarseAnnounce`]).
    UpDone,
    /// Interval-routed answer to one base fragment (pipelined downcast).
    /// Carries the *next* phase index: receipt is the start-of-phase
    /// signal, so fragments re-announce immediately.
    Assign {
        /// Destination slot (the base fragment root's interval start).
        dest_slot: u64,
        /// The base fragment's new coarse id.
        new_coarse: u64,
        /// Whether this base fragment's candidate was chosen as an MST edge.
        chosen: bool,
        /// Whether the algorithm is globally finished after this phase.
        done: bool,
        /// The phase the destination fragment starts on receipt (answered
        /// phase + 1).
        next: u64,
    },
    /// Base-fragment-internal broadcast of the new coarse id (+ done flag
    /// + next phase): the fragment-local leg of [`Msg::Assign`].
    NewCoarse {
        /// New coarse id.
        id: u64,
        /// Global termination flag.
        done: bool,
        /// The phase the receiver starts immediately (answered phase + 1).
        next: u64,
    },
    /// Downcast along the remembered argmin path: mark the candidate edge.
    /// Travels the same fragment-tree edges as the same phase's
    /// [`Msg::NewCoarse`] and is always sent *before* it, so per-edge FIFO
    /// guarantees it reaches each hop's `DScratch` before the phase rolls.
    MarkPath,
    /// Marks the far endpoint of a chosen MST edge across the edge itself.
    MarkCross,
}

impl Message for Msg {
    fn words(&self) -> u32 {
        match self {
            Msg::Bfs
            | Msg::BfsChild
            | Msg::Participate
            | Msg::MwoePath
            | Msg::AcceptPath
            | Msg::StatusDown
            | Msg::StatusCross
            | Msg::MergePath
            | Msg::MergeCross
            | Msg::RegDone
            | Msg::UpDone
            | Msg::MarkPath
            | Msg::MarkCross => 1,
            Msg::Probe { .. }
            | Msg::ConnectReq { .. }
            | Msg::KidsUp { .. }
            | Msg::ColorDown { .. }
            | Msg::ColorCross { .. }
            | Msg::ColorUp { .. }
            | Msg::UnmatchedUp { .. }
            | Msg::AcceptCross { .. }
            | Msg::MatchedUp { .. }
            | Msg::NewFrag { .. }
            | Msg::InitCoarse { .. }
            | Msg::Register { .. } => 1,
            Msg::SizeUp { .. }
            | Msg::FragAnnounce { .. }
            | Msg::FloodAck { .. }
            | Msg::SyncNoFlood { .. }
            | Msg::SyncUp { .. }
            | Msg::Interval { .. }
            | Msg::CoarseAnnounce { .. } => 2,
            Msg::NewCoarse { .. } | Msg::SyncStart { .. } => 3,
            Msg::Params { .. } | Msg::MwoeUp { .. } | Msg::Assign { .. } => 4,
            Msg::FragMwoeUp { .. } => 5,
            Msg::Candidate { .. } => 6,
        }
    }

    fn tag(&self) -> &'static str {
        match self {
            Msg::Bfs | Msg::BfsChild | Msg::SizeUp { .. } | Msg::Params { .. } => "a:bfs",
            Msg::FragAnnounce { .. } => "b:announce",
            Msg::Probe { .. } | Msg::MwoeUp { .. } => "b:mwoe",
            Msg::Participate | Msg::MwoePath | Msg::ConnectReq { .. } | Msg::KidsUp { .. } => {
                "b:connect"
            }
            Msg::ColorDown { .. } | Msg::ColorCross { .. } | Msg::ColorUp { .. } => "b:color",
            Msg::UnmatchedUp { .. }
            | Msg::AcceptPath
            | Msg::AcceptCross { .. }
            | Msg::MatchedUp { .. }
            | Msg::StatusDown
            | Msg::StatusCross => "b:match",
            Msg::MergePath | Msg::MergeCross | Msg::NewFrag { .. } => "b:merge",
            Msg::FloodAck { .. }
            | Msg::SyncNoFlood { .. }
            | Msg::SyncUp { .. }
            | Msg::SyncStart { .. } => "b:sync",
            Msg::Interval { .. } | Msg::Register { .. } | Msg::RegDone | Msg::InitCoarse { .. } => {
                "c:intervals"
            }
            Msg::CoarseAnnounce { .. } => "d:announce",
            Msg::FragMwoeUp { .. } => "d:fragmwoe",
            Msg::Candidate { .. } | Msg::UpDone => "d:upcast",
            Msg::Assign { .. } => "d:downcast",
            Msg::NewCoarse { .. } | Msg::MarkPath | Msg::MarkCross => "d:newcoarse",
        }
    }

    fn encode(&self, w: &mut WireWriter<'_>) {
        match self {
            Msg::Bfs => w.tag(TAG_BFS),
            Msg::BfsChild => w.tag(TAG_BFS_CHILD),
            Msg::SizeUp { size, height } => {
                w.tag(TAG_SIZE_UP);
                w.pack(*size); // subtree size <= n
                w.word(*height);
            }
            Msg::Params { n, h, k, t0 } => {
                w.tag(TAG_PARAMS);
                w.pack(*n);
                w.word(*h);
                w.word(*k);
                w.word(*t0);
            }
            Msg::FragAnnounce { frag, me } => {
                w.tag(TAG_FRAG_ANNOUNCE);
                w.pack(*frag); // fragment ids are vertex ids
                w.word(*me);
            }
            Msg::Probe { ttl } => {
                w.tag(TAG_PROBE);
                w.pack(u64::from(*ttl));
            }
            Msg::MwoeUp { cand, overflow } => {
                w.tag(TAG_MWOE_UP);
                w.flag(0, cand.is_some());
                w.flag(1, *overflow);
                encode_key(w, &cand.unwrap_or(CandKey { weight: 0, lo: 0, hi: 0 }));
            }
            Msg::Participate => w.tag(TAG_PARTICIPATE),
            Msg::MwoePath => w.tag(TAG_MWOE_PATH),
            Msg::ConnectReq { child_frag } => {
                w.tag(TAG_CONNECT_REQ);
                w.pack(*child_frag);
            }
            Msg::KidsUp { has } => {
                w.tag(TAG_KIDS_UP);
                w.flag(0, *has);
            }
            Msg::ColorDown { color } => {
                w.tag(TAG_COLOR_DOWN);
                w.pack(*color);
            }
            Msg::ColorCross { color } => {
                w.tag(TAG_COLOR_CROSS);
                w.pack(*color);
            }
            Msg::ColorUp { color } => {
                w.tag(TAG_COLOR_UP);
                w.pack(*color);
            }
            Msg::UnmatchedUp { child } => {
                w.tag(TAG_UNMATCHED_UP);
                w.flag(0, child.is_some());
                w.pack(child.unwrap_or(0)); // child fragment id < n
            }
            Msg::AcceptPath => w.tag(TAG_ACCEPT_PATH),
            Msg::AcceptCross { parent_frag } => {
                w.tag(TAG_ACCEPT_CROSS);
                w.pack(*parent_frag);
            }
            Msg::MatchedUp { partner } => {
                w.tag(TAG_MATCHED_UP);
                w.pack(*partner);
            }
            Msg::StatusDown => w.tag(TAG_STATUS_DOWN),
            Msg::StatusCross => w.tag(TAG_STATUS_CROSS),
            Msg::MergePath => w.tag(TAG_MERGE_PATH),
            Msg::MergeCross => w.tag(TAG_MERGE_CROSS),
            Msg::NewFrag { id } => {
                w.tag(TAG_NEW_FRAG);
                w.pack(*id);
            }
            Msg::FloodAck { phase } => {
                w.tag(TAG_FLOOD_ACK);
                w.word(u64::from(*phase));
            }
            Msg::SyncNoFlood { phase } => {
                w.tag(TAG_SYNC_NO_FLOOD);
                w.word(u64::from(*phase));
            }
            Msg::SyncUp { phase } => {
                w.tag(TAG_SYNC_UP);
                w.word(u64::from(*phase));
            }
            Msg::SyncStart { phase, start } => {
                w.tag(TAG_SYNC_START);
                w.word(u64::from(*phase));
                w.word(*start);
            }
            Msg::Interval { start, size } => {
                w.tag(TAG_INTERVAL);
                w.pack(*start); // slots are < n
                w.word(*size);
            }
            Msg::Register { slot } => {
                w.tag(TAG_REGISTER);
                w.pack(*slot);
            }
            Msg::RegDone => w.tag(TAG_REG_DONE),
            Msg::InitCoarse { id } => {
                w.tag(TAG_INIT_COARSE);
                w.pack(*id);
            }
            Msg::CoarseAnnounce { coarse, me } => {
                w.tag(TAG_COARSE_ANNOUNCE);
                w.pack(*coarse); // coarse ids are interval slots < n
                w.word(*me);
            }
            Msg::FragMwoeUp { cand } => {
                w.tag(TAG_FRAG_MWOE_UP);
                w.flag(0, cand.is_some());
                let (key, src, dst) = cand.unwrap_or((CandKey { weight: 0, lo: 0, hi: 0 }, 0, 0));
                w.pack(src);
                encode_key(w, &key);
                w.word(dst);
            }
            Msg::Candidate { rec } => {
                w.tag(TAG_CANDIDATE);
                w.pack(rec.src_slot);
                encode_key(w, &rec.key);
                w.word(rec.src_coarse);
                w.word(rec.dst_coarse);
            }
            Msg::UpDone => w.tag(TAG_UP_DONE),
            Msg::Assign { dest_slot, new_coarse, chosen, done, next } => {
                w.tag(TAG_ASSIGN);
                w.flag(0, *chosen);
                w.flag(1, *done);
                w.word(*dest_slot);
                w.word(*new_coarse);
                w.word(*next);
            }
            Msg::NewCoarse { id, done, next } => {
                w.tag(TAG_NEW_COARSE);
                w.flag(0, *done);
                w.word(*id);
                w.word(*next);
            }
            Msg::MarkPath => w.tag(TAG_MARK_PATH),
            Msg::MarkCross => w.tag(TAG_MARK_CROSS),
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Self {
        match r.tag() {
            TAG_BFS => Msg::Bfs,
            TAG_BFS_CHILD => Msg::BfsChild,
            TAG_SIZE_UP => Msg::SizeUp { size: r.packed(), height: r.word() },
            TAG_PARAMS => Msg::Params { n: r.packed(), h: r.word(), k: r.word(), t0: r.word() },
            TAG_FRAG_ANNOUNCE => Msg::FragAnnounce { frag: r.packed(), me: r.word() },
            TAG_PROBE => Msg::Probe { ttl: r.packed() as u32 },
            TAG_MWOE_UP => {
                let some = r.flag(0);
                let overflow = r.flag(1);
                let key = decode_key(r);
                Msg::MwoeUp { cand: some.then_some(key), overflow }
            }
            TAG_PARTICIPATE => Msg::Participate,
            TAG_MWOE_PATH => Msg::MwoePath,
            TAG_CONNECT_REQ => Msg::ConnectReq { child_frag: r.packed() },
            TAG_KIDS_UP => Msg::KidsUp { has: r.flag(0) },
            TAG_COLOR_DOWN => Msg::ColorDown { color: r.packed() },
            TAG_COLOR_CROSS => Msg::ColorCross { color: r.packed() },
            TAG_COLOR_UP => Msg::ColorUp { color: r.packed() },
            TAG_UNMATCHED_UP => Msg::UnmatchedUp { child: r.flag(0).then_some(r.packed()) },
            TAG_ACCEPT_PATH => Msg::AcceptPath,
            TAG_ACCEPT_CROSS => Msg::AcceptCross { parent_frag: r.packed() },
            TAG_MATCHED_UP => Msg::MatchedUp { partner: r.packed() },
            TAG_STATUS_DOWN => Msg::StatusDown,
            TAG_STATUS_CROSS => Msg::StatusCross,
            TAG_MERGE_PATH => Msg::MergePath,
            TAG_MERGE_CROSS => Msg::MergeCross,
            TAG_NEW_FRAG => Msg::NewFrag { id: r.packed() },
            TAG_FLOOD_ACK => Msg::FloodAck { phase: r.word() as u32 },
            TAG_SYNC_NO_FLOOD => Msg::SyncNoFlood { phase: r.word() as u32 },
            TAG_SYNC_UP => Msg::SyncUp { phase: r.word() as u32 },
            TAG_SYNC_START => Msg::SyncStart { phase: r.word() as u32, start: r.word() },
            TAG_INTERVAL => Msg::Interval { start: r.packed(), size: r.word() },
            TAG_REGISTER => Msg::Register { slot: r.packed() },
            TAG_REG_DONE => Msg::RegDone,
            TAG_INIT_COARSE => Msg::InitCoarse { id: r.packed() },
            TAG_COARSE_ANNOUNCE => Msg::CoarseAnnounce { coarse: r.packed(), me: r.word() },
            TAG_FRAG_MWOE_UP => {
                let some = r.flag(0);
                let src = r.packed();
                let key = decode_key(r);
                let dst = r.word();
                Msg::FragMwoeUp { cand: some.then_some((key, src, dst)) }
            }
            TAG_CANDIDATE => {
                let src_slot = r.packed();
                let key = decode_key(r);
                Msg::Candidate {
                    rec: Candidate { key, src_coarse: r.word(), dst_coarse: r.word(), src_slot },
                }
            }
            TAG_UP_DONE => Msg::UpDone,
            TAG_ASSIGN => {
                let chosen = r.flag(0);
                let done = r.flag(1);
                Msg::Assign {
                    dest_slot: r.word(),
                    new_coarse: r.word(),
                    chosen,
                    done,
                    next: r.word(),
                }
            }
            TAG_NEW_COARSE => Msg::NewCoarse { id: r.word(), done: r.flag(0), next: r.word() },
            TAG_MARK_PATH => Msg::MarkPath,
            TAG_MARK_CROSS => Msg::MarkCross,
            other => unreachable!("unknown Msg wire tag {other}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidate::{CandKey, Candidate};

    #[test]
    fn all_messages_fit_one_unit() {
        let rec =
            Candidate { key: CandKey::new(1, 2, 3), src_coarse: 4, dst_coarse: 5, src_slot: 6 };
        let samples = [
            Msg::Bfs,
            Msg::SizeUp { size: 1, height: 2 },
            Msg::Params { n: 1, h: 2, k: 3, t0: 4 },
            Msg::FragAnnounce { frag: 1, me: 2 },
            Msg::MwoeUp { cand: Some(CandKey::new(1, 2, 3)), overflow: false },
            Msg::FragMwoeUp { cand: Some((CandKey::new(1, 2, 3), 4, 5)) },
            Msg::Candidate { rec },
            Msg::Assign { dest_slot: 1, new_coarse: 2, chosen: true, done: false, next: 3 },
            Msg::NewCoarse { id: 2, done: false, next: 3 },
        ];
        for m in samples {
            assert!(m.words() >= 1 && m.words() <= 8, "{m:?} out of unit budget");
            assert!(!m.tag().is_empty());
        }
    }

    #[test]
    fn register_is_one_word() {
        // Regression (PR 3): `Register` used to drag a dead `height` field
        // that doubled its cost against the per-edge word budget.
        assert_eq!(Msg::Register { slot: 9 }.words(), 1);
    }

    #[test]
    fn tags_group_by_stage() {
        assert_eq!(Msg::Bfs.tag(), "a:bfs");
        assert_eq!(Msg::NewFrag { id: 3 }.tag(), "b:merge");
        assert_eq!(Msg::Register { slot: 0 }.tag(), "c:intervals");
        assert_eq!(Msg::UpDone.tag(), "d:upcast");
        for m in [
            Msg::FloodAck { phase: 1 },
            Msg::SyncNoFlood { phase: 1 },
            Msg::SyncUp { phase: 1 },
            Msg::SyncStart { phase: 2, start: 99 },
        ] {
            assert_eq!(m.tag(), "b:sync");
            assert!(m.words() <= 3);
        }
    }

    #[test]
    fn tag_guards_mirror_tags() {
        // One representative per wire tag; a new tag that lands without a
        // row here *and* in `node::TAG_GUARDS` fails both this test and the
        // `dmst-analysis` tag-guard rule.
        let reps = [
            Msg::Bfs,
            Msg::FragAnnounce { frag: 1, me: 2 },
            Msg::MwoeUp { cand: None, overflow: false },
            Msg::Participate,
            Msg::ColorUp { color: 7 },
            Msg::StatusCross,
            Msg::MergePath,
            Msg::SyncUp { phase: 1 },
            Msg::Register { slot: 0 },
            Msg::CoarseAnnounce { coarse: 1, me: 2 },
            Msg::FragMwoeUp { cand: None },
            Msg::UpDone,
            Msg::Assign { dest_slot: 1, new_coarse: 2, chosen: true, done: false, next: 3 },
            Msg::MarkPath,
        ];
        let guards = crate::node::TAG_GUARDS;
        assert_eq!(guards.len(), reps.len(), "one TAG_GUARDS row per wire tag");
        for m in &reps {
            let tag = m.tag();
            let row = guards
                .iter()
                .find(|(t, _, _)| *t == tag)
                .unwrap_or_else(|| panic!("tag {tag:?} missing from TAG_GUARDS"));
            assert_eq!(
                tag.chars().next(),
                Some(row.1),
                "census letter of {tag:?} must match its stage prefix"
            );
        }
        // Rows are unique and sorted, so diffs stay reviewable.
        let tags: Vec<&str> = guards.iter().map(|(t, _, _)| *t).collect();
        let mut sorted = tags.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(tags, sorted, "TAG_GUARDS rows must be sorted and unique");
    }
}
