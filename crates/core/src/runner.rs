//! High-level entry points: run the algorithm on a graph, collect the MST
//! and the round/message statistics.

use std::error::Error;
use std::fmt;

use congest_sim::{Network, RunConfig, RunStats, SimError, Topology};
use dmst_graphs::{EdgeId, WeightedGraph};

use crate::config::ElkinConfig;
use crate::node::ElkinNode;

/// Errors from [`run_mst`] / [`run_forest`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RunError {
    /// The input graph is not connected (the algorithm, like the paper,
    /// assumes a connected network).
    Disconnected,
    /// The configured root vertex does not exist.
    InvalidRoot {
        /// The offending root id.
        root: usize,
        /// Number of vertices.
        n: usize,
    },
    /// The simulator rejected the execution (bandwidth violation or round
    /// cap — either indicates a protocol bug, not an input problem).
    Sim(SimError),
    /// The per-vertex outputs were inconsistent (e.g. an edge marked at one
    /// endpoint only). Indicates an algorithm bug.
    BadOutput(String),
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Disconnected => write!(f, "input graph is not connected"),
            RunError::InvalidRoot { root, n } => {
                write!(f, "root {root} out of range for {n} vertices")
            }
            RunError::Sim(e) => write!(f, "simulation failed: {e}"),
            RunError::BadOutput(msg) => write!(f, "inconsistent output: {msg}"),
        }
    }
}

impl Error for RunError {}

impl From<SimError> for RunError {
    fn from(e: SimError) -> Self {
        RunError::Sim(e)
    }
}

/// Where the rounds of a run went, stage by stage. Attribution is exact:
/// the simulator charges every executed round to the earliest stage any
/// vertex is still in ([`RunStats::rounds_by_stage`] via
/// `NodeProgram::stage_tag`), so boundaries reflect the *last* vertex to
/// cross each milestone and the four counts partition
/// [`RunStats::rounds`]. Stages C and D overlap per vertex under the
/// fused event-driven protocol (a vertex starts Borůvka phase 0 the
/// moment it holds its initial coarse id, while registration may still be
/// draining elsewhere); the laggard rule above keeps the partition exact
/// regardless — a round is "c" until the last vertex can announce.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StageProfile {
    /// Rounds spent in Stage A (BFS + sizes + parameter broadcast).
    pub stage_a: u64,
    /// Rounds spent in Stage B (Controlled-GHS).
    pub stage_b: u64,
    /// Rounds spent in Stage C (intervals + registration).
    pub stage_c: u64,
    /// Rounds spent in Stage D (Borůvka phases) until global quiescence.
    pub stage_d: u64,
}

/// Result of a full distributed MST computation.
#[derive(Clone, Debug)]
pub struct MstRun {
    /// MST edge ids, sorted ascending (canonical form, comparable to
    /// `dmst_graphs::mst::MstResult::edges`).
    pub edges: Vec<EdgeId>,
    /// Total raw weight of the tree.
    pub total_weight: u128,
    /// Rounds, messages, words, per-tag breakdown.
    pub stats: RunStats,
    /// The base-forest parameter the run settled on.
    pub k: u64,
    /// BFS tree height measured by Stage A (`H <= D <= 2H`).
    pub bfs_height: u64,
    /// Per-stage round breakdown.
    pub profile: StageProfile,
}

/// Result of a standalone Controlled-GHS run (Theorem 4.3).
#[derive(Clone, Debug)]
pub struct ForestRun {
    /// Fragment id of every vertex.
    pub fragment_of: Vec<u64>,
    /// Fragment-tree parent (as a *neighbor vertex id*) of every vertex;
    /// `None` at fragment roots.
    pub parent_of: Vec<Option<usize>>,
    /// BFS-tree parent (vertex id) of every vertex; `None` at the BFS root.
    /// Lets follow-up protocols (e.g. the GKP Pipeline baseline) reuse the
    /// auxiliary tree Stage A built.
    pub bfs_parent_of: Vec<Option<usize>>,
    /// Rounds, messages, words, per-tag breakdown.
    pub stats: RunStats,
    /// The parameter `k` used.
    pub k: u64,
    /// BFS tree height measured by Stage A.
    pub bfs_height: u64,
}

fn network_for(g: &WeightedGraph, cfg: &ElkinConfig) -> Result<Network<ElkinNode>, RunError> {
    if cfg.root >= g.num_nodes().max(1) {
        return Err(RunError::InvalidRoot { root: cfg.root, n: g.num_nodes() });
    }
    if !g.is_connected() {
        return Err(RunError::Disconnected);
    }
    let topo = Topology::new(g.num_nodes(), g.edges())
        .map_err(|e| RunError::BadOutput(format!("graph/topology mismatch: {e}")))?;
    let cfg = *cfg;
    Ok(Network::new(topo, move |info| ElkinNode::new(info, cfg)))
}

fn sim_config(g: &WeightedGraph, cfg: &ElkinConfig) -> RunConfig {
    RunConfig {
        bandwidth: cfg.bandwidth,
        // Generous but finite: Stage B budgets are O(k log* n) <= O(n), each
        // Boruvka phase is O(n), and there are O(log n) of them.
        max_rounds: 1_000_000 + 600 * g.num_nodes() as u64,
        shards: cfg.shards,
        ..RunConfig::default()
    }
}

/// Runs Elkin's deterministic distributed MST algorithm on `g` and returns
/// the canonical MST together with the measured complexity.
///
/// # Errors
///
/// See [`RunError`]; notably the graph must be connected.
///
/// ```
/// use dmst_core::{run_mst, ElkinConfig};
/// use dmst_graphs::{generators, mst};
///
/// let g = generators::random_connected(40, 80, &mut generators::WeightRng::new(5));
/// let run = run_mst(&g, &ElkinConfig::default())?;
/// assert_eq!(run.edges, mst::kruskal(&g).edges);
/// # Ok::<(), dmst_core::RunError>(())
/// ```
pub fn run_mst(g: &WeightedGraph, cfg: &ElkinConfig) -> Result<MstRun, RunError> {
    let mut cfg = *cfg;
    cfg.stop_after_forest = false;
    let mut net = network_for(g, &cfg)?;
    let stats = net.run(&sim_config(g, &cfg))?;

    // Assemble the edge set and insist on symmetric marking.
    let topo = net.topology();
    let mut marks: Vec<u8> = vec![0; g.num_edges()];
    for (v, node) in net.nodes().iter().enumerate() {
        for p in node.mst_ports() {
            marks[topo.ports(v)[p].edge] += 1;
        }
    }
    let mut edges = Vec::new();
    for (e, &m) in marks.iter().enumerate() {
        match m {
            0 => {}
            2 => edges.push(e),
            _ => {
                return Err(RunError::BadOutput(format!(
                    "edge {e} marked at {m} endpoint(s), expected 0 or 2"
                )))
            }
        }
    }
    if g.num_nodes() > 0 && edges.len() != g.num_nodes() - 1 {
        return Err(RunError::BadOutput(format!(
            "{} MST edges for {} vertices",
            edges.len(),
            g.num_nodes()
        )));
    }

    let sample = &net.nodes()[cfg.root];
    let k = sample.chosen_k().unwrap_or(1);
    let bfs_height = net.nodes().iter().map(|nd| nd.bfs_depth()).max().unwrap_or(0);
    let total_weight = g.total_weight(edges.iter().copied());

    // Per-round stage attribution from the simulator: exact by
    // construction (every ElkinNode reports a tag every round, so the four
    // counts partition stats.rounds).
    let profile = StageProfile {
        stage_a: stats.rounds_in_stage("a"),
        stage_b: stats.rounds_in_stage("b"),
        stage_c: stats.rounds_in_stage("c"),
        stage_d: stats.rounds_in_stage("d"),
    };
    debug_assert_eq!(
        profile.stage_a + profile.stage_b + profile.stage_c + profile.stage_d,
        stats.rounds,
        "stage attribution must partition the run"
    );
    Ok(MstRun { edges, total_weight, stats, k, bfs_height, profile })
}

/// Runs only Stages A+B (BFS + Controlled-GHS) and returns the
/// `(O(n/k), O(k))` base MST forest — the standalone object of the paper's
/// Theorem 4.3.
///
/// # Errors
///
/// See [`RunError`].
pub fn run_forest(g: &WeightedGraph, cfg: &ElkinConfig) -> Result<ForestRun, RunError> {
    let mut cfg = *cfg;
    cfg.stop_after_forest = true;
    let mut net = network_for(g, &cfg)?;
    let stats = net.run(&sim_config(g, &cfg))?;

    let topo = net.topology();
    let fragment_of: Vec<u64> = net.nodes().iter().map(ElkinNode::base_fragment).collect();
    let parent_of: Vec<Option<usize>> = net
        .nodes()
        .iter()
        .enumerate()
        .map(|(v, nd)| nd.fragment_parent().map(|p| topo.ports(v)[p].neighbor))
        .collect();
    let bfs_parent_of: Vec<Option<usize>> = net
        .nodes()
        .iter()
        .enumerate()
        .map(|(v, nd)| nd.bfs_parent_port().map(|p| topo.ports(v)[p].neighbor))
        .collect();
    let sample = &net.nodes()[cfg.root];
    let k = sample.chosen_k().unwrap_or(1);
    let bfs_height = net.nodes().iter().map(|nd| nd.bfs_depth()).max().unwrap_or(0);
    Ok(ForestRun { fragment_of, parent_of, bfs_parent_of, stats, k, bfs_height })
}
