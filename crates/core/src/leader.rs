//! Leader election — the preamble the paper (and \[PRS16\]) *assumes away*.
//!
//! Elkin's algorithm starts from a designated root `rt`. In the clean
//! network model, electing such a root deterministically costs real
//! messages: the classic *FloodMax with echo* (propagation of information
//! with feedback, suppressed by higher ids) elects the maximum-id vertex
//! in `O(D)` rounds but up to `O(D·m)` messages — which would dominate the
//! paper's `O(m log n + n log n log* n)` message budget on low-diameter
//! dense graphs. This module implements that election so the cost is
//! *measurable* (see `examples/` and tests) rather than hand-waved; the
//! main runner keeps the designated-root assumption, as the literature
//! does.
//!
//! Protocol: every vertex starts as a candidate and floods `Propose{id}`.
//! A vertex adopting a larger id re-floods it and owes its wave-parent an
//! ack once all its other neighbors have responded (`Ack` as a completed
//! child, or an immediate `Ack` if they already carry the same id and are
//! not its child). Waves carrying smaller ids are silently absorbed, so
//! only the maximum id's echo ever completes; its initiator then floods
//! `Elected`.

use congest_sim::{
    Message, Network, NodeInfo, NodeProgram, PortId, RoundCtx, RunConfig, RunStats, SimError,
    Topology,
};
use dmst_graphs::WeightedGraph;

/// Wire protocol of the election.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LeadMsg {
    /// A candidate wave carrying the best id seen so far.
    Propose {
        /// The candidate id.
        id: u64,
    },
    /// Echo for the wave `id`: the sender's subtree has fully adopted it
    /// (or the sender already carried `id` and is not our child).
    Ack {
        /// The wave this ack belongs to.
        id: u64,
    },
    /// The completed candidate announces itself.
    Elected {
        /// The leader's id.
        id: u64,
    },
}

impl Message for LeadMsg {
    fn tag(&self) -> &'static str {
        match self {
            LeadMsg::Propose { .. } => "lead:propose",
            LeadMsg::Ack { .. } => "lead:ack",
            LeadMsg::Elected { .. } => "lead:elected",
        }
    }

    fn encode(&self, w: &mut congest_sim::WireWriter<'_>) {
        // All three carry one vertex id, which packs into the tag word.
        match self {
            LeadMsg::Propose { id } => {
                w.tag(0);
                w.pack(*id);
            }
            LeadMsg::Ack { id } => {
                w.tag(1);
                w.pack(*id);
            }
            LeadMsg::Elected { id } => {
                w.tag(2);
                w.pack(*id);
            }
        }
    }

    fn decode(r: &mut congest_sim::WireReader<'_>) -> Self {
        match r.tag() {
            0 => LeadMsg::Propose { id: r.packed() },
            1 => LeadMsg::Ack { id: r.packed() },
            2 => LeadMsg::Elected { id: r.packed() },
            other => unreachable!("unknown LeadMsg wire tag {other}"),
        }
    }
}

/// Per-vertex election state machine.
#[derive(Clone, Debug)]
pub struct LeaderNode {
    id: u64,
    deg: usize,
    best: u64,
    parent: Option<PortId>,
    pending: usize,
    acked: bool,
    leader: Option<u64>,
}

impl LeaderNode {
    /// Builds the program for one vertex.
    pub fn new(info: NodeInfo<'_>) -> Self {
        Self {
            id: info.id as u64,
            deg: info.ports.len(),
            best: info.id as u64,
            parent: None,
            pending: info.ports.len(),
            acked: false,
            leader: None,
        }
    }

    /// The elected leader, once known.
    pub fn leader(&self) -> Option<u64> {
        self.leader
    }

    /// Echo bookkeeping: when all owed responses are in, ack our parent —
    /// or, at the initiator of the winning wave, declare victory.
    fn maybe_echo(&mut self, ctx: &mut RoundCtx<'_, LeadMsg>) {
        if self.acked || self.pending > 0 || self.leader.is_some() {
            return;
        }
        self.acked = true;
        match self.parent {
            Some(q) => ctx.send(q, LeadMsg::Ack { id: self.best }),
            None => {
                // Our own wave completed: we are the maximum.
                debug_assert_eq!(self.best, self.id);
                self.leader = Some(self.id);
                for q in 0..self.deg {
                    ctx.send(q, LeadMsg::Elected { id: self.id });
                }
            }
        }
    }
}

impl NodeProgram for LeaderNode {
    type Msg = LeadMsg;

    fn on_round(&mut self, ctx: &mut RoundCtx<'_, LeadMsg>) {
        if ctx.round() == 0 {
            if self.deg == 0 {
                self.leader = Some(self.id);
                return;
            }
            for q in 0..self.deg {
                ctx.send(q, LeadMsg::Propose { id: self.id });
            }
        }
        let inbox: Vec<(usize, LeadMsg)> = ctx.inbox().to_vec();

        // Adopt at most once per round — the largest proposed id — so the
        // re-flood stays within the per-edge budget even when many waves
        // arrive together (e.g. at a star center).
        let adopt = inbox
            .iter()
            .filter_map(|(p, m)| match m {
                LeadMsg::Propose { id } if *id > self.best => Some((*id, *p)),
                _ => None,
            })
            .max();
        if let Some((id, port)) = adopt {
            self.best = id;
            self.parent = Some(port);
            self.pending = self.deg - 1;
            self.acked = false;
            for q in 0..self.deg {
                if q != port {
                    ctx.send(q, LeadMsg::Propose { id });
                }
            }
            self.maybe_echo(ctx);
        }

        for (port, msg) in inbox {
            match msg {
                LeadMsg::Propose { id } => {
                    // Same wave from a non-parent neighbor: immediate ack.
                    // The one propose we just adopted from is our parent —
                    // it gets the deferred child echo instead. (Waves below
                    // `best` are absorbed silently; their initiators adopt
                    // a bigger id before ever needing the echo.)
                    if id == self.best && Some((id, port)) != adopt {
                        ctx.send(port, LeadMsg::Ack { id });
                    }
                }
                LeadMsg::Ack { id } => {
                    if id == self.best && self.pending > 0 {
                        self.pending -= 1;
                        self.maybe_echo(ctx);
                    }
                }
                LeadMsg::Elected { id } => {
                    if self.leader.is_none() {
                        self.leader = Some(id);
                        for q in 0..self.deg {
                            if q != port {
                                ctx.send(q, LeadMsg::Elected { id });
                            }
                        }
                    }
                }
            }
        }
    }

    fn is_done(&self) -> bool {
        self.leader.is_some()
    }
}

/// Result of a leader election.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ElectionRun {
    /// The elected leader (always the maximum vertex id).
    pub leader: u64,
    /// Rounds and messages the election consumed.
    pub stats: RunStats,
}

/// Elects a leader on `g` by FloodMax-with-echo and reports the cost.
///
/// # Errors
///
/// Fails on disconnected inputs (no common leader is reachable) or if the
/// simulation errs.
pub fn elect_leader(g: &WeightedGraph) -> Result<ElectionRun, SimError> {
    let topo = Topology::new(g.num_nodes(), g.edges())?;
    if !topo.is_connected() {
        return Err(SimError::InvalidTopology("election requires a connected graph".into()));
    }
    let mut net = Network::new(topo, LeaderNode::new);
    let cfg = RunConfig { max_rounds: 100_000 + 50 * g.num_nodes() as u64, ..RunConfig::default() };
    let stats = net.run(&cfg)?;
    let expect = g.num_nodes() as u64 - 1;
    for (v, nd) in net.nodes().iter().enumerate() {
        assert_eq!(
            nd.leader(),
            Some(expect),
            "vertex {v} elected {:?}, expected the maximum id {expect}",
            nd.leader()
        );
    }
    Ok(ElectionRun { leader: expect, stats })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmst_graphs::generators as gen;

    #[test]
    fn elects_max_on_families() {
        let r = &mut gen::WeightRng::new(1);
        for (label, g) in [
            ("path", gen::path(40, r)),
            ("cycle", gen::cycle(31, r)),
            ("star", gen::star(25, r)),
            ("complete", gen::complete(15, r)),
            ("grid", gen::grid_2d(6, 7, r)),
            ("random", gen::random_connected(50, 120, r)),
            ("single", gen::path(1, r)),
        ] {
            let run = elect_leader(&g).unwrap_or_else(|e| panic!("{label}: {e}"));
            assert_eq!(run.leader, g.num_nodes() as u64 - 1, "{label}");
        }
    }

    #[test]
    fn cost_exceeds_edge_count_on_adversarial_order() {
        // Decreasing-id path: every wave travels before being suppressed —
        // the quadratic-ish worst case that motivates the designated-root
        // assumption.
        let r = &mut gen::WeightRng::new(2);
        let g = gen::path(120, r);
        let run = elect_leader(&g).unwrap();
        assert!(
            run.stats.messages > 4 * g.num_edges() as u64,
            "expected super-linear message cost, got {}",
            run.stats.messages
        );
    }

    #[test]
    fn deterministic() {
        let r = &mut gen::WeightRng::new(3);
        let g = gen::random_connected(40, 100, r);
        assert_eq!(elect_leader(&g).unwrap(), elect_leader(&g).unwrap());
    }
}
