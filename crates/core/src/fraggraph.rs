//! The BFS root's local fragment-graph computation (paper §3).
//!
//! Each Borůvka phase, the root `rt` holds the best candidate edge per
//! coarse fragment and must (a) merge fragments along their MWOEs, (b)
//! decide which candidate edges become MST edges, (c) assign each component
//! a fresh coarse id, and (d) detect global termination. This module is the
//! *pure* version of that computation, extracted so it can be unit-tested
//! independently of the message machinery in `node::stage_cd`.

use std::collections::{BTreeMap, BTreeSet};

use dmst_graphs::UnionFind;

use crate::candidate::Candidate;

/// Outcome of one root-local Borůvka merge.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MergeOutcome {
    /// New coarse id for every old coarse id (new id = minimum old id in
    /// the merged component).
    pub new_id: BTreeMap<u64, u64>,
    /// Slots (base-fragment addresses) whose candidate edge was chosen as
    /// an MST edge this phase.
    pub chosen_slots: BTreeSet<u64>,
    /// Whether a single coarse fragment remains (global termination).
    pub done: bool,
}

/// Merges the fragment graph: `coarse_ids` are the current coarse ids,
/// `best` maps a coarse id to its minimum-weight outgoing candidate.
///
/// Properties (unit-tested below):
///
/// * every component's new id is the minimum old id it contains;
/// * exactly `#old - #new` candidates are chosen (the merge edges form a
///   forest over the coarse ids — mutual-MWOE duplicates are skipped);
/// * `done` iff one component remains.
///
/// # Panics
///
/// Panics if a candidate references a coarse id not in `coarse_ids`.
pub fn merge_fragment_graph(coarse_ids: &[u64], best: &BTreeMap<u64, Candidate>) -> MergeOutcome {
    let mut ids: Vec<u64> = coarse_ids.to_vec();
    ids.sort_unstable();
    ids.dedup();
    let index: BTreeMap<u64, usize> = ids.iter().enumerate().map(|(i, &c)| (c, i)).collect();
    let mut uf = UnionFind::new(ids.len());

    let mut chosen_slots = BTreeSet::new();
    for &c in &ids {
        if let Some(rec) = best.get(&c) {
            let a = index[&c];
            let b = *index.get(&rec.dst_coarse).unwrap_or_else(|| {
                panic!("candidate points at unknown coarse id {}", rec.dst_coarse)
            });
            // With unique tie-broken keys, the MWOE edge set is acyclic
            // except for mutual pairs, which reference the same physical
            // edge; the union check drops the duplicate.
            if uf.union(a, b) {
                chosen_slots.insert(rec.src_slot);
            }
        }
    }

    let mut rep_min: Vec<u64> = vec![u64::MAX; ids.len()];
    for (i, &c) in ids.iter().enumerate() {
        let r = uf.find(i);
        rep_min[r] = rep_min[r].min(c);
    }
    let new_id: BTreeMap<u64, u64> =
        ids.iter().enumerate().map(|(i, &c)| (c, rep_min[uf.find(i)])).collect();
    let done = uf.num_sets() <= 1;

    MergeOutcome { new_id, chosen_slots, done }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidate::CandKey;

    fn cand(src: u64, dst: u64, w: u64, slot: u64) -> (u64, Candidate) {
        (
            src,
            Candidate {
                key: CandKey::new(w, src, dst),
                src_coarse: src,
                dst_coarse: dst,
                src_slot: slot,
            },
        )
    }

    #[test]
    fn chain_merges_to_one() {
        // 0 -> 1 -> 2 -> 3, each via its own edge.
        let ids = [0u64, 1, 2, 3];
        let best: BTreeMap<u64, Candidate> =
            [cand(0, 1, 5, 10), cand(1, 2, 3, 11), cand(2, 3, 4, 12), cand(3, 2, 4, 13)]
                .into_iter()
                .collect();
        let out = merge_fragment_graph(&ids, &best);
        assert!(out.done);
        assert!(ids.iter().all(|c| out.new_id[c] == 0));
        // 3 -> 2 is the mutual twin of 2 -> 3 (same key): only one chosen.
        assert_eq!(out.chosen_slots.len(), 3);
        assert!(out.chosen_slots.contains(&10));
        assert!(out.chosen_slots.contains(&11));
        // Exactly one of the mutual pair's slots is chosen.
        assert_eq!(
            out.chosen_slots.contains(&12) as u32 + out.chosen_slots.contains(&13) as u32,
            1
        );
    }

    #[test]
    fn two_components_not_done() {
        let ids = [0u64, 1, 7, 9];
        let best: BTreeMap<u64, Candidate> = [
            cand(0, 1, 1, 20),
            cand(1, 0, 1, 21), // mutual with the above
            cand(7, 9, 2, 22),
            cand(9, 7, 2, 23), // mutual
        ]
        .into_iter()
        .collect();
        let out = merge_fragment_graph(&ids, &best);
        assert!(!out.done);
        assert_eq!(out.new_id[&0], 0);
        assert_eq!(out.new_id[&1], 0);
        assert_eq!(out.new_id[&7], 7);
        assert_eq!(out.new_id[&9], 7);
        assert_eq!(out.chosen_slots.len(), 2);
    }

    #[test]
    fn missing_candidates_leave_singletons() {
        // Fragment 5 has no outgoing candidate (possible only when it is
        // alone, but the pure function tolerates it).
        let out = merge_fragment_graph(&[5], &BTreeMap::new());
        assert!(out.done);
        assert_eq!(out.new_id[&5], 5);
        assert!(out.chosen_slots.is_empty());
    }

    #[test]
    fn star_merge_picks_min_id() {
        // 3, 8, 12 all point at 2.
        let ids = [2u64, 3, 8, 12];
        let best: BTreeMap<u64, Candidate> = [
            cand(3, 2, 1, 30),
            cand(8, 2, 2, 31),
            cand(12, 2, 3, 32),
            cand(2, 3, 1, 33), // mutual with 3 -> 2
        ]
        .into_iter()
        .collect();
        let out = merge_fragment_graph(&ids, &best);
        assert!(out.done);
        assert!(ids.iter().all(|c| out.new_id[c] == 2));
        assert_eq!(out.chosen_slots.len(), 3, "three physical edges used");
    }

    #[test]
    #[should_panic(expected = "unknown coarse id")]
    fn foreign_destination_rejected() {
        let best: BTreeMap<u64, Candidate> = [cand(0, 99, 1, 0)].into_iter().collect();
        let _ = merge_fragment_graph(&[0], &best);
    }
}
