//! A synchronous GHS-style Borůvka baseline (\[GHS83\]/\[CT85\] row of the
//! paper's §1.1 comparison).
//!
//! Fragments merge along their minimum-weight outgoing edges every phase,
//! with **no diameter control**: fragment trees grow as tall as the MST
//! itself, so convergecasts cost `Θ(Diam(MST))` per phase. The classic
//! test/accept/reject edge search keeps message complexity at
//! `O(m + n log n)`:
//!
//! * every vertex scans its incident edges in tie-broken weight order;
//! * a `Test` answered "same fragment" rejects the edge *permanently*
//!   (amortized `O(m)` over the whole run);
//! * the currently accepted edge is re-tested once per phase
//!   (`O(n log n)` total).
//!
//! Phase structure (event-driven, barriers over an auxiliary BFS tree):
//! `PhaseStart` flood → per-fragment `SearchGo` + sequential testing →
//! MWOE convergecast → `Connect` over the chosen edge → merge flood
//! (`NewFrag`, new root = higher-id endpoint of the mutual-connect core
//! edge, as in classic GHS) → `PhaseEnd` barrier. A fragment root that
//! finds no outgoing edge owns the whole graph and broadcasts `AlgoDone`.
//!
//! Expected complexity: `O((D + Diam(MST) + Δ) log n)` rounds and
//! `O(m + n log n)` messages.

use congest_sim::{Message, NodeInfo, NodeProgram, PortId, RoundCtx, WireReader, WireWriter};

use dmst_core::CandKey;

/// Wire protocol of the GHS baseline.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GhsMsg {
    /// One-time identity exchange (clean network model).
    Hello {
        /// Sender's vertex id.
        me: u64,
    },
    /// BFS wave for the auxiliary barrier tree.
    Bfs,
    /// BFS child registration.
    BfsChild,
    /// Barrier: my BFS subtree finished building.
    Ready,
    /// Root broadcast: a new Borůvka phase begins.
    PhaseStart,
    /// Fragment-internal broadcast: start the MWOE search.
    SearchGo,
    /// Edge probe carrying the sender's fragment id.
    Test {
        /// Sender's fragment id.
        frag: u64,
    },
    /// Probe answer.
    TestReply {
        /// Whether both endpoints are in the same fragment (reject).
        same: bool,
    },
    /// Fragment convergecast of the minimum outgoing edge.
    MwoeUp {
        /// Best candidate key in the subtree, if any.
        cand: Option<CandKey>,
    },
    /// Downcast along the argmin path.
    MwoePath,
    /// Merge request over the chosen MWOE.
    Connect,
    /// Merge flood: new fragment id + re-orientation.
    NewFrag {
        /// New fragment id (the winning endpoint's vertex id).
        id: u64,
    },
    /// Barrier: my BFS subtree finished this phase.
    PhaseEnd,
    /// The single remaining fragment announces global termination.
    AlgoDone,
}

impl Message for GhsMsg {
    fn words(&self) -> u32 {
        match self {
            GhsMsg::MwoeUp { .. } => 3,
            _ => 1,
        }
    }

    fn tag(&self) -> &'static str {
        match self {
            GhsMsg::Hello { .. } => "ghs:hello",
            GhsMsg::Bfs | GhsMsg::BfsChild | GhsMsg::Ready => "ghs:bfs",
            GhsMsg::PhaseStart | GhsMsg::PhaseEnd | GhsMsg::AlgoDone => "ghs:control",
            GhsMsg::SearchGo | GhsMsg::MwoeUp { .. } | GhsMsg::MwoePath => "ghs:search",
            GhsMsg::Test { .. } | GhsMsg::TestReply { .. } => "ghs:test",
            GhsMsg::Connect | GhsMsg::NewFrag { .. } => "ghs:merge",
        }
    }

    fn encode(&self, w: &mut WireWriter<'_>) {
        match self {
            GhsMsg::Hello { me } => {
                w.tag(0);
                w.pack(*me);
            }
            GhsMsg::Bfs => w.tag(1),
            GhsMsg::BfsChild => w.tag(2),
            GhsMsg::Ready => w.tag(3),
            GhsMsg::PhaseStart => w.tag(4),
            GhsMsg::SearchGo => w.tag(5),
            GhsMsg::Test { frag } => {
                w.tag(6);
                w.pack(*frag);
            }
            GhsMsg::TestReply { same } => {
                w.tag(7);
                w.flag(0, *same);
            }
            GhsMsg::MwoeUp { cand } => {
                // 3 declared words: the endpoint `lo` (a vertex id) packs
                // into the tag word, the full-range weight and `hi` get
                // whole words.
                w.tag(8);
                w.flag(0, cand.is_some());
                let key = cand.unwrap_or(CandKey { weight: 0, lo: 0, hi: 0 });
                w.pack(key.lo);
                w.word(key.weight);
                w.word(key.hi);
            }
            GhsMsg::MwoePath => w.tag(9),
            GhsMsg::Connect => w.tag(10),
            GhsMsg::NewFrag { id } => {
                w.tag(11);
                w.pack(*id);
            }
            GhsMsg::PhaseEnd => w.tag(12),
            GhsMsg::AlgoDone => w.tag(13),
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Self {
        match r.tag() {
            0 => GhsMsg::Hello { me: r.packed() },
            1 => GhsMsg::Bfs,
            2 => GhsMsg::BfsChild,
            3 => GhsMsg::Ready,
            4 => GhsMsg::PhaseStart,
            5 => GhsMsg::SearchGo,
            6 => GhsMsg::Test { frag: r.packed() },
            7 => GhsMsg::TestReply { same: r.flag(0) },
            8 => {
                let some = r.flag(0);
                let lo = r.packed();
                let weight = r.word();
                let hi = r.word();
                GhsMsg::MwoeUp { cand: some.then_some(CandKey { weight, lo, hi }) }
            }
            9 => GhsMsg::MwoePath,
            10 => GhsMsg::Connect,
            11 => GhsMsg::NewFrag { id: r.packed() },
            12 => GhsMsg::PhaseEnd,
            13 => GhsMsg::AlgoDone,
            other => unreachable!("unknown GhsMsg wire tag {other}"),
        }
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
enum Sel {
    #[default]
    None,
    Mine(PortId),
    Child(PortId),
}

/// Per-phase scratch.
#[derive(Clone, Debug, Default)]
struct Phase {
    started: bool,
    searching: bool,
    search_done: bool,
    test_inflight: bool,
    local: Option<CandKey>,
    pending: usize,
    responded: bool,
    agg: Option<CandKey>,
    sel: Sel,
    sent_connect: Vec<bool>,
    connect_in: Vec<PortId>,
    flooded: bool,
    end_children: usize,
    end_sent: bool,
}

/// The GHS-style baseline node program. The designated root is vertex 0.
#[derive(Clone, Debug)]
pub struct GhsNode {
    id: u64,
    deg: usize,
    weights: Vec<u64>,
    root: usize,

    // Auxiliary BFS tree for barriers.
    bfs_seen: bool,
    bfs_parent: Option<PortId>,
    bfs_children: Vec<PortId>,
    close_round: u64,
    closed: bool,
    ready_children: usize,
    ready_sent: bool,

    nbr_id: Vec<u64>,

    frag_id: u64,
    frag_parent: Option<PortId>,
    frag_children: Vec<PortId>,

    /// Incident ports in tie-broken weight order; `ptr` is the test cursor.
    order: Vec<PortId>,
    ptr: usize,

    mst: Vec<bool>,
    p: Phase,
    /// Whether this vertex's fragment already merged in the current phase.
    /// Persists across the scratch reset at `PhaseEnd` so that a `Connect`
    /// from a slower fragment still gets its `NewFrag` answer.
    merged: bool,
    finished: bool,
}

impl GhsNode {
    /// Builds the program for one vertex; `root` designates the barrier-tree
    /// root (conventionally vertex 0).
    pub fn new(info: NodeInfo<'_>, root: usize) -> Self {
        let deg = info.ports.len();
        Self {
            id: info.id as u64,
            deg,
            weights: info.ports.iter().map(|p| p.weight).collect(),
            root,
            bfs_seen: false,
            bfs_parent: None,
            bfs_children: Vec::new(),
            close_round: 0,
            closed: false,
            ready_children: 0,
            ready_sent: false,
            nbr_id: vec![u64::MAX; deg],
            frag_id: info.id as u64,
            frag_parent: None,
            frag_children: Vec::new(),
            order: Vec::new(),
            ptr: 0,
            mst: vec![false; deg],
            p: Phase { sent_connect: vec![false; deg], ..Phase::default() },
            merged: false,
            finished: false,
        }
    }

    /// Which incident ports ended up in the MST.
    pub fn mst_ports(&self) -> Vec<PortId> {
        self.mst.iter().enumerate().filter(|(_, &m)| m).map(|(q, _)| q).collect()
    }

    fn is_frag_root(&self) -> bool {
        self.frag_id == self.id
    }

    fn fresh_phase(&mut self) -> Phase {
        Phase { sent_connect: vec![false; self.deg], ..Phase::default() }
    }

    /// Advance the test cursor: skip fragment-tree ports locally, fire a
    /// `Test` on the next candidate, or conclude the local search.
    fn step_search(&mut self, ctx: &mut RoundCtx<'_, GhsMsg>) {
        if self.p.test_inflight || self.p.search_done {
            return;
        }
        while self.ptr < self.order.len() {
            let q = self.order[self.ptr];
            let is_tree = Some(q) == self.frag_parent || self.frag_children.contains(&q);
            if is_tree {
                self.ptr += 1;
                continue;
            }
            ctx.send(q, GhsMsg::Test { frag: self.frag_id });
            self.p.test_inflight = true;
            return;
        }
        self.p.local = None;
        self.finish_search(ctx);
    }

    fn finish_search(&mut self, ctx: &mut RoundCtx<'_, GhsMsg>) {
        self.p.search_done = true;
        if let Some(k) = self.p.local {
            if self.p.agg.is_none_or(|a| k < a) {
                self.p.agg = Some(k);
                self.p.sel = Sel::Mine(self.order[self.ptr]);
            }
        }
        self.maybe_respond(ctx);
    }

    fn maybe_respond(&mut self, ctx: &mut RoundCtx<'_, GhsMsg>) {
        if !self.p.search_done || self.p.pending > 0 || self.p.responded {
            return;
        }
        self.p.responded = true;
        if self.is_frag_root() {
            match self.p.sel {
                Sel::None => {
                    // No outgoing edge: the fragment spans the whole graph.
                    self.finished = true;
                    for &q in &self.frag_children.clone() {
                        ctx.send(q, GhsMsg::AlgoDone);
                    }
                }
                Sel::Mine(q) => self.fire_connect(ctx, q),
                Sel::Child(c) => ctx.send(c, GhsMsg::MwoePath),
            }
        } else {
            let up = self.frag_parent.expect("non-root has a fragment parent");
            ctx.send(up, GhsMsg::MwoeUp { cand: self.p.agg });
        }
    }

    fn fire_connect(&mut self, ctx: &mut RoundCtx<'_, GhsMsg>, q: PortId) {
        self.mst[q] = true;
        self.p.sent_connect[q] = true;
        ctx.send(q, GhsMsg::Connect);
        self.check_mutual(ctx, q);
    }

    /// Both endpoints fired `Connect` over the same edge: the higher-id
    /// endpoint becomes the merged fragment's root (the classic GHS core).
    fn check_mutual(&mut self, ctx: &mut RoundCtx<'_, GhsMsg>, q: PortId) {
        if self.p.sent_connect[q] && self.p.connect_in.contains(&q) && self.id > self.nbr_id[q] {
            self.flood_init(ctx);
        }
    }

    fn flood_ports(&self, except: Option<PortId>) -> Vec<PortId> {
        let mut fwd: Vec<PortId> = Vec::new();
        let mut push = |p: PortId| {
            if Some(p) != except && !fwd.contains(&p) {
                fwd.push(p);
            }
        };
        if let Some(p) = self.frag_parent {
            push(p);
        }
        for &p in &self.frag_children {
            push(p);
        }
        for &p in &self.p.connect_in {
            push(p);
        }
        for (p, &sent) in self.p.sent_connect.iter().enumerate() {
            if sent {
                push(p);
            }
        }
        fwd
    }

    fn flood_init(&mut self, ctx: &mut RoundCtx<'_, GhsMsg>) {
        self.p.flooded = true;
        self.merged = true;
        let fwd = self.flood_ports(None);
        self.frag_id = self.id;
        self.frag_parent = None;
        self.frag_children = fwd.clone();
        for q in fwd {
            ctx.send(q, GhsMsg::NewFrag { id: self.id });
        }
    }

    fn flood_receive(&mut self, ctx: &mut RoundCtx<'_, GhsMsg>, port: PortId, id: u64) {
        debug_assert!(!self.p.flooded, "duplicate merge flood at {}", self.id);
        self.p.flooded = true;
        self.merged = true;
        let fwd = self.flood_ports(Some(port));
        self.frag_id = id;
        self.frag_parent = Some(port);
        self.frag_children = fwd.clone();
        for q in fwd {
            ctx.send(q, GhsMsg::NewFrag { id });
        }
    }

    fn maybe_phase_end(&mut self, ctx: &mut RoundCtx<'_, GhsMsg>) {
        if !self.p.flooded || self.p.end_sent || self.p.end_children != self.bfs_children.len() {
            return;
        }
        self.p.end_sent = true;
        if let Some(up) = self.bfs_parent {
            ctx.send(up, GhsMsg::PhaseEnd);
            self.p = self.fresh_phase();
        } else {
            self.start_phase(ctx);
        }
    }

    fn start_phase(&mut self, ctx: &mut RoundCtx<'_, GhsMsg>) {
        self.p = self.fresh_phase();
        self.p.started = true;
        self.merged = false;
        for &q in &self.bfs_children.clone() {
            ctx.send(q, GhsMsg::PhaseStart);
        }
        if self.is_frag_root() {
            self.begin_search(ctx);
        }
    }

    fn begin_search(&mut self, ctx: &mut RoundCtx<'_, GhsMsg>) {
        self.p.searching = true;
        self.p.pending = self.frag_children.len();
        for &q in &self.frag_children.clone() {
            ctx.send(q, GhsMsg::SearchGo);
        }
        self.step_search(ctx);
    }
}

impl NodeProgram for GhsNode {
    type Msg = GhsMsg;

    fn on_round(&mut self, ctx: &mut RoundCtx<'_, GhsMsg>) {
        let round = ctx.round();
        let inbox: Vec<(usize, GhsMsg)> = ctx.inbox().to_vec();
        for (port, msg) in inbox {
            match msg {
                GhsMsg::Hello { me } => self.nbr_id[port] = me,
                GhsMsg::Bfs => {
                    if !self.bfs_seen {
                        self.bfs_seen = true;
                        self.bfs_parent = Some(port);
                        self.close_round = round + 2;
                        ctx.send(port, GhsMsg::BfsChild);
                        for q in 0..self.deg {
                            if q != port {
                                ctx.send(q, GhsMsg::Bfs);
                            }
                        }
                    }
                }
                GhsMsg::BfsChild => self.bfs_children.push(port),
                GhsMsg::Ready => {
                    self.ready_children += 1;
                }
                GhsMsg::PhaseStart => {
                    self.p.started = true;
                    self.merged = false;
                    for &q in &self.bfs_children.clone() {
                        ctx.send(q, GhsMsg::PhaseStart);
                    }
                    if self.is_frag_root() {
                        self.begin_search(ctx);
                    }
                }
                GhsMsg::SearchGo => {
                    self.p.searching = true;
                    self.p.pending = self.frag_children.len();
                    for &q in &self.frag_children.clone() {
                        ctx.send(q, GhsMsg::SearchGo);
                    }
                    self.step_search(ctx);
                }
                GhsMsg::Test { frag } => {
                    ctx.send(port, GhsMsg::TestReply { same: frag == self.frag_id });
                }
                GhsMsg::TestReply { same } => {
                    self.p.test_inflight = false;
                    if same {
                        // Permanent reject: both sides stay merged forever.
                        self.ptr += 1;
                        self.step_search(ctx);
                    } else {
                        let q = self.order[self.ptr];
                        self.p.local = Some(CandKey::new(self.weights[q], self.id, self.nbr_id[q]));
                        self.finish_search(ctx);
                    }
                }
                GhsMsg::MwoeUp { cand } => {
                    if let Some(k) = cand {
                        if self.p.agg.is_none_or(|a| k < a) {
                            self.p.agg = Some(k);
                            self.p.sel = Sel::Child(port);
                        }
                    }
                    self.p.pending -= 1;
                    self.maybe_respond(ctx);
                }
                GhsMsg::MwoePath => match self.p.sel {
                    Sel::Mine(q) => self.fire_connect(ctx, q),
                    Sel::Child(c) => ctx.send(c, GhsMsg::MwoePath),
                    Sel::None => unreachable!("MwoePath into an empty subtree"),
                },
                GhsMsg::Connect => {
                    self.mst[port] = true;
                    if self.merged {
                        // Our merge flood already passed: adopt the pendant
                        // fragment directly so it still learns its new id.
                        self.frag_children.push(port);
                        ctx.send(port, GhsMsg::NewFrag { id: self.frag_id });
                    } else {
                        self.p.connect_in.push(port);
                        self.check_mutual(ctx, port);
                    }
                }
                GhsMsg::NewFrag { id } => self.flood_receive(ctx, port, id),
                GhsMsg::PhaseEnd => self.p.end_children += 1,
                GhsMsg::AlgoDone => {
                    self.finished = true;
                    for &q in &self.frag_children.clone() {
                        ctx.send(q, GhsMsg::AlgoDone);
                    }
                }
            }
        }

        // Kick-off and barrier-tree milestones.
        if round == 0 {
            for q in 0..self.deg {
                ctx.send(q, GhsMsg::Hello { me: self.id });
            }
            if self.id == self.root as u64 {
                self.bfs_seen = true;
                self.close_round = 2;
                if self.deg == 0 {
                    self.finished = true;
                    return;
                }
                for q in 0..self.deg {
                    ctx.send(q, GhsMsg::Bfs);
                }
            }
        }

        if round == 1 {
            // All Hello messages are in: fix the tie-broken test order.
            let mut order: Vec<PortId> = (0..self.deg).collect();
            order.sort_unstable_by_key(|&q| CandKey::new(self.weights[q], self.id, self.nbr_id[q]));
            self.order = order;
        }

        if self.bfs_seen && !self.closed && round == self.close_round && round > 0 {
            self.closed = true;
        }

        // Phase-end check runs every round: the merge flood, the barrier
        // count, and the initiator's own flood can each complete it.
        if !self.finished {
            self.maybe_phase_end(ctx);
        }
        if self.closed && !self.ready_sent && self.ready_children == self.bfs_children.len() {
            self.ready_sent = true;
            if let Some(up) = self.bfs_parent {
                ctx.send(up, GhsMsg::Ready);
            } else {
                self.start_phase(ctx);
            }
        }
    }

    fn is_done(&self) -> bool {
        self.finished
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_sim::{Network, RunConfig, Topology};
    use dmst_graphs::generators as gen;

    /// Regression test for the late-`Connect` deadlock: a fragment whose
    /// `Connect` lands after the receiver finished its phase must still be
    /// adopted. Dumps node states if the run stalls.
    #[test]
    fn grid_terminates_without_deadlock() {
        let g = gen::grid_2d(6, 6, &mut gen::WeightRng::new(17));
        let topo = Topology::new(g.num_nodes(), g.edges()).unwrap();
        let mut net = Network::new(topo, |info| GhsNode::new(info, 0));
        let cfg = RunConfig { max_rounds: 20_000, ..RunConfig::default() };
        if let Err(e) = net.run(&cfg) {
            for (v, nd) in net.nodes().iter().enumerate() {
                eprintln!(
                    "v{v}: frag={} done={} started={} searching={} sdone={} inflight={} pend={} resp={} flooded={} endkids={}/{} endsent={} ptr={}/{} sel={:?}",
                    nd.frag_id, nd.finished, nd.p.started, nd.p.searching, nd.p.search_done,
                    nd.p.test_inflight, nd.p.pending, nd.p.responded, nd.p.flooded,
                    nd.p.end_children, nd.bfs_children.len(), nd.p.end_sent,
                    nd.ptr, nd.order.len(), nd.p.sel
                );
            }
            panic!("deadlock: {e}");
        }
    }
}
