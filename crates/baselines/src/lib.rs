//! # dmst-baselines — the algorithms Elkin (PODC 2017) compares against
//!
//! Two baseline distributed MST algorithms over the same `congest_sim`
//! substrate, implementing the rows of the paper's §1.1 comparison:
//!
//! | algorithm | time | messages |
//! |---|---|---|
//! | [`run_ghs`] (GHS83/CT85 style) | `O((D + Diam(MST) + Δ) log n)` | `O(m + n log n)` |
//! | [`run_pipeline`] (GKP98/KP98) | `O(D + sqrt(n) log* n)` | `O(m + n^{3/2})` |
//! | `dmst_core::run_mst` (Elkin) | `O((D + sqrt(n)) log n)` | `O(m log n + n log n log* n)` |
//!
//! Both return a [`BaselineRun`] whose `edges` are checked by the callers'
//! tests to equal the canonical MST.
//!
//! ```
//! use dmst_baselines::{run_ghs, run_pipeline};
//! use dmst_graphs::{generators, mst};
//!
//! let g = generators::grid_2d(5, 5, &mut generators::WeightRng::new(3));
//! let truth = mst::kruskal(&g);
//! assert_eq!(run_ghs(&g)?.edges, truth.edges);
//! assert_eq!(run_pipeline(&g)?.edges, truth.edges);
//! # Ok::<(), dmst_baselines::BaselineError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ghs;
pub mod pipeline;

use std::error::Error;
use std::fmt;

use congest_sim::{Network, RunConfig, RunStats, SimError, Topology};
use dmst_core::{run_forest, ElkinConfig, RunError};
use dmst_graphs::{EdgeId, WeightedGraph};

pub use ghs::{GhsMsg, GhsNode};
pub use pipeline::{PipeMsg, PipeNode};

/// Errors from the baseline runners.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BaselineError {
    /// The input graph is not connected.
    Disconnected,
    /// The simulator rejected the execution.
    Sim(SimError),
    /// Inconsistent per-vertex outputs (algorithm bug).
    BadOutput(String),
}

impl fmt::Display for BaselineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BaselineError::Disconnected => write!(f, "input graph is not connected"),
            BaselineError::Sim(e) => write!(f, "simulation failed: {e}"),
            BaselineError::BadOutput(m) => write!(f, "inconsistent output: {m}"),
        }
    }
}

impl Error for BaselineError {}

impl From<SimError> for BaselineError {
    fn from(e: SimError) -> Self {
        BaselineError::Sim(e)
    }
}

impl From<RunError> for BaselineError {
    fn from(e: RunError) -> Self {
        match e {
            RunError::Disconnected => BaselineError::Disconnected,
            RunError::Sim(s) => BaselineError::Sim(s),
            other => BaselineError::BadOutput(other.to_string()),
        }
    }
}

/// Result of a baseline MST computation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BaselineRun {
    /// MST edge ids, sorted ascending.
    pub edges: Vec<EdgeId>,
    /// Total raw weight.
    pub total_weight: u128,
    /// Combined statistics (for [`run_pipeline`], the sum over both chained
    /// simulations).
    pub stats: RunStats,
}

/// Adds `b` into `a`: rounds/messages/words sum, peaks take the max, tags
/// merge.
pub fn combine_stats(a: &mut RunStats, b: &RunStats) {
    a.rounds += b.rounds;
    a.messages += b.messages;
    a.words += b.words;
    a.wire_words += b.wire_words;
    a.peak_round_messages = a.peak_round_messages.max(b.peak_round_messages);
    a.peak_edge_words = a.peak_edge_words.max(b.peak_edge_words);
    for (tag, t) in &b.by_tag {
        let e = a.by_tag.entry(tag).or_default();
        e.messages += t.messages;
        e.words += t.words;
        e.wire_words += t.wire_words;
    }
}

fn collect_edges<P, F>(
    g: &WeightedGraph,
    net: &Network<P>,
    ports_of: F,
) -> Result<Vec<EdgeId>, BaselineError>
where
    P: congest_sim::NodeProgram,
    F: Fn(&P) -> Vec<usize>,
{
    let topo = net.topology();
    let mut marks = vec![0u8; g.num_edges()];
    for (v, node) in net.nodes().iter().enumerate() {
        for p in ports_of(node) {
            marks[topo.ports(v)[p].edge] += 1;
        }
    }
    let mut edges = Vec::new();
    for (e, &m) in marks.iter().enumerate() {
        match m {
            0 => {}
            2 => edges.push(e),
            _ => {
                return Err(BaselineError::BadOutput(format!("edge {e} marked at {m} endpoint(s)")))
            }
        }
    }
    if g.num_nodes() > 0 && edges.len() != g.num_nodes() - 1 {
        return Err(BaselineError::BadOutput(format!(
            "{} MST edges for {} vertices",
            edges.len(),
            g.num_nodes()
        )));
    }
    Ok(edges)
}

fn sim_config(g: &WeightedGraph) -> RunConfig {
    RunConfig { max_rounds: 1_000_000 + 600 * g.num_nodes() as u64, ..RunConfig::default() }
}

/// Runs the GHS-style synchronous Borůvka baseline (root = vertex 0).
///
/// # Errors
///
/// [`BaselineError::Disconnected`] on disconnected input; simulator and
/// consistency failures otherwise.
pub fn run_ghs(g: &WeightedGraph) -> Result<BaselineRun, BaselineError> {
    if !g.is_connected() {
        return Err(BaselineError::Disconnected);
    }
    let topo = Topology::new(g.num_nodes(), g.edges())
        .map_err(|e| BaselineError::BadOutput(e.to_string()))?;
    let mut net = Network::new(topo, |info| GhsNode::new(info, 0));
    let stats = net.run(&sim_config(g))?;
    let edges = collect_edges(g, &net, GhsNode::mst_ports)?;
    let total_weight = g.total_weight(edges.iter().copied());
    Ok(BaselineRun { edges, total_weight, stats })
}

/// Runs the GKP98 Pipeline baseline: Controlled-GHS with `k = sqrt(n)`
/// (phase 1, via `dmst_core::run_forest`), then Pipeline-MST with cycle
/// filtering and a chosen-edge broadcast (phase 2). Costs are summed over
/// the two chained simulations.
///
/// # Errors
///
/// [`BaselineError::Disconnected`] on disconnected input; simulator and
/// consistency failures otherwise.
pub fn run_pipeline(g: &WeightedGraph) -> Result<BaselineRun, BaselineError> {
    let n = g.num_nodes() as u64;
    let k = dmst_core::util::isqrt(n).max(1);
    let cfg = ElkinConfig { k_override: Some(k), ..ElkinConfig::default() };
    let forest = run_forest(g, &cfg)?;

    let topo = Topology::new(g.num_nodes(), g.edges())
        .map_err(|e| BaselineError::BadOutput(e.to_string()))?;
    let mut net = Network::new(topo, |info| PipeNode::new(info, &forest));
    let phase2 = net.run(&sim_config(g))?;

    let edges = collect_edges(g, &net, PipeNode::mst_ports)?;
    let total_weight = g.total_weight(edges.iter().copied());
    let mut stats = forest.stats.clone();
    combine_stats(&mut stats, &phase2);
    Ok(BaselineRun { edges, total_weight, stats })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmst_graphs::{generators as gen, mst};

    fn check_both(g: &WeightedGraph, label: &str) {
        let truth = mst::kruskal(g);
        let ghs = run_ghs(g).unwrap_or_else(|e| panic!("ghs {label}: {e}"));
        assert_eq!(ghs.edges, truth.edges, "ghs {label}");
        let pipe = run_pipeline(g).unwrap_or_else(|e| panic!("pipeline {label}: {e}"));
        assert_eq!(pipe.edges, truth.edges, "pipeline {label}");
    }

    #[test]
    fn baselines_across_families() {
        let r = &mut gen::WeightRng::new(17);
        check_both(&gen::path(30, r), "path");
        check_both(&gen::cycle(25, r), "cycle");
        check_both(&gen::complete(16, r), "complete");
        check_both(&gen::grid_2d(6, 6, r), "grid");
        check_both(&gen::random_connected(60, 150, r), "random");
        check_both(&gen::path_of_cliques(6, 4, r), "cliquepath");
        check_both(&gen::star(20, r), "star");
        check_both(&gen::path(2, r), "n2");
    }

    #[test]
    fn ghs_message_complexity_stays_near_linear() {
        let r = &mut gen::WeightRng::new(23);
        let g = gen::random_connected(128, 512, r);
        let run = run_ghs(&g).unwrap();
        let m = g.num_edges() as u64;
        let n = g.num_nodes() as u64;
        let bound = 16 * (m + n * 7); // generous constant on O(m + n log n)
        assert!(run.stats.messages < bound, "{} >= {bound}", run.stats.messages);
    }

    #[test]
    fn disconnected_rejected() {
        let g = WeightedGraph::new(4, vec![(0, 1, 1), (2, 3, 1)]).unwrap();
        assert_eq!(run_ghs(&g), Err(BaselineError::Disconnected));
        assert!(matches!(run_pipeline(&g), Err(BaselineError::Disconnected)));
    }

    #[test]
    fn combine_stats_sums_and_merges() {
        let mut a = RunStats { rounds: 5, messages: 10, words: 20, ..Default::default() };
        a.by_tag.insert("x", congest_sim::TagStats { messages: 10, words: 20, wire_words: 20 });
        let mut b = RunStats { rounds: 7, messages: 1, words: 2, ..Default::default() };
        b.by_tag.insert("x", congest_sim::TagStats { messages: 1, words: 2, wire_words: 2 });
        b.by_tag.insert("y", congest_sim::TagStats { messages: 0, words: 0, wire_words: 0 });
        combine_stats(&mut a, &b);
        assert_eq!(a.rounds, 12);
        assert_eq!(a.messages, 11);
        assert_eq!(a.by_tag["x"].messages, 11);
        assert!(a.by_tag.contains_key("y"));
    }
}
