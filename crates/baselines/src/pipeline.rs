//! The GKP98/KP98 Pipeline baseline: the message-heavy, nearly
//! time-optimal predecessor the paper improves on (§1.2).
//!
//! Phase 1 (Controlled-GHS with `k = sqrt(n)`) is executed by
//! [`dmst_core::run_forest`]; this module implements Phase 2, **Pipeline
//! MST**: all inter-fragment candidate edges stream up the BFS tree in
//! globally nondecreasing key order, every intermediate vertex discarding
//! edges whose endpoints its local union–find already connects (such an
//! edge is the heaviest on a cycle of lighter forwarded edges, so it cannot
//! be in the MST — the classic cycle filter). The BFS root runs the final
//! Kruskal over fragments and floods the chosen `O(sqrt(n))` edges to the
//! whole graph, which is what drives the message complexity to
//! `Θ(m + n^{3/2})` and motivates Elkin's Borůvka-on-top replacement.
//!
//! The two phases run as chained simulations over the same topology (the
//! second starts from the first's final state); the reported cost is the
//! sum — see DESIGN.md.

use std::collections::{BTreeMap, VecDeque};

use congest_sim::{Message, NodeInfo, NodeProgram, PortId, RoundCtx, WireReader, WireWriter};

use dmst_core::{CandKey, ForestRun};

/// Wire protocol of Pipeline MST (phase 2).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PipeMsg {
    /// One-time `(fragment id, vertex id)` exchange.
    Hello {
        /// Sender's base fragment.
        frag: u64,
        /// Sender's vertex id.
        me: u64,
    },
    /// A candidate inter-fragment edge moving up the BFS tree.
    Cand {
        /// Tie-broken edge key (identifies the edge).
        key: CandKey,
        /// Fragment on the `lo` side.
        src: u64,
        /// Fragment on the `hi` side.
        dst: u64,
    },
    /// The sender's subtree has no further candidates.
    PipeDone,
    /// A chosen MST edge, flooded down the BFS tree.
    Chosen {
        /// The edge's key; endpoints recognise and mark it.
        key: CandKey,
    },
    /// All chosen edges announced; terminate.
    DoneAll,
}

impl Message for PipeMsg {
    fn words(&self) -> u32 {
        match self {
            PipeMsg::Hello { .. } => 2,
            PipeMsg::Cand { .. } => 5,
            PipeMsg::PipeDone | PipeMsg::DoneAll => 1,
            PipeMsg::Chosen { .. } => 3,
        }
    }

    fn tag(&self) -> &'static str {
        match self {
            PipeMsg::Hello { .. } => "pipe:hello",
            PipeMsg::Cand { .. } | PipeMsg::PipeDone => "pipe:upcast",
            PipeMsg::Chosen { .. } | PipeMsg::DoneAll => "pipe:announce",
        }
    }

    fn encode(&self, w: &mut WireWriter<'_>) {
        match self {
            PipeMsg::Hello { frag, me } => {
                w.tag(0);
                w.pack(*frag); // fragment ids are vertex ids < n
                w.word(*me);
            }
            PipeMsg::Cand { key, src, dst } => {
                w.tag(1);
                w.pack(*src);
                w.word(key.weight);
                w.word(key.lo);
                w.word(key.hi);
                w.word(*dst);
            }
            PipeMsg::PipeDone => w.tag(2),
            PipeMsg::Chosen { key } => {
                w.tag(3);
                w.pack(key.lo);
                w.word(key.weight);
                w.word(key.hi);
            }
            PipeMsg::DoneAll => w.tag(4),
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Self {
        match r.tag() {
            0 => PipeMsg::Hello { frag: r.packed(), me: r.word() },
            1 => {
                let src = r.packed();
                let key = CandKey { weight: r.word(), lo: r.word(), hi: r.word() };
                PipeMsg::Cand { key, src, dst: r.word() }
            }
            2 => PipeMsg::PipeDone,
            3 => {
                let lo = r.packed();
                PipeMsg::Chosen { key: CandKey { weight: r.word(), lo, hi: r.word() } }
            }
            4 => PipeMsg::DoneAll,
            other => unreachable!("unknown PipeMsg wire tag {other}"),
        }
    }
}

/// Tiny union–find over arbitrary `u64` labels (fragment ids), used for the
/// local cycle filter at every vertex and the final Kruskal at the root.
#[derive(Clone, Debug, Default)]
struct LabelUf {
    parent: BTreeMap<u64, u64>,
}

impl LabelUf {
    fn find(&mut self, x: u64) -> u64 {
        let p = *self.parent.entry(x).or_insert(x);
        if p == x {
            return x;
        }
        let r = self.find(p);
        self.parent.insert(x, r);
        r
    }

    /// Returns `true` if the labels were in different sets.
    fn union(&mut self, a: u64, b: u64) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        self.parent.insert(ra.max(rb), ra.min(rb));
        true
    }
}

/// Phase 2 node, preloaded with the Phase 1 outcome (base fragment, BFS
/// tree, fragment-tree MST marks).
#[derive(Clone, Debug)]
pub struct PipeNode {
    id: u64,
    deg: usize,
    weights: Vec<u64>,

    frag: u64,
    bfs_parent: Option<PortId>,
    bfs_children: Vec<PortId>,

    nbr_id: Vec<u64>,
    nbr_frag: Vec<u64>,

    /// Candidates not yet forwarded, keyed for in-order release.
    pending: BTreeMap<CandKey, (u64, u64)>,
    /// Cycle filter.
    uf: LabelUf,
    /// Largest key received from each BFS child (children send in
    /// nondecreasing order, so this bounds everything still to come).
    last_from: Vec<Option<CandKey>>,
    child_done: Vec<bool>,
    enumerated: bool,
    done_sent: bool,

    /// Root only: accepted inter-fragment MST edges.
    chosen: Vec<CandKey>,
    /// Downcast queues (per BFS child) for `Chosen`/`DoneAll`.
    down: Vec<VecDeque<PipeMsg>>,
    announced: bool,

    mst: Vec<bool>,
    finished: bool,
}

impl PipeNode {
    /// Builds the phase 2 program for vertex `info.id` from the phase 1
    /// outcome. `forest` supplies the base fragment and BFS structure.
    pub fn new(info: NodeInfo<'_>, forest: &ForestRun) -> Self {
        let v = info.id;
        let deg = info.ports.len();
        let bfs_parent = forest.bfs_parent_of[v].map(|pv| {
            info.ports.iter().position(|p| p.neighbor == pv).expect("parent is a neighbor")
        });
        let bfs_children: Vec<PortId> = info
            .ports
            .iter()
            .enumerate()
            .filter(|(_, p)| forest.bfs_parent_of[p.neighbor] == Some(v))
            .map(|(q, _)| q)
            .collect();
        // Fragment-tree edges are already MST edges (phase 1 output).
        let mut mst = vec![false; deg];
        if let Some(pv) = forest.parent_of[v] {
            let q = info.ports.iter().position(|p| p.neighbor == pv).expect("tree parent adjacent");
            mst[q] = true;
        }
        for (q, p) in info.ports.iter().enumerate() {
            if forest.parent_of[p.neighbor] == Some(v) {
                mst[q] = true;
            }
        }
        let nchild = bfs_children.len();
        Self {
            id: v as u64,
            deg,
            weights: info.ports.iter().map(|p| p.weight).collect(),
            frag: forest.fragment_of[v],
            bfs_parent,
            bfs_children,
            nbr_id: vec![u64::MAX; deg],
            nbr_frag: vec![u64::MAX; deg],
            pending: BTreeMap::new(),
            uf: LabelUf::default(),
            last_from: vec![None; nchild],
            child_done: vec![false; nchild],
            enumerated: false,
            done_sent: false,
            chosen: Vec::new(),
            down: vec![VecDeque::new(); nchild],
            announced: false,
            mst,
            finished: false,
        }
    }

    /// Which incident ports ended up in the MST (union of both phases).
    pub fn mst_ports(&self) -> Vec<PortId> {
        self.mst.iter().enumerate().filter(|(_, &m)| m).map(|(q, _)| q).collect()
    }

    fn child_index(&self, port: PortId) -> usize {
        self.bfs_children.iter().position(|&q| q == port).expect("message from a BFS child")
    }

    /// Gate for in-order release: every child has either finished or already
    /// sent something `>= key` (children emit in nondecreasing order).
    fn may_release(&self, key: CandKey) -> bool {
        self.child_done
            .iter()
            .zip(&self.last_from)
            .all(|(&done, last)| done || last.is_some_and(|l| l >= key))
    }

    /// Mark the endpoint ports of a chosen edge if we are one of them.
    fn mark_if_mine(&mut self, key: CandKey) {
        if self.id != key.lo && self.id != key.hi {
            return;
        }
        let other = if self.id == key.lo { key.hi } else { key.lo };
        for q in 0..self.deg {
            if self.nbr_id[q] == other && self.weights[q] == key.weight {
                self.mst[q] = true;
            }
        }
    }
}

impl NodeProgram for PipeNode {
    type Msg = PipeMsg;

    fn on_round(&mut self, ctx: &mut RoundCtx<'_, PipeMsg>) {
        let inbox: Vec<(usize, PipeMsg)> = ctx.inbox().to_vec();
        for (port, msg) in inbox {
            match msg {
                PipeMsg::Hello { frag, me } => {
                    self.nbr_frag[port] = frag;
                    self.nbr_id[port] = me;
                }
                PipeMsg::Cand { key, src, dst } => {
                    let idx = self.child_index(port);
                    debug_assert!(self.last_from[idx].is_none_or(|l| l <= key));
                    self.last_from[idx] = Some(key);
                    self.pending.insert(key, (src, dst));
                }
                PipeMsg::PipeDone => {
                    let idx = self.child_index(port);
                    self.child_done[idx] = true;
                }
                PipeMsg::Chosen { key } => {
                    self.mark_if_mine(key);
                    for q in self.down.iter_mut() {
                        q.push_back(PipeMsg::Chosen { key });
                    }
                }
                PipeMsg::DoneAll => {
                    for q in self.down.iter_mut() {
                        q.push_back(PipeMsg::DoneAll);
                    }
                    self.announced = true;
                }
            }
        }

        let round = ctx.round();
        if round == 0 {
            for q in 0..self.deg {
                ctx.send(q, PipeMsg::Hello { frag: self.frag, me: self.id });
            }
        }
        if round == 1 && !self.enumerated {
            // Hellos are in: enumerate my incident inter-fragment edges.
            // Each edge is emitted by its `lo` endpoint only.
            self.enumerated = true;
            for q in 0..self.deg {
                if self.nbr_frag[q] != self.frag && self.id < self.nbr_id[q] {
                    let key = CandKey::new(self.weights[q], self.id, self.nbr_id[q]);
                    self.pending.insert(key, (self.frag, self.nbr_frag[q]));
                }
            }
        }

        // In-order filtered release toward the BFS root (one candidate per
        // round per edge: b = 1 unit messages; filtering is free).
        if self.enumerated && !self.done_sent {
            while let Some((&key, &(src, dst))) = self.pending.iter().next() {
                if !self.may_release(key) {
                    break;
                }
                self.pending.remove(&key);
                if !self.uf.union(src, dst) {
                    continue; // heaviest on a cycle: discard, try the next
                }
                if let Some(up) = self.bfs_parent {
                    ctx.send(up, PipeMsg::Cand { key, src, dst });
                } else {
                    self.chosen.push(key);
                    self.mark_if_mine(key);
                    continue; // the root can absorb several per round
                }
                break; // one message per round per edge
            }

            // Subtree exhausted?
            if self.pending.is_empty() && self.child_done.iter().all(|&d| d) {
                self.done_sent = true;
                if let Some(up) = self.bfs_parent {
                    ctx.send(up, PipeMsg::PipeDone);
                } else {
                    // Root: announce the chosen edges to everyone.
                    self.announced = true;
                    for q in self.down.iter_mut() {
                        for &key in &self.chosen {
                            q.push_back(PipeMsg::Chosen { key });
                        }
                        q.push_back(PipeMsg::DoneAll);
                    }
                }
            }
        }

        // Flush the downcast queues (one message per round per edge).
        for i in 0..self.down.len() {
            if let Some(m) = self.down[i].pop_front() {
                ctx.send(self.bfs_children[i], m);
            }
        }

        if self.announced && self.down.iter().all(|q| q.is_empty()) {
            self.finished = true;
        }
    }

    fn is_done(&self) -> bool {
        self.finished
    }
}
