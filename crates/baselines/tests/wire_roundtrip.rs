//! Wire-format round-trip properties for the baseline protocols
//! ([`GhsMsg`], [`PipeMsg`]): `decode(encode(m)) == m` and encoded length
//! == declared `words()` for every variant — the same length contract
//! `crates/core/tests/wire_roundtrip.rs` pins for the Elkin protocol.
//!
//! Domain notes: `GhsMsg::MwoeUp` and `PipeMsg::Chosen` pack `key.lo`
//! (a vertex id) into the tag word, so the generators build keys with at
//! least one endpoint `< 2^32` — `CandKey::new` normalizes `lo` to the
//! smaller endpoint, which is then packable. Weights carry full words.

use congest_sim::{Message, WireReader, WireWriter};
use dmst_baselines::{GhsMsg, PipeMsg};
use dmst_core::CandKey;
use proptest::prelude::*;

/// Encode, check the length contract, decode, check identity and consumed
/// span (the executor ring advances by exactly this much).
fn check<M: Message + PartialEq + std::fmt::Debug>(m: &M) -> Result<(), TestCaseError> {
    let mut buf = Vec::new();
    let mut w = WireWriter::new(&mut buf);
    m.encode(&mut w);
    prop_assert_eq!(w.len(), m.words() as usize, "encoded length != words() for {:?}", m);
    let mut r = WireReader::new(&buf);
    let back = M::decode(&mut r);
    prop_assert_eq!(&back, m);
    prop_assert_eq!(r.consumed(), buf.len(), "decode consumed a different span for {:?}", m);
    Ok(())
}

fn build_ghs(sel: usize, small: u32, big: u64, big2: u64, flag: bool) -> GhsMsg {
    let id = u64::from(small);
    // `lo = min(id, big2) <= id < 2^32`: packable.
    let key = CandKey::new(big, id, big2);
    match sel {
        0 => GhsMsg::Hello { me: id },
        1 => GhsMsg::Bfs,
        2 => GhsMsg::BfsChild,
        3 => GhsMsg::Ready,
        4 => GhsMsg::PhaseStart,
        5 => GhsMsg::SearchGo,
        6 => GhsMsg::Test { frag: id },
        7 => GhsMsg::TestReply { same: flag },
        8 => GhsMsg::MwoeUp { cand: flag.then_some(key) },
        9 => GhsMsg::MwoePath,
        10 => GhsMsg::Connect,
        11 => GhsMsg::NewFrag { id },
        12 => GhsMsg::PhaseEnd,
        _ => GhsMsg::AlgoDone,
    }
}

fn build_pipe(sel: usize, small: u32, big: u64, big2: u64, big3: u64) -> PipeMsg {
    let id = u64::from(small);
    match sel {
        0 => PipeMsg::Hello { frag: id, me: big },
        // `Cand` stores the whole key in full words: no packing constraint.
        1 => PipeMsg::Cand { key: CandKey::new(big, big2, big3), src: id, dst: big2 },
        2 => PipeMsg::PipeDone,
        // `Chosen` packs `key.lo`: keep one endpoint small.
        3 => PipeMsg::Chosen { key: CandKey::new(big, id, big3) },
        _ => PipeMsg::DoneAll,
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 512, ..ProptestConfig::default() })]

    #[test]
    fn ghs_roundtrip(
        sel in 0usize..14,
        small in any::<u32>(),
        big in any::<u64>(),
        big2 in any::<u64>(),
        flag in any::<bool>(),
    ) {
        check(&build_ghs(sel, small, big, big2, flag))?;
    }

    #[test]
    fn pipe_roundtrip(
        sel in 0usize..5,
        small in any::<u32>(),
        big in any::<u64>(),
        big2 in any::<u64>(),
        big3 in any::<u64>(),
    ) {
        check(&build_pipe(sel, small, big, big2, big3))?;
    }

    /// Mixed back-to-back encoding into one unframed buffer decodes
    /// sequentially (ring behavior).
    #[test]
    fn ghs_ring_roundtrip(
        sels in proptest::collection::vec(0usize..14, 1..8),
        small in any::<u32>(),
        big in any::<u64>(),
        big2 in any::<u64>(),
        flag in any::<bool>(),
    ) {
        let msgs: Vec<GhsMsg> =
            sels.iter().map(|&s| build_ghs(s, small, big, big2, flag)).collect();
        let mut ring = Vec::new();
        for m in &msgs {
            let mut w = WireWriter::new(&mut ring);
            m.encode(&mut w);
        }
        let mut head = 0usize;
        for m in &msgs {
            let mut r = WireReader::new(&ring[head..]);
            prop_assert_eq!(&GhsMsg::decode(&mut r), m);
            head += r.consumed();
        }
        prop_assert_eq!(head, ring.len());
    }
}
