//! Cross-crate integration tests: every distributed algorithm in the
//! workspace must produce the canonical MST on every graph family, under
//! every configuration knob. All checks go through the shared
//! `dmst::testkit` conformance harness.

use dmst::core::ElkinConfig;
use dmst::graphs::{generators as gen, WeightedGraph};
use dmst::testkit::{self, Algorithm};

#[test]
fn all_algorithms_all_families() {
    let r = &mut gen::WeightRng::new(0xC0FFEE);
    for (label, g) in testkit::family_matrix(r) {
        testkit::assert_all_match(&g, label);
    }
}

#[test]
fn equal_weights_everywhere() {
    // All-equal weights stress the tie-breaking path end to end.
    let edges = gen::grid_2d(5, 7, &mut gen::WeightRng::new(1))
        .edges()
        .iter()
        .map(|&(u, v, _)| (u, v, 42))
        .collect();
    let g = WeightedGraph::new(35, edges).unwrap();
    testkit::assert_all_match(&g, "grid-equal-weights");
}

#[test]
fn extreme_weights() {
    // Huge weights must not overflow any aggregation.
    let edges = gen::cycle(20, &mut gen::WeightRng::new(2))
        .edges()
        .iter()
        .enumerate()
        .map(|(i, &(u, v, _))| (u, v, u64::MAX - i as u64))
        .collect();
    let g = WeightedGraph::new(20, edges).unwrap();
    testkit::assert_all_match(&g, "cycle-huge-weights");
}

#[test]
fn many_seeds_random_graphs() {
    for seed in 0..12u64 {
        let r = &mut gen::WeightRng::new(seed);
        let n = 24 + (seed as usize * 7) % 60;
        let g = gen::random_connected(n, 2 * n, r);
        testkit::assert_all_match(&g, &format!("random seed={seed} n={n}"));
    }
}

#[test]
fn elkin_every_knob() {
    let r = &mut gen::WeightRng::new(9);
    let g = gen::random_connected(64, 160, r);
    let cfgs = testkit::config_matrix(g.num_nodes());
    assert!(cfgs.len() >= 100, "knob matrix unexpectedly small: {}", cfgs.len());
    for cfg in cfgs {
        let algo = Algorithm::Elkin(cfg);
        testkit::assert_matches_oracle(&algo, &g, &format!("{cfg:?}"));
    }
}

#[test]
fn forest_invariants_across_k() {
    let r = &mut gen::WeightRng::new(21);
    let g = gen::random_connected(80, 240, r);
    for k in [1u64, 2, 8, 32, 200] {
        testkit::assert_forest_invariants(&g, k, &format!("random-80 k={k}"));
    }
}

#[test]
fn determinism_end_to_end() {
    let g = gen::torus_2d(6, 6, &mut gen::WeightRng::new(4));
    let a = dmst::core::run_mst(&g, &ElkinConfig::default()).unwrap();
    let b = dmst::core::run_mst(&g, &ElkinConfig::default()).unwrap();
    assert_eq!(a.edges, b.edges);
    assert_eq!(a.stats, b.stats, "two identical runs must have identical statistics");
}

#[test]
fn disconnected_and_invalid_inputs() {
    let g = WeightedGraph::new(4, vec![(0, 1, 1), (2, 3, 1)]).unwrap();
    for algo in Algorithm::all() {
        assert!(algo.run(&g).is_err(), "{} accepted a disconnected graph", algo.name());
    }
    let g2 = gen::path(3, &mut gen::WeightRng::new(0));
    let cfg = ElkinConfig { root: 99, ..ElkinConfig::default() };
    assert!(Algorithm::Elkin(cfg).run(&g2).is_err());
}
