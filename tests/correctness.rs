//! Cross-crate integration tests: every distributed algorithm in the
//! workspace must produce the canonical MST on every graph family, under
//! every configuration knob.

use dmst::baselines::{run_ghs, run_pipeline};
use dmst::core::{run_mst, ElkinConfig, MergeControl};
use dmst::graphs::{generators as gen, mst, WeightedGraph};

/// All three distributed algorithms against Kruskal.
fn check_all(g: &WeightedGraph, label: &str) {
    let truth = mst::kruskal(g);
    let elkin = run_mst(g, &ElkinConfig::default()).unwrap_or_else(|e| panic!("elkin {label}: {e}"));
    assert_eq!(elkin.edges, truth.edges, "elkin wrong on {label}");
    assert_eq!(elkin.total_weight, truth.total_weight);
    let ghs = run_ghs(g).unwrap_or_else(|e| panic!("ghs {label}: {e}"));
    assert_eq!(ghs.edges, truth.edges, "ghs wrong on {label}");
    let pipe = run_pipeline(g).unwrap_or_else(|e| panic!("pipeline {label}: {e}"));
    assert_eq!(pipe.edges, truth.edges, "pipeline wrong on {label}");
}

#[test]
fn all_algorithms_all_families() {
    let r = &mut gen::WeightRng::new(0xC0FFEE);
    let cases: Vec<(&str, WeightedGraph)> = vec![
        ("path", gen::path(48, r)),
        ("cycle", gen::cycle(47, r)),
        ("complete", gen::complete(20, r)),
        ("star", gen::star(33, r)),
        ("binary-tree", gen::binary_tree(40, r)),
        ("random-tree", gen::random_tree(50, r)),
        ("grid", gen::grid_2d(6, 8, r)),
        ("torus", gen::torus_2d(5, 8, r)),
        ("hypercube", gen::hypercube(5, r)),
        ("circulant", gen::circulant(40, &[9, 17], r)),
        ("random", gen::random_connected(72, 180, r)),
        ("barbell", gen::barbell(7, 9, r)),
        ("lollipop", gen::lollipop(9, 12, r)),
        ("cliquepath", gen::path_of_cliques(9, 4, r)),
        ("caterpillar", gen::caterpillar(10, 3, r)),
        ("broom", gen::broom(4, 7, r)),
        ("snake", gen::snake_torus(6, 6, r)),
    ];
    for (label, g) in cases {
        check_all(&g, label);
    }
}

#[test]
fn equal_weights_everywhere() {
    // All-equal weights stress the tie-breaking path end to end.
    let edges = gen::grid_2d(5, 7, &mut gen::WeightRng::new(1))
        .edges()
        .iter()
        .map(|&(u, v, _)| (u, v, 42))
        .collect();
    let g = WeightedGraph::new(35, edges).unwrap();
    check_all(&g, "grid-equal-weights");
}

#[test]
fn extreme_weights() {
    // Huge weights must not overflow any aggregation.
    let edges = gen::cycle(20, &mut gen::WeightRng::new(2))
        .edges()
        .iter()
        .enumerate()
        .map(|(i, &(u, v, _))| (u, v, u64::MAX - i as u64))
        .collect();
    let g = WeightedGraph::new(20, edges).unwrap();
    check_all(&g, "cycle-huge-weights");
}

#[test]
fn many_seeds_random_graphs() {
    for seed in 0..12u64 {
        let r = &mut gen::WeightRng::new(seed);
        let n = 24 + (seed as usize * 7) % 60;
        let g = gen::random_connected(n, 2 * n, r);
        check_all(&g, &format!("random seed={seed} n={n}"));
    }
}

#[test]
fn elkin_every_knob() {
    let r = &mut gen::WeightRng::new(9);
    let g = gen::random_connected(64, 160, r);
    let truth = mst::kruskal(&g);
    for b in [1u32, 2, 3, 8] {
        for k in [None, Some(1), Some(5), Some(16), Some(200)] {
            for mode in [MergeControl::Matched, MergeControl::Uncontrolled] {
                for root in [0usize, 17, 63] {
                    let cfg = ElkinConfig {
                        bandwidth: b,
                        k_override: k,
                        root,
                        merge_control: mode,
                        ..ElkinConfig::default()
                    };
                    let run = run_mst(&g, &cfg).unwrap_or_else(|e| {
                        panic!("b={b} k={k:?} mode={mode:?} root={root}: {e}")
                    });
                    assert_eq!(
                        run.edges, truth.edges,
                        "wrong MST at b={b} k={k:?} mode={mode:?} root={root}"
                    );
                }
            }
        }
    }
}

#[test]
fn determinism_end_to_end() {
    let g = gen::torus_2d(6, 6, &mut gen::WeightRng::new(4));
    let a = run_mst(&g, &ElkinConfig::default()).unwrap();
    let b = run_mst(&g, &ElkinConfig::default()).unwrap();
    assert_eq!(a.edges, b.edges);
    assert_eq!(a.stats, b.stats, "two identical runs must have identical statistics");
}

#[test]
fn disconnected_and_invalid_inputs() {
    let g = WeightedGraph::new(4, vec![(0, 1, 1), (2, 3, 1)]).unwrap();
    assert!(run_mst(&g, &ElkinConfig::default()).is_err());
    let g2 = gen::path(3, &mut gen::WeightRng::new(0));
    let cfg = ElkinConfig { root: 99, ..ElkinConfig::default() };
    assert!(run_mst(&g2, &cfg).is_err());
}
