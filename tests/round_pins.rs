//! Pinned round/message budgets for the T1 comparison topologies: perf
//! regressions now fail `cargo test` instead of silently drifting in the
//! EXPERIMENTS.md tables.
//!
//! Every pin is a golden count from a healthy release run (the simulator
//! is deterministic, so debug/release measure identically) with the
//! standard 10% slack of [`dmst::testkit::RoundBudget`]. A measured count
//! above `pin * 1.10` is a regression; far below `pin / 2.2` the pin is
//! stale and must be consciously re-measured (see EXPERIMENTS.md for the
//! snapshot these numbers come from).
//!
//! The n = 256 trio runs in the default suite; the n = 2304 cliquepath
//! ratio check (the adaptive-scheduling acceptance bar) is `#[ignore]`d
//! for debug runs and executed in release by CI alongside
//! `cargo bench --bench exp_t1_comparison -- --smoke`.

use dmst::core::ElkinConfig;
use dmst::graphs::{generators as gen, WeightedGraph};
use dmst::testkit::{assert_round_budget, Algorithm, RoundBudget};
use dmst_bench::standard_trio;

/// The T1 workload trio at n = 256 — the very graphs the
/// `exp_t1_comparison` tables measure (shared generator, same seed).
fn trio_256() -> Vec<(String, WeightedGraph)> {
    let trio = standard_trio(256, 0x51);
    assert_eq!(trio.len(), 4, "pins below are ordered for the 4-workload trio");
    trio.into_iter().map(|w| (w.name, w.graph)).collect()
}

#[test]
fn elkin_fixed_t1_trio_pins() {
    let pins = [
        RoundBudget::new(1098, 23954),
        RoundBudget::new(992, 31976),
        RoundBudget::new(3515, 37690),
        RoundBudget::new(1022, 23798),
    ];
    let algo = Algorithm::Elkin(ElkinConfig::fixed());
    for ((label, g), pin) in trio_256().iter().zip(&pins) {
        assert_round_budget(&algo, g, label, pin);
    }
}

#[test]
fn elkin_adaptive_t1_trio_pins() {
    let pins = [
        RoundBudget::new(1007, 24710),
        RoundBudget::new(875, 34217),
        RoundBudget::new(1382, 30080),
        RoundBudget::new(916, 24548),
    ];
    let algo = Algorithm::Elkin(ElkinConfig::adaptive());
    for ((label, g), pin) in trio_256().iter().zip(&pins) {
        assert_round_budget(&algo, g, label, pin);
    }
}

#[test]
fn baseline_t1_trio_pins() {
    let ghs_pins = [
        RoundBudget::new(406, 10921),
        RoundBudget::new(228, 15237),
        RoundBudget::new(1319, 14921),
        RoundBudget::new(1064, 5884),
    ];
    // The Pipeline baseline's phase 1 reuses `run_forest`, so it also
    // rides the (now default) adaptive Stage B schedule.
    let pipe_pins = [
        RoundBudget::new(907, 24294),
        RoundBudget::new(817, 32419),
        RoundBudget::new(1115, 27278),
        RoundBudget::new(901, 27641),
    ];
    for ((label, g), (ghs, pipe)) in trio_256().iter().zip(ghs_pins.iter().zip(&pipe_pins)) {
        assert_round_budget(&Algorithm::Ghs, g, label, ghs);
        assert_round_budget(&Algorithm::Pipeline, g, label, pipe);
    }
}

/// The tentpole guard at a mid size: on the high-diameter cliquepath the
/// adaptive schedule must keep holding its ~3.2x win over Fixed (pinned
/// absolutely so the test costs one adaptive run, not a slow fixed one).
#[test]
fn elkin_adaptive_cliquepath_1024_pin() {
    let r = &mut gen::WeightRng::new(0x51);
    let g = gen::path_of_cliques(128, 8, r);
    assert_round_budget(
        &Algorithm::Elkin(ElkinConfig::adaptive()),
        &g,
        "cliquepath 128x8",
        &RoundBudget::new(4392, 170_187),
    );
}

/// The acceptance bar of the adaptive-scheduling change, verbatim: T1
/// cliquepath n = 2304 total rounds under `ScheduleMode::Adaptive` is at
/// most 1/3 of the Fixed baseline. Release-only (CI runs it with
/// `--include-ignored`); the Fixed run alone is ~51k rounds.
#[test]
#[ignore = "release-scale: run with --release -- --include-ignored"]
fn adaptive_cliquepath_2304_is_three_times_faster() {
    let g = standard_trio(2304, 0x51)
        .into_iter()
        .find(|w| w.name.starts_with("cliquepath"))
        .expect("trio contains a cliquepath")
        .graph;
    let fixed = Algorithm::Elkin(ElkinConfig::fixed());
    let adaptive = Algorithm::Elkin(ElkinConfig::adaptive());
    let (fe, _, fs) = fixed.run_stats(&g).expect("fixed run");
    let (ae, _, als) = adaptive.run_stats(&g).expect("adaptive run");
    assert_eq!(fe, ae, "schedule mode changed the MST");
    assert!(
        3 * als.rounds <= fs.rounds,
        "adaptive ({}) must be <= 1/3 of fixed ({}) on the n=2304 cliquepath",
        als.rounds,
        fs.rounds
    );
}
