//! Sequential-vs-sharded executor equivalence on the real algorithm: the
//! full four-stage run over the T1 trio must produce bit-identical
//! [`RunStats`](dmst::congest::RunStats) — rounds, messages, per-tag
//! tables, and the `rounds_by_stage` census — and the same MST, for every
//! shard count. Together with the absolute pins of `tests/round_pins.rs`
//! this locks the incremental stage census to the legacy per-round scan.

use dmst::core::{run_mst, ElkinConfig};
use dmst_bench::standard_trio;

#[test]
fn t1_trio_stats_are_shard_invariant() {
    for w in standard_trio(256, 0x51) {
        let base_cfg = ElkinConfig::default();
        let baseline = run_mst(&w.graph, &base_cfg).expect("sequential run");
        let total: u64 = baseline.stats.rounds_by_stage.values().sum();
        assert_eq!(
            total, baseline.stats.rounds,
            "{}: stage census must partition the rounds",
            w.name
        );
        for shards in [0, 2, 4] {
            let cfg = ElkinConfig { shards, ..base_cfg };
            let run = run_mst(&w.graph, &cfg).expect("sharded run");
            assert_eq!(run.edges, baseline.edges, "{}: MST changed (shards={shards})", w.name);
            assert_eq!(run.stats, baseline.stats, "{}: stats diverged (shards={shards})", w.name);
        }
    }
}
