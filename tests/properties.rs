//! Property-based tests: the headline invariant (distributed MST ==
//! sequential MST) on randomly generated graphs and configurations, plus
//! structural invariants of the substrate.

use proptest::prelude::*;

use dmst::core::{analyze_forest, run_forest, run_mst, ElkinConfig, ScheduleMode};
use dmst::graphs::{generators as gen, mst, UnionFind, WeightedGraph};

/// Strategy: a connected random graph with `n` in [2, 40], arbitrary extra
/// chords, and arbitrary (possibly colliding) weights.
fn connected_graph() -> impl Strategy<Value = WeightedGraph> {
    (2usize..40, 0usize..80, any::<u64>(), 1u64..1000).prop_map(|(n, extra, seed, wmax)| {
        let r = &mut gen::WeightRng::new(seed);
        let g = gen::random_connected(n, extra, r);
        // Re-draw weights in a small range so collisions are common and the
        // tie-breaking path is exercised hard.
        let edges = g.edges().iter().map(|&(u, v, w)| (u, v, w % wmax + 1)).collect();
        WeightedGraph::new(n, edges).expect("structure unchanged")
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// The flagship property: Elkin's distributed MST equals Kruskal's on
    /// arbitrary connected graphs with arbitrary (colliding) weights.
    #[test]
    fn distributed_equals_sequential(g in connected_graph(), b in 1u32..4) {
        let truth = mst::kruskal(&g);
        let cfg = ElkinConfig { bandwidth: b, ..ElkinConfig::default() };
        let run = run_mst(&g, &cfg).expect("run succeeds on connected input");
        prop_assert_eq!(run.edges, truth.edges);
    }

    /// Schedule adaptivity can never change the output: on arbitrary
    /// connected graphs, `Fixed` and `Adaptive` produce the identical MST
    /// edge set, and `Adaptive` never uses more rounds than `Fixed`.
    #[test]
    fn adaptive_schedule_same_mst_fewer_rounds(g in connected_graph(), b in 1u32..4) {
        let fixed_cfg = ElkinConfig { bandwidth: b, ..ElkinConfig::fixed() };
        let ada_cfg = fixed_cfg.with_schedule_mode(ScheduleMode::Adaptive);
        let fixed = run_mst(&g, &fixed_cfg).expect("fixed run");
        let ada = run_mst(&g, &ada_cfg).expect("adaptive run");
        prop_assert_eq!(&fixed.edges, &mst::kruskal(&g).edges);
        prop_assert_eq!(&fixed.edges, &ada.edges);
        prop_assert!(
            ada.stats.rounds <= fixed.stats.rounds,
            "adaptive used {} rounds, fixed {}",
            ada.stats.rounds,
            fixed.stats.rounds
        );
    }

    /// Regression for the fused-phase argmin race (PR 3): `MarkPath`
    /// retraces the remembered argmin path through per-phase `DScratch`
    /// that the `NewCoarse` roll replaces — under the barrier protocol a
    /// late `MarkPath` hit scratch the phase barrier had already reset
    /// (the `unreachable!` in `cd_handle`). The fix is ordering, not
    /// state: `MarkPath` is sent before the same edge's `NewCoarse`, so
    /// per-edge FIFO delivers it while the phase-`j` selection is intact.
    /// Drive deep fragment trees (tall caterpillar MSTs, forced `k`) with
    /// colliding weights: a mis-ordered roll either trips that
    /// `unreachable!` or leaves a chosen edge marked on one endpoint only,
    /// which `run_mst` rejects as `BadOutput` — so a clean pass asserts
    /// every chosen edge was marked on both endpoints, every phase.
    #[test]
    fn argmin_path_marks_survive_fused_phase_rolls(
        spine in 4usize..40,
        legs in 0usize..3,
        k in 2u64..40,
        seed in any::<u64>(),
        wmax in 1u64..20,
    ) {
        let r = &mut gen::WeightRng::new(seed);
        let g = gen::caterpillar(spine, legs, r);
        // Colliding weights exercise the tie-broken argmin selection.
        let edges = g.edges().iter().map(|&(u, v, w)| (u, v, w % wmax + 1)).collect();
        let g = WeightedGraph::new(g.num_nodes(), edges).expect("structure unchanged");
        let truth = mst::kruskal(&g);
        let cfg = ElkinConfig { k_override: Some(k), ..ElkinConfig::default() };
        let run = run_mst(&g, &cfg).expect("fused-phase marks must stay symmetric");
        prop_assert_eq!(&run.edges, &truth.edges);
        let fixed = run_mst(&g, &cfg.with_schedule_mode(ScheduleMode::Fixed))
            .expect("fixed-schedule marks must stay symmetric");
        prop_assert_eq!(&fixed.edges, &truth.edges);
    }

    /// The three sequential oracles agree with each other.
    #[test]
    fn sequential_oracles_agree(g in connected_graph()) {
        let k = mst::kruskal(&g);
        prop_assert_eq!(&k, &mst::prim(&g));
        prop_assert_eq!(&k, &mst::boruvka(&g));
        prop_assert!(g.is_spanning_tree(&k.edges));
    }

    /// Controlled-GHS forests satisfy Theorem 4.3's shape for random k.
    #[test]
    fn forest_shape(g in connected_graph(), k in 1u64..64) {
        let n = g.num_nodes() as u64;
        let run = run_forest(&g, &ElkinConfig::with_k(k)).expect("forest run");
        let report = analyze_forest(&g, &run); // panics on broken invariants
        prop_assert!(report.num_fragments as u64 <= 2 * n / k.min(n) + 1);
        prop_assert!(report.max_diameter <= 24 * k);
    }

    /// Cole–Vishkin three-colors arbitrary rooted forests properly.
    #[test]
    fn cv_three_colors_forests(parents in proptest::collection::vec(0usize..20, 1..60)) {
        // parent[v] = some earlier vertex (or MAX for roots).
        let parent: Vec<usize> = parents
            .iter()
            .enumerate()
            .map(|(v, &p)| if v == 0 || p >= v { usize::MAX } else { p })
            .collect();
        let colors = dmst::core::cv::three_color_forest(&parent);
        for (v, &p) in parent.iter().enumerate() {
            prop_assert!(colors[v] < 3);
            if p != usize::MAX {
                prop_assert_ne!(colors[v], colors[p]);
            }
        }
    }

    /// Union–find agrees with a naive component count.
    #[test]
    fn union_find_counts_components(
        n in 1usize..30,
        edges in proptest::collection::vec((0usize..30, 0usize..30), 0..60),
    ) {
        let mut uf = UnionFind::new(n);
        let mut adj = vec![Vec::new(); n];
        for &(a, b) in &edges {
            let (a, b) = (a % n, b % n);
            uf.union(a, b);
            adj[a].push(b);
            adj[b].push(a);
        }
        // Naive DFS component count.
        let mut seen = vec![false; n];
        let mut comps = 0;
        for s in 0..n {
            if seen[s] { continue; }
            comps += 1;
            let mut stack = vec![s];
            seen[s] = true;
            while let Some(v) = stack.pop() {
                for &u in &adj[v] {
                    if !seen[u] { seen[u] = true; stack.push(u); }
                }
            }
        }
        prop_assert_eq!(uf.num_sets(), comps);
    }

    /// Generator sanity: every family is simple, connected, right-sized.
    #[test]
    fn generators_simple_connected(seed in any::<u64>(), n in 3usize..30) {
        let r = &mut gen::WeightRng::new(seed);
        for g in [
            gen::path(n, r),
            gen::cycle(n, r),
            gen::star(n, r),
            gen::random_tree(n, r),
            gen::random_connected(n, n, r),
        ] {
            prop_assert!(g.is_connected());
            prop_assert!(g.num_edges() >= n - 1);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// The two baselines also match Kruskal on arbitrary connected inputs
    /// (fewer cases: the GHS baseline is deliberately slow on tall MSTs).
    #[test]
    fn baselines_equal_sequential(g in connected_graph()) {
        let truth = mst::kruskal(&g);
        let ghs = dmst::baselines::run_ghs(&g).expect("ghs run");
        prop_assert_eq!(&ghs.edges, &truth.edges);
        let pipe = dmst::baselines::run_pipeline(&g).expect("pipeline run");
        prop_assert_eq!(&pipe.edges, &truth.edges);
    }

    /// Leader election always elects the maximum id, regardless of shape.
    #[test]
    fn leader_is_max(g in connected_graph()) {
        let run = dmst::core::leader::elect_leader(&g).expect("election");
        prop_assert_eq!(run.leader, g.num_nodes() as u64 - 1);
    }

    /// DIMACS round trip is the identity on arbitrary graphs.
    #[test]
    fn dimacs_roundtrip(g in connected_graph()) {
        let mut buf = Vec::new();
        dmst::graphs::io::write_dimacs(&g, &mut buf).expect("write");
        let back = dmst::graphs::io::parse_dimacs(buf.as_slice()).expect("parse");
        prop_assert_eq!(g, back);
    }
}
