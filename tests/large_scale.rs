//! Large-scale validation, ignored by default (minutes of CPU in debug
//! builds). Run explicitly with:
//!
//! ```text
//! cargo test --release --test large_scale -- --ignored
//! ```

use dmst::baselines::run_pipeline;
use dmst::core::{run_mst, ElkinConfig};
use dmst::graphs::{generators as gen, mst};

#[test]
#[ignore = "large: run with --release -- --ignored"]
fn torus_16k_all_checks() {
    let r = &mut gen::WeightRng::new(0x16);
    let g = gen::torus_2d(128, 128, r); // n = 16384, D = 128 = sqrt(n)
    let truth = mst::kruskal(&g);
    let run = run_mst(&g, &ElkinConfig::default()).expect("run");
    assert_eq!(run.edges, truth.edges);
    // Theorem 3.1 with the same constant as tests/bounds.rs.
    let n = g.num_nodes() as f64;
    let bound = 60.0 * (128.0 + n.sqrt()) * n.log2().ceil();
    assert!((run.stats.rounds as f64) < bound);
}

#[test]
#[ignore = "large: run with --release -- --ignored"]
fn random_16k_bandwidth_sweep() {
    let r = &mut gen::WeightRng::new(0x17);
    let g = gen::random_connected(16384, 3 * 16384, r);
    let truth = mst::kruskal(&g);
    let mut prev_rounds = u64::MAX;
    for b in [1u32, 8, 64] {
        let run = run_mst(&g, &ElkinConfig::with_bandwidth(b)).expect("run");
        assert_eq!(run.edges, truth.edges, "b = {b}");
        assert!(run.stats.rounds <= prev_rounds, "rounds must not grow with b");
        prev_rounds = run.stats.rounds;
    }
}

#[test]
#[ignore = "large: run with --release -- --ignored"]
fn snake_8k_pipeline_vs_elkin() {
    let r = &mut gen::WeightRng::new(0x18);
    let g = gen::snake_torus(90, 90, r); // n = 8100
    let truth = mst::kruskal(&g);
    let elkin = run_mst(&g, &ElkinConfig::default()).expect("elkin");
    let pipe = run_pipeline(&g).expect("pipeline");
    assert_eq!(elkin.edges, truth.edges);
    assert_eq!(pipe.edges, truth.edges);
    assert!(
        pipe.stats.messages > elkin.stats.messages,
        "at n = 8100 the pipeline's n^(3/2) broadcast must dominate"
    );
}
