//! Large-scale validation, ignored by default (minutes of CPU in debug
//! builds). Run explicitly with:
//!
//! ```text
//! cargo test --release --test large_scale -- --ignored
//! ```

use dmst::baselines::run_pipeline;
use dmst::core::{run_mst, ElkinConfig};
use dmst::graphs::{generators as gen, mst};

/// Promoted from the `#[ignore]`d set: the T1 cliquepath at n = 2304 —
/// the workload that motivated adaptive scheduling — runs in the default
/// suite. `ScheduleMode::Adaptive` (PR 2) cut it from ~51k rounds (Fixed,
/// k = Θ(H)) to 12465; the fused event-driven Stage D (PR 3) cuts it
/// further to 7853, with Stage D itself at 2565 rounds — within ~3% of
/// the 4H + 2k structural floor of the two Borůvka phases this workload
/// needs (H = 575, k = 48; see EXPERIMENTS.md S1). The caps are the PR 3
/// goldens with the suite's standard 10% slack, far inside the issue's
/// <= 11.5k acceptance bar; `exp_t1_comparison -- --smoke` re-checks
/// them in release CI together with the Stage D share ceiling.
#[test]
fn cliquepath_2304_adaptive_within_budget() {
    let g = dmst_bench::standard_trio(2304, 0x51)
        .into_iter()
        .find(|w| w.name.starts_with("cliquepath"))
        .expect("trio contains a cliquepath")
        .graph;
    let truth = mst::kruskal(&g);
    let run = run_mst(&g, &ElkinConfig::adaptive()).expect("adaptive run");
    assert_eq!(run.edges, truth.edges);
    assert!(
        run.stats.rounds <= 8640,
        "adaptive cliquepath rounds {} exceed the 7853-round golden (+10%)",
        run.stats.rounds
    );
    assert!(
        run.profile.stage_d <= 2820,
        "adaptive cliquepath Stage D rounds {} exceed the 2565-round golden (+10%)",
        run.profile.stage_d
    );
}

/// The executor-rebuild acceptance run: one million vertices, all four
/// stages, through the *sharded* executor, checked against the Kruskal
/// oracle. Sharding is forced (`shards: 2`) so the cross-shard delivery
/// path runs at scale even on a single-core runner; the stats are
/// bit-identical to a sequential run by the determinism gate
/// (`crates/congest/tests/determinism.rs`, `tests/dual_executor.rs`).
/// Release CI runs this by name (see `.github/workflows/ci.yml`); see
/// EXPERIMENTS.md "Simulator throughput" for the measured wallclock.
#[test]
#[ignore = "large: run with --release -- --ignored"]
fn million_vertex_random_end_to_end() {
    let r = &mut gen::WeightRng::new(0x5CA1E);
    let g = gen::random_connected(1_000_000, 2_000_000, r);
    let truth = mst::kruskal(&g);
    let cfg = ElkinConfig { shards: 2, ..ElkinConfig::default() };
    let run = run_mst(&g, &cfg).expect("million-vertex run");
    assert_eq!(run.edges, truth.edges, "MST must match the oracle at n = 10^6");
    let total: u64 = run.stats.rounds_by_stage.values().sum();
    assert_eq!(total, run.stats.rounds, "stage census must partition the rounds");
    assert!(
        run.profile.stage_d > 0,
        "all four stages must actually execute (got {:?})",
        run.stats.rounds_by_stage
    );
}

#[test]
#[ignore = "large: run with --release -- --ignored"]
fn torus_16k_all_checks() {
    let r = &mut gen::WeightRng::new(0x16);
    let g = gen::torus_2d(128, 128, r); // n = 16384, D = 128 = sqrt(n)
    let truth = mst::kruskal(&g);
    let run = run_mst(&g, &ElkinConfig::default()).expect("run");
    assert_eq!(run.edges, truth.edges);
    // Theorem 3.1 with the same constant as tests/bounds.rs.
    let n = g.num_nodes() as f64;
    let bound = 60.0 * (128.0 + n.sqrt()) * n.log2().ceil();
    assert!((run.stats.rounds as f64) < bound);
}

#[test]
#[ignore = "large: run with --release -- --ignored"]
fn random_16k_bandwidth_sweep() {
    let r = &mut gen::WeightRng::new(0x17);
    let g = gen::random_connected(16384, 3 * 16384, r);
    let truth = mst::kruskal(&g);
    let mut prev_rounds = u64::MAX;
    for b in [1u32, 8, 64] {
        let run = run_mst(&g, &ElkinConfig::with_bandwidth(b)).expect("run");
        assert_eq!(run.edges, truth.edges, "b = {b}");
        assert!(run.stats.rounds <= prev_rounds, "rounds must not grow with b");
        prev_rounds = run.stats.rounds;
    }
}

#[test]
#[ignore = "large: run with --release -- --ignored"]
fn cliquepath_4608_both_modes() {
    let r = &mut gen::WeightRng::new(0x19);
    let g = gen::path_of_cliques(576, 8, r); // n = 4608, D = Θ(n)
    let truth = mst::kruskal(&g);
    let fixed = run_mst(&g, &ElkinConfig::fixed()).expect("fixed");
    let ada = run_mst(&g, &ElkinConfig::adaptive()).expect("adaptive");
    assert_eq!(fixed.edges, truth.edges);
    assert_eq!(ada.edges, truth.edges);
    assert!(
        3 * ada.stats.rounds <= fixed.stats.rounds,
        "adaptive ({}) should keep >= 3x over fixed ({}) as the cliquepath grows",
        ada.stats.rounds,
        fixed.stats.rounds
    );
}

#[test]
#[ignore = "large: run with --release -- --ignored"]
fn snake_8k_pipeline_vs_elkin() {
    let r = &mut gen::WeightRng::new(0x18);
    let g = gen::snake_torus(90, 90, r); // n = 8100
    let truth = mst::kruskal(&g);
    let elkin = run_mst(&g, &ElkinConfig::default()).expect("elkin");
    let pipe = run_pipeline(&g).expect("pipeline");
    assert_eq!(elkin.edges, truth.edges);
    assert_eq!(pipe.edges, truth.edges);
    assert!(
        pipe.stats.messages > elkin.stats.messages,
        "at n = 8100 the pipeline's n^(3/2) broadcast must dominate"
    );
}
