//! Exhaustive small-graph testing: run every distributed algorithm on
//! *every* connected graph on 4 and 5 vertices (all edge subsets of K4 and
//! K5 that span), under three adversarial weight patterns each, via the
//! shared `dmst::testkit` enumerator. Any protocol race that depends on
//! structure rather than scale tends to show up here first.

use dmst::core::ElkinConfig;
use dmst::testkit::{self, Algorithm, WeightPattern};

#[test]
fn every_connected_graph_on_4_vertices() {
    let (graphs, runs) = testkit::for_each_connected_graph(4, |g, label, _| {
        testkit::assert_all_match(g, label);
    });
    assert_eq!(graphs, 38, "there are 38 connected labeled graphs on 4 vertices");
    assert_eq!(runs, 38 * 3);
}

#[test]
fn every_connected_graph_on_5_vertices() {
    // Every algorithm on every weighting is ~8700 distributed runs; keep
    // the 5-vertex sweep to Elkin (the paper's algorithm, both schedule
    // modes) plus a GHS cross-check on the all-equal (pure tie-breaking)
    // pattern to stay fast.
    let (graphs, runs) = testkit::for_each_connected_graph(5, |g, label, pattern| {
        testkit::assert_matches_oracle(&Algorithm::Elkin(Default::default()), g, label);
        testkit::assert_matches_oracle(&Algorithm::Elkin(ElkinConfig::adaptive()), g, label);
        if pattern == WeightPattern::Equal {
            testkit::assert_matches_oracle(&Algorithm::Ghs, g, label);
        }
    });
    assert_eq!(graphs, 728, "there are 728 connected labeled graphs on 5 vertices");
    assert_eq!(runs, 728 * 3);
}
