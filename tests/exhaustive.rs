//! Exhaustive small-graph testing: run the full distributed algorithm on
//! *every* connected graph on 4 and 5 vertices (all edge subsets of K4 and
//! K5 that span), under three adversarial weight patterns each. Any
//! protocol race that depends on structure rather than scale tends to show
//! up here first.

use dmst::core::{run_mst, ElkinConfig};
use dmst::graphs::{mst, WeightedGraph};

fn all_pairs(n: usize) -> Vec<(usize, usize)> {
    let mut v = Vec::new();
    for a in 0..n {
        for b in (a + 1)..n {
            v.push((a, b));
        }
    }
    v
}

/// Weight patterns chosen to stress tie-breaking and ordering: ascending,
/// descending, and all-equal.
fn weightings(m: usize) -> Vec<Vec<u64>> {
    vec![
        (1..=m as u64).collect(),
        (1..=m as u64).rev().collect(),
        vec![7; m],
    ]
}

fn exhaustive_for(n: usize) -> (u32, u32) {
    let pairs = all_pairs(n);
    let full = pairs.len();
    let mut graphs = 0;
    let mut runs = 0;
    for mask in 1u32..(1 << full) {
        let chosen: Vec<(usize, usize)> =
            pairs.iter().enumerate().filter(|(i, _)| mask >> i & 1 == 1).map(|(_, &p)| p).collect();
        if chosen.len() < n - 1 {
            continue;
        }
        // Connectivity pre-check via union-find.
        let mut uf = dmst::graphs::UnionFind::new(n);
        for &(a, b) in &chosen {
            uf.union(a, b);
        }
        if uf.num_sets() != 1 {
            continue;
        }
        graphs += 1;
        for weights in weightings(chosen.len()) {
            let edges: Vec<(usize, usize, u64)> = chosen
                .iter()
                .zip(&weights)
                .map(|(&(a, b), &w)| (a, b, w))
                .collect();
            let g = WeightedGraph::new(n, edges).expect("simple by construction");
            let truth = mst::kruskal(&g);
            let run = run_mst(&g, &ElkinConfig::default())
                .unwrap_or_else(|e| panic!("n={n} mask={mask:#b}: {e}"));
            assert_eq!(run.edges, truth.edges, "n={n} mask={mask:#b} weights={weights:?}");
            runs += 1;
        }
    }
    (graphs, runs)
}

#[test]
fn every_connected_graph_on_4_vertices() {
    let (graphs, runs) = exhaustive_for(4);
    assert_eq!(graphs, 38, "there are 38 connected labeled graphs on 4 vertices");
    assert_eq!(runs, 38 * 3);
}

#[test]
fn every_connected_graph_on_5_vertices() {
    let (graphs, runs) = exhaustive_for(5);
    assert_eq!(graphs, 728, "there are 728 connected labeled graphs on 5 vertices");
    assert_eq!(runs, 728 * 3);
}
