//! Complexity-bound tests: measured rounds and messages must stay inside
//! the paper's asymptotic formulas with explicit, fixed constants. These
//! are the theorem statements turned into assertions.

use dmst::core::util::{ceil_log2, log_star};
use dmst::core::{run_forest, run_mst, ElkinConfig};
use dmst::graphs::{analysis, generators as gen, WeightedGraph};

/// Constant in front of `(D + sqrt(n/b)) log n` that every measured run
/// must respect. Stage B's fixed windows carry the largest constant
/// (~2 * exchanges per radius unit), so this is necessarily generous —
/// what matters is that ONE constant covers every family and size.
const ROUND_C: f64 = 60.0;
/// Constant in front of `m log n + n log n log* n`.
const MSG_C: f64 = 4.0;

fn assert_bounds(g: &WeightedGraph, b: u32, label: &str) {
    let n = g.num_nodes() as u64;
    let m = g.num_edges() as u64;
    let d = u64::from(analysis::diameter_exact(g)).max(1);
    let run =
        run_mst(g, &ElkinConfig::with_bandwidth(b)).unwrap_or_else(|e| panic!("{label}: {e}"));

    let lg = ceil_log2(n.max(2)) as f64;
    let ls = log_star(n.max(2)) as f64;
    let round_bound = ROUND_C * (d as f64 + ((n / u64::from(b)).max(1) as f64).sqrt()) * lg;
    let msg_bound = MSG_C * ((m as f64) * lg + (n as f64) * lg * ls);

    assert!(
        (run.stats.rounds as f64) < round_bound,
        "{label}: rounds {} exceed {ROUND_C}*(D+sqrt(n/b))*lg n = {round_bound:.0}",
        run.stats.rounds
    );
    assert!(
        (run.stats.messages as f64) < msg_bound,
        "{label}: messages {} exceed {MSG_C}*(m lg n + n lg n lg* n) = {msg_bound:.0}",
        run.stats.messages
    );
}

#[test]
fn theorem_3_1_bounds_across_families() {
    let r = &mut gen::WeightRng::new(31);
    assert_bounds(&gen::torus_2d(12, 12, r), 1, "torus");
    assert_bounds(&gen::random_connected(150, 450, r), 1, "random");
    assert_bounds(&gen::path(150, r), 1, "path");
    assert_bounds(&gen::path_of_cliques(24, 6, r), 1, "cliquepath");
    assert_bounds(&gen::snake_torus(12, 12, r), 1, "snake");
    assert_bounds(&gen::complete(40, r), 1, "complete");
}

#[test]
fn theorem_3_2_bounds_with_bandwidth() {
    let r = &mut gen::WeightRng::new(32);
    let g = gen::random_connected(200, 600, r);
    for b in [1u32, 2, 4, 8] {
        assert_bounds(&g, b, &format!("random b={b}"));
    }
}

#[test]
fn theorem_3_2_rounds_shrink_with_bandwidth() {
    // On a low-diameter graph, b = 16 must beat b = 1 on rounds while
    // messages stay within a small factor.
    let r = &mut gen::WeightRng::new(33);
    let g = gen::random_connected(800, 2400, r);
    let r1 = run_mst(&g, &ElkinConfig::with_bandwidth(1)).unwrap();
    let r16 = run_mst(&g, &ElkinConfig::with_bandwidth(16)).unwrap();
    assert!(
        r16.stats.rounds * 3 < r1.stats.rounds * 2,
        "b=16 ({}) should cut rounds by >= 1/3 vs b=1 ({})",
        r16.stats.rounds,
        r1.stats.rounds
    );
    assert!(r16.stats.messages < 2 * r1.stats.messages);
}

#[test]
fn theorem_4_3_forest_bounds() {
    let r = &mut gen::WeightRng::new(43);
    let g = gen::random_connected(300, 900, r);
    let (n, m) = (g.num_nodes() as u64, g.num_edges() as u64);
    let ls = log_star(n) as f64;
    for k in [2u64, 8, 32] {
        let run = run_forest(&g, &ElkinConfig::with_k(k)).unwrap();
        let lk = ceil_log2(k.max(2)) as f64;
        let round_bound = 120.0 * (k as f64) * ls + 200.0;
        let msg_bound = 4.0 * ((m as f64) * lk + (n as f64) * lk * ls);
        assert!(
            (run.stats.rounds as f64) < round_bound,
            "k={k}: rounds {} exceed {round_bound:.0}",
            run.stats.rounds
        );
        assert!(
            (run.stats.messages as f64) < msg_bound,
            "k={k}: messages {} exceed {msg_bound:.0}",
            run.stats.messages
        );
    }
}

#[test]
fn strict_bandwidth_is_respected() {
    // The simulator runs in strict mode by default; a completed run is
    // itself the proof, but double-check the recorded peak.
    let r = &mut gen::WeightRng::new(44);
    let g = gen::torus_2d(10, 10, r);
    for b in [1u32, 4] {
        let run = run_mst(&g, &ElkinConfig::with_bandwidth(b)).unwrap();
        assert!(
            run.stats.peak_edge_words <= u64::from(8 * b),
            "peak edge words {} exceed the CONGEST({b}) budget",
            run.stats.peak_edge_words
        );
    }
}
