//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! implements the subset of proptest this workspace uses:
//!
//! * the [`proptest!`] macro with `#![proptest_config(...)]`, `name in
//!   strategy` parameters, and `Result`-style bodies (`prop_assert*!`,
//!   `prop_assume!`, `return Ok(())`);
//! * [`strategy::Strategy`] with `prop_map`, implemented for integer
//!   ranges, tuples, `any::<T>()`, and [`collection::vec`].
//!
//! Differences from upstream: inputs are drawn from a deterministic
//! per-test stream (derived from the test's module path, name, and case
//! index), and failing cases are **not shrunk** — the panic message reports
//! the case index so a failure is still exactly reproducible by rerunning
//! the test.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod test_runner {
    //! Test-case driver types used by the [`proptest!`](crate::proptest) macro expansion.

    /// Configuration for a property test (field-compatible subset of
    /// upstream `ProptestConfig`).
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
        /// Maximum number of rejected (`prop_assume!`) cases tolerated
        /// before the test aborts.
        pub max_global_rejects: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Self { cases: 256, max_global_rejects: 65_536 }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// The case was vetoed by `prop_assume!`; it does not count.
        Reject,
        /// An assertion failed.
        Fail(String),
    }

    impl TestCaseError {
        /// Constructs a failure with the given message.
        pub fn fail(msg: String) -> Self {
            TestCaseError::Fail(msg)
        }

        /// Constructs a rejection.
        pub fn reject() -> Self {
            TestCaseError::Reject
        }
    }

    /// Deterministic SplitMix64 stream for value generation.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Derives a generator from a test identifier and case index, so
        /// every test gets its own reproducible stream.
        pub fn deterministic(test_id: &str, case: u32) -> Self {
            // FNV-1a over the id, mixed with the case index.
            let mut h: u64 = 0xCBF2_9CE4_8422_2325;
            for b in test_id.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            Self { state: h ^ ((u64::from(case) << 32) | u64::from(case)) }
        }

        /// Next word of the stream.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw from `0..span` (`span > 0`).
        pub fn below(&mut self, span: u64) -> u64 {
            assert!(span > 0, "cannot sample an empty range");
            ((u128::from(self.next_u64()) * u128::from(span)) >> 64) as u64
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::Range;

    /// A recipe for generating values of [`Strategy::Value`].
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value from the deterministic stream.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f` (upstream `prop_map`; no
        /// shrinking, so this is a plain map).
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A strategy that always yields a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);

    /// Types with a canonical "whole domain" strategy (upstream
    /// `Arbitrary`, reached through [`any`]).
    pub trait Arbitrary {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_uint {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Strategy over the whole domain of `T` (see [`any`]).
    #[derive(Clone, Debug, Default)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The strategy generating any value of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from a range.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            assert!(self.len.start < self.len.end, "empty length range");
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A vector whose length is drawn from `len` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }
}

pub mod prelude {
    //! The usual glob-import surface.

    pub use crate::collection;
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::test_runner::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Fails the current case with a formatted message unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fails the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs == *rhs,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($lhs),
            stringify!($rhs),
            lhs,
            rhs
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs == *rhs,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)*),
            lhs,
            rhs
        );
    }};
}

/// Fails the current case unless the two expressions are unequal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs != *rhs,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($lhs),
            stringify!($rhs),
            lhs
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(*lhs != *rhs, "{}\n  both: {:?}", format!($($fmt)*), lhs);
    }};
}

/// Rejects the current case (it is regenerated, not counted) unless `cond`
/// holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject());
        }
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// item becomes a `#[test]` running `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { cfg = ($crate::test_runner::Config::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]: splits the item list.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($params:tt)*) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::__proptest_parse! {
                cfg = ($cfg);
                name = $name;
                acc = [];
                rest = [$($params)*];
                body = $body
            }
        }
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]: parses `name in strategy`
/// parameters, then emits the case loop.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_parse {
    // Accumulate "param in strategy" pairs.
    (cfg = ($cfg:expr); name = $name:ident; acc = [$($acc:tt)*];
     rest = [$param:pat in $strat:expr]; body = $body:block) => {
        $crate::__proptest_parse! {
            cfg = ($cfg); name = $name; acc = [$($acc)* ($param, $strat)];
            rest = []; body = $body
        }
    };
    (cfg = ($cfg:expr); name = $name:ident; acc = [$($acc:tt)*];
     rest = [$param:pat in $strat:expr, $($rest:tt)*]; body = $body:block) => {
        $crate::__proptest_parse! {
            cfg = ($cfg); name = $name; acc = [$($acc)* ($param, $strat)];
            rest = [$($rest)*]; body = $body
        }
    };
    // All parameters parsed: emit the runner loop.
    (cfg = ($cfg:expr); name = $name:ident; acc = [$(($param:pat, $strat:expr))*];
     rest = []; body = $body:block) => {
        let config: $crate::test_runner::Config = $cfg;
        let mut passed: u32 = 0;
        let mut rejected: u32 = 0;
        let mut iteration: u32 = 0;
        while passed < config.cases {
            iteration += 1;
            if rejected > config.max_global_rejects {
                panic!(
                    "proptest {}: too many rejected cases ({} rejects for {} passes)",
                    stringify!($name),
                    rejected,
                    passed
                );
            }
            let mut __rng = $crate::test_runner::TestRng::deterministic(
                concat!(module_path!(), "::", stringify!($name)),
                iteration,
            );
            $(let $param = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)*
            let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                (move || {
                    $body
                    ::core::result::Result::Ok(())
                })();
            match outcome {
                ::core::result::Result::Ok(()) => passed += 1,
                ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {
                    rejected += 1;
                }
                ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                    panic!(
                        "proptest {} failed at case {} (deterministic, rerun reproduces):\n{}",
                        stringify!($name),
                        iteration,
                        msg
                    );
                }
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn streams_are_deterministic() {
        let mut a = crate::test_runner::TestRng::deterministic("x", 3);
        let mut b = crate::test_runner::TestRng::deterministic("x", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::test_runner::TestRng::deterministic("x", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        /// Ranges, tuples, maps, vec and assume all work together.
        #[test]
        fn machinery_works(
            x in 5u64..10,
            (a, b) in (0usize..4, 0usize..4),
            v in collection::vec(1u32..3, 2..6),
            flip in any::<bool>(),
            y in (0u8..3).prop_map(|b| i32::from(b) * 10),
        ) {
            prop_assume!(a != 3);
            prop_assert!((5..10).contains(&x));
            prop_assert!(a < 4 && b < 4);
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&e| e == 1 || e == 2));
            let _ = flip;
            prop_assert_eq!(y % 10, 0);
            prop_assert_ne!(y, 35);
        }
    }

    proptest! {
        /// Default config path compiles and runs.
        #[test]
        fn default_config(x in 0u32..100) {
            if x > 1000 { return Ok(()); }
            prop_assert!(x < 100);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]
        // No #[test] attribute: expands to a plain fn the harness test below
        // can call and expect to panic.
        fn always_fails(x in 0u32..10) {
            prop_assert!(x > 100, "x was {}", x);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic_with_case_index() {
        always_fails();
    }
}
