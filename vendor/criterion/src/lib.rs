//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! implements the small API surface the workspace's `wallclock` bench uses:
//! [`Criterion::bench_function`], [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`BatchSize`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Instead of criterion's statistical machinery it runs a short warmup, then
//! `sample_size` timed samples, and prints min/mean/max per iteration —
//! enough to guard against order-of-magnitude regressions while staying
//! dependency-free.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How batched setup cost is amortized; only a hint here.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs; batch freely.
    SmallInput,
    /// Large inputs; one batch per sample.
    LargeInput,
    /// One setup call per iteration.
    PerIteration,
}

/// Times closures for one benchmark id.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Times `routine` repeatedly.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let iters = self.iters_per_sample;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.samples.push(start.elapsed() / iters as u32);
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let iters = self.iters_per_sample;
        let mut total = Duration::ZERO;
        for _ in 0..iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.samples.push(total / iters as u32);
    }
}

/// The benchmark driver (stand-in for `criterion::Criterion`).
#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets how many timed samples to take per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark: a warmup sample, then `sample_size` timed
    /// samples, printing min/mean/max per iteration.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        // Warmup (also lets the closure pay any lazy-init cost once).
        let mut warm = Bencher { samples: Vec::new(), iters_per_sample: 1 };
        f(&mut warm);

        let mut b = Bencher { samples: Vec::new(), iters_per_sample: 1 };
        for _ in 0..self.sample_size {
            f(&mut b);
        }
        let n = b.samples.len().max(1) as u32;
        let min = b.samples.iter().min().copied().unwrap_or_default();
        let max = b.samples.iter().max().copied().unwrap_or_default();
        let mean = b.samples.iter().sum::<Duration>() / n;
        println!("{id:<40} min {min:>12.3?}   mean {mean:>12.3?}   max {max:>12.3?}");
        self
    }
}

/// Declares a benchmark group function, mirroring criterion's macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench `main` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_counts_samples() {
        let mut total = 0u64;
        Criterion::default().sample_size(3).bench_function("noop", |b| {
            b.iter(|| {
                total += 1;
            })
        });
        // 1 warmup + 3 samples.
        assert_eq!(total, 4);
    }

    #[test]
    fn iter_batched_consumes_fresh_inputs() {
        let mut made = 0u32;
        Criterion::default().sample_size(2).bench_function("batched", |b| {
            b.iter_batched(
                || {
                    made += 1;
                    vec![1u8; 8]
                },
                |v| v.len(),
                BatchSize::SmallInput,
            )
        });
        assert_eq!(made, 3);
    }

    criterion_group! {
        name = group_long_form;
        config = Criterion::default().sample_size(2);
        targets = target_a, target_b
    }
    criterion_group!(group_short_form, target_a);

    fn target_a(c: &mut Criterion) {
        c.bench_function("a", |b| b.iter(|| 1 + 1));
    }
    fn target_b(c: &mut Criterion) {
        c.bench_function("b", |b| b.iter(|| 2 + 2));
    }

    #[test]
    fn groups_compose() {
        group_long_form();
        group_short_form();
    }
}
