//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides exactly the API surface the workspace uses: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], and [`Rng::gen_range`] over integer
//! ranges.
//!
//! The generator is SplitMix64 — tiny, fast, and *fully deterministic across
//! platforms*, which is the property the workspace actually relies on (the
//! golden-value determinism tests pin its output). It is **not** a
//! cryptographic generator and does not match upstream `StdRng`'s stream.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next word in the stream.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed; equal seeds give equal
    /// streams on every platform.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Range sampling, mirroring the subset of `rand::Rng` the workspace uses.
pub trait Rng: RngCore {
    /// Uniform sample from a half-open or inclusive integer range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<T: RngCore> Rng for T {}

/// A range that can be sampled uniformly. Implemented for `Range` and
/// `RangeInclusive` over the unsigned integer types used in this workspace.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Maps a word uniformly onto `0..span` (`span > 0`) by widening
/// multiplication — deterministic and bias-free enough for test workloads.
fn index_below(word: u64, span: u64) -> u64 {
    ((u128::from(word) * u128::from(span)) >> 64) as u64
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + index_below(rng.next_u64(), span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u64;
                match span.checked_add(1) {
                    Some(s) => start + index_below(rng.next_u64(), s) as $t,
                    // Only reachable for the full 64-bit range.
                    None => rng.next_u64() as $t,
                }
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator (stand-in for upstream `StdRng`).
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = r.gen_range(3usize..10);
            assert!((3..10).contains(&x));
            let y = r.gen_range(1u64..=5);
            assert!((1..=5).contains(&y));
        }
    }

    #[test]
    fn spread_hits_all_buckets() {
        let mut r = StdRng::seed_from_u64(42);
        let mut hits = [0u32; 8];
        for _ in 0..4000 {
            hits[r.gen_range(0usize..8)] += 1;
        }
        assert!(hits.iter().all(|&h| h > 0), "{hits:?}");
    }
}
